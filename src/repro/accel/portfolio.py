"""The anytime portfolio racer: tabu vs. the exact solve.

Runs the exact MILP solve on a worker thread while the tabu synthesizer
searches on the calling thread; whichever side produces a feasible
design first defines the time-to-first-incumbent, and the exact side —
when it finishes with a solution at least as good — still wins the
returned assignment, so optimality proofs are never sacrificed.  When
the exact side times out or errors, the racer degrades to the tabu
incumbent instead of failing the run.

The merged convergence story lands on the returned solution:
``extra["incumbent_trajectory"]`` interleaves both sides' incumbents
(monotone non-increasing, each tagged with its ``source``), and
``extra["portfolio"]`` records who produced the first incumbent, when,
and who won.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable

from repro.milp.solution import Solution, SolveStatus
from repro.telemetry.metrics import counter
from repro.telemetry.trace import span


def merge_trajectories(
    labeled: dict[str, list[dict[str, Any]]],
) -> list[dict[str, Any]]:
    """Merge per-source incumbent trajectories into one monotone curve.

    Events are ordered by ``elapsed_s`` (each side's clock starts at the
    race start, so the scales are commensurable); only genuine
    improvements survive, and every surviving event carries the
    ``source`` label of the solver that produced it — an event's own
    pre-existing ``source`` key wins over the outer label, so nested
    merges keep their attribution.
    """
    events: list[dict[str, Any]] = []
    for source, trajectory in labeled.items():
        for event in trajectory:
            if event.get("kind") != "incumbent":
                continue
            if event.get("incumbent") is None:
                continue
            tagged = dict(event)
            tagged.setdefault("source", source)
            events.append(tagged)
    events.sort(key=lambda e: float(e.get("elapsed_s", 0.0)))
    merged: list[dict[str, Any]] = []
    best = float("inf")
    for event in events:
        if float(event["incumbent"]) < best - 1e-12:
            best = float(event["incumbent"])
            merged.append(event)
    return merged


def race_portfolio(
    exact: Callable[[], Solution],
    synthesizer: Any,
    *,
    assignment_of: Callable[[Any], Solution | None] | None = None,
    objective_tol: float = 1e-9,
) -> Solution:
    """Race ``synthesizer`` against the ``exact`` thunk.

    ``exact`` must return a :class:`Solution` in the *original* variable
    space (the caller bakes presolve restore into the thunk).
    ``assignment_of`` lifts a tabu :class:`Architecture` into a full
    model assignment (the warm-start restricted solve); without it a
    tabu win degrades to an assignment-free FEASIBLE solution that still
    carries the architecture in ``extra``.
    """
    with span("accel.portfolio") as race_span:
        t0 = time.perf_counter()
        done = threading.Event()
        box: dict[str, Any] = {}

        def run_exact() -> None:
            try:
                box["solution"] = exact()
            except BaseException as err:  # noqa: BLE001 - reported below
                box["error"] = err
            finally:
                done.set()

        thread = threading.Thread(
            target=run_exact, name="repro-portfolio-exact", daemon=True
        )
        thread.start()
        tabu_result = synthesizer.synthesize(stop=done.is_set)
        thread.join()
        exact_elapsed = time.perf_counter() - t0
        if "error" in box:
            exact_solution = Solution(
                status=SolveStatus.ERROR,
                message=f"exact side crashed: {box['error']!r}",
            )
        else:
            exact_solution = box["solution"]

        exact_trajectory = list(
            exact_solution.extra.get("incumbent_trajectory", ())
        )
        if not exact_trajectory and exact_solution.x is not None:
            # Backends without progress callbacks (HiGHS through scipy)
            # contribute a single terminal incumbent event.
            exact_trajectory = [{
                "kind": "incumbent",
                "nodes": exact_solution.node_count,
                "incumbent": exact_solution.objective,
                "bound": None,
                "elapsed_s": round(exact_elapsed, 9),
            }]
        merged = merge_trajectories({
            getattr(synthesizer, "name", "tabu"): tabu_result.trajectory,
            "exact": exact_trajectory,
        })

        exact_obj = (
            exact_solution.objective
            if exact_solution.status.has_solution else float("inf")
        )
        exact_wins = (
            exact_solution.status.has_solution
            and (
                not tabu_result.feasible
                or exact_obj <= tabu_result.objective + objective_tol
            )
        )
        winner = "exact" if exact_wins else "tabu"
        if not exact_wins and not tabu_result.feasible:
            winner = "none"

        meta: dict[str, Any] = {
            "winner": winner,
            "exact_status": exact_solution.status.value,
            "exact_objective": (
                exact_solution.objective
                if exact_solution.status.has_solution else None
            ),
            "tabu_feasible": tabu_result.feasible,
            "tabu_objective": (
                tabu_result.objective if tabu_result.feasible else None
            ),
            "tabu_iterations": tabu_result.iterations,
            "exact_seconds": exact_elapsed,
        }
        if merged:
            meta["first_incumbent_s"] = float(merged[0]["elapsed_s"])
            meta["first_incumbent_source"] = str(merged[0]["source"])
        counter("accel.portfolio_races", winner=winner).inc()

        if exact_wins:
            solution = exact_solution
        elif tabu_result.feasible:
            solution = None
            if assignment_of is not None:
                solution = assignment_of(tabu_result.architecture)
            if solution is None:
                solution = Solution(
                    status=SolveStatus.FEASIBLE,
                    objective=tabu_result.objective,
                    solve_time=exact_elapsed,
                    mip_gap=float("inf"),
                    message=(
                        "portfolio degraded to the tabu incumbent "
                        f"(exact side: {exact_solution.status.value})"
                    ),
                )
                solution.extra["tabu_architecture"] = (
                    tabu_result.architecture
                )
            else:
                solution.message = (
                    "portfolio: tabu incumbent beat the exact side "
                    f"({exact_solution.status.value})"
                )
            solution.extra.setdefault(
                "solve_attempts",
                exact_solution.extra.get("solve_attempts", []),
            )
        else:
            solution = exact_solution
        solution.extra["incumbent_trajectory"] = merged
        solution.extra["portfolio"] = meta
        race_span.set_attributes(
            winner=winner,
            first_incumbent_s=meta.get("first_incumbent_s"),
        )
        return solution
