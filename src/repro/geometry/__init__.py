"""2-D geometry substrate: primitives, floor plans, SVG I/O, location grids."""

from repro.geometry.floorplan import (
    MATERIAL_LOSS_DB,
    FloorPlan,
    Wall,
    office_floorplan,
    open_floorplan,
)
from repro.geometry.grid import grid_for_count, grid_locations, scattered_locations
from repro.geometry.primitives import EPSILON, Point, Rectangle, Segment
from repro.geometry.svg import SvgMarker, floorplan_from_svg, floorplan_to_svg
from repro.geometry.vectorized import (
    points_to_array,
    segments_intersect_matrix,
    wall_attenuation_matrix,
)

__all__ = [
    "EPSILON",
    "MATERIAL_LOSS_DB",
    "FloorPlan",
    "Point",
    "Rectangle",
    "Segment",
    "SvgMarker",
    "Wall",
    "floorplan_from_svg",
    "floorplan_to_svg",
    "grid_for_count",
    "grid_locations",
    "office_floorplan",
    "open_floorplan",
    "points_to_array",
    "scattered_locations",
    "segments_intersect_matrix",
    "wall_attenuation_matrix",
]
