"""SVG import/export for floor plans and synthesized network layouts.

The paper's toolbox accepts the floor plan as an SVG file and we keep that
interface: :func:`floorplan_to_svg` emits a standard SVG 1.1 document, and
:func:`floorplan_from_svg` parses it back (round-trip safe for documents we
produce, tolerant of hand-drawn ones that use ``<line>`` elements).  Layout
exports additionally draw nodes and selected links so Fig. 1-style panels
can be regenerated.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from dataclasses import dataclass

from repro.geometry.floorplan import FloorPlan, Wall
from repro.geometry.primitives import Point, Rectangle, Segment

#: SVG user units per metre in exported documents.
_SCALE = 10.0

_MATERIAL_COLORS = {
    "drywall": "#888888",
    "brick": "#b5651d",
    "concrete": "#444444",
    "glass": "#7fd4ff",
    "wood": "#c8a165",
    "metal": "#222222",
}


@dataclass(frozen=True)
class SvgMarker:
    """A node to draw on a layout export."""

    location: Point
    kind: str  # e.g. "sensor", "sink", "relay", "candidate", "anchor", "test"
    label: str = ""


_KIND_STYLE = {
    "sensor": ("#2e8b57", 4.0),
    "sink": ("#d62728", 6.0),
    "relay": ("#1f77b4", 4.0),
    "candidate": ("#c0c0c0", 2.5),
    "anchor": ("#9467bd", 5.0),
    "test": ("#ff7f0e", 2.0),
}


def _svg_y(plan: FloorPlan, y: float) -> float:
    """Flip the y axis: floor plans are y-up, SVG is y-down."""
    return (plan.bounds.y_max - y) * _SCALE


def floorplan_to_svg(
    plan: FloorPlan,
    markers: list[SvgMarker] | None = None,
    links: list[tuple[Point, Point]] | None = None,
) -> str:
    """Render ``plan`` (plus optional nodes and links) as an SVG document."""
    width = plan.bounds.width * _SCALE
    height = plan.bounds.height * _SCALE
    root = ET.Element(
        "svg",
        xmlns="http://www.w3.org/2000/svg",
        width=f"{width:.1f}",
        height=f"{height:.1f}",
        viewBox=f"0 0 {width:.1f} {height:.1f}",
    )
    root.set("data-name", plan.name)
    root.set("data-metres-width", f"{plan.bounds.width}")
    root.set("data-metres-height", f"{plan.bounds.height}")

    ET.SubElement(
        root, "rect", x="0", y="0", width=f"{width:.1f}", height=f"{height:.1f}",
        fill="white", stroke="black",
    )
    for wall in plan.walls:
        color = _MATERIAL_COLORS.get(wall.material, "#888888")
        line = ET.SubElement(
            root, "line",
            x1=f"{wall.segment.start.x * _SCALE:.2f}",
            y1=f"{_svg_y(plan, wall.segment.start.y):.2f}",
            x2=f"{wall.segment.end.x * _SCALE:.2f}",
            y2=f"{_svg_y(plan, wall.segment.end.y):.2f}",
            stroke=color,
        )
        line.set("stroke-width", "2")
        line.set("class", "wall")
        line.set("data-material", wall.material)
        line.set("data-loss-db", f"{wall.attenuation_db():.2f}")

    for a, b in links or []:
        line = ET.SubElement(
            root, "line",
            x1=f"{a.x * _SCALE:.2f}", y1=f"{_svg_y(plan, a.y):.2f}",
            x2=f"{b.x * _SCALE:.2f}", y2=f"{_svg_y(plan, b.y):.2f}",
            stroke="#2ca02c",
        )
        line.set("stroke-width", "1")
        line.set("class", "link")

    for marker in markers or []:
        color, radius = _KIND_STYLE.get(marker.kind, ("#000000", 3.0))
        circle = ET.SubElement(
            root, "circle",
            cx=f"{marker.location.x * _SCALE:.2f}",
            cy=f"{_svg_y(plan, marker.location.y):.2f}",
            r=f"{radius:.1f}",
            fill=color,
        )
        circle.set("class", f"node {marker.kind}")
        if marker.label:
            circle.set("data-label", marker.label)
    return ET.tostring(root, encoding="unicode")


def floorplan_from_svg(text: str) -> FloorPlan:
    """Parse an SVG document produced by :func:`floorplan_to_svg`.

    Any ``<line>`` element is treated as a wall; ``data-material`` and
    ``data-loss-db`` attributes are honoured when present, otherwise the
    wall defaults to drywall.  The floor bounds come from the
    ``data-metres-*`` attributes when present, falling back to the SVG
    width/height divided by the export scale.
    """
    root = ET.fromstring(text)
    ns = root.tag.partition("}")[0] + "}" if root.tag.startswith("{") else ""

    if root.get("data-metres-width") and root.get("data-metres-height"):
        width = float(root.get("data-metres-width"))
        height = float(root.get("data-metres-height"))
    else:
        width = float(root.get("width", "0").rstrip("px")) / _SCALE
        height = float(root.get("height", "0").rstrip("px")) / _SCALE
    plan = FloorPlan(
        Rectangle(0.0, 0.0, width, height), name=root.get("data-name", "floor")
    )

    for line in root.iter(f"{ns}line"):
        if line.get("class") == "link":
            continue
        x1 = float(line.get("x1")) / _SCALE
        y1 = height - float(line.get("y1")) / _SCALE
        x2 = float(line.get("x2")) / _SCALE
        y2 = height - float(line.get("y2")) / _SCALE
        material = line.get("data-material", "drywall")
        loss = line.get("data-loss-db")
        plan.walls.append(
            Wall(
                Segment(Point(x1, y1), Point(x2, y2)),
                material,
                float(loss) if loss is not None else None,
            )
        )
    return plan
