"""Floor-plan model: the physical deployment area with walls and obstacles.

The paper's AE (ArchEx) tool takes an SVG floor plan storing "space
dimensions, obstacles (e.g., walls, doors, windows) and locations of network
devices".  This module is the in-memory counterpart: a bounded area plus a
collection of :class:`Wall` objects, each made of a material with a known
penetration loss at 2.4 GHz.  The multi-wall channel model asks the floor
plan how many walls of each material a link crosses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.geometry.primitives import Point, Rectangle, Segment

#: Typical 2.4-GHz penetration losses in dB for common materials.  Values
#: follow the COST-231 multi-wall measurement literature.
MATERIAL_LOSS_DB: dict[str, float] = {
    "drywall": 3.0,
    "brick": 6.0,
    "concrete": 12.0,
    "glass": 2.0,
    "wood": 4.0,
    "metal": 20.0,
}


@dataclass(frozen=True)
class Wall:
    """A straight wall segment made of a single material.

    ``loss_db`` overrides the material table when given, which lets floor
    plans imported from measurements carry per-wall calibrated losses.
    """

    segment: Segment
    material: str = "drywall"
    loss_db: float | None = None

    def attenuation_db(self) -> float:
        """Penetration loss of this wall in dB."""
        if self.loss_db is not None:
            return self.loss_db
        try:
            return MATERIAL_LOSS_DB[self.material]
        except KeyError:
            raise ValueError(
                f"unknown wall material {self.material!r}; known materials: "
                f"{sorted(MATERIAL_LOSS_DB)}"
            ) from None


@dataclass
class FloorPlan:
    """A rectangular deployment area with interior walls.

    Parameters
    ----------
    bounds:
        The outer rectangle of the floor, in metres.
    walls:
        Interior walls.  The outer boundary is *not* implicitly a wall:
        links never leave the floor in our templates, and treating the
        boundary as concrete would double-count attenuation for nodes
        placed against it.
    name:
        Optional human-readable label used in reports and SVG exports.
    """

    bounds: Rectangle
    walls: list[Wall] = field(default_factory=list)
    name: str = "floor"

    def add_wall(
        self, start: Point, end: Point, material: str = "drywall",
        loss_db: float | None = None,
    ) -> Wall:
        """Append a wall from ``start`` to ``end`` and return it."""
        wall = Wall(Segment(start, end), material, loss_db)
        self.walls.append(wall)
        return wall

    def walls_crossed(self, a: Point, b: Point) -> list[Wall]:
        """All walls intersected by the straight ray from ``a`` to ``b``.

        A wall whose endpoint merely touches the ray is still counted; for
        path-loss purposes grazing incidence attenuates at least as much as
        a perpendicular crossing, so over-counting is the safe direction.
        """
        ray = Segment(a, b)
        return [wall for wall in self.walls if wall.segment.intersects(ray)]

    def wall_attenuation_db(self, a: Point, b: Point) -> float:
        """Total wall penetration loss along the ray ``a``–``b`` in dB."""
        return sum(wall.attenuation_db() for wall in self.walls_crossed(a, b))

    def contains(self, point: Point) -> bool:
        """Whether ``point`` lies within the floor bounds."""
        return self.bounds.contains(point)


def office_floorplan(
    width: float = 80.0,
    height: float = 45.0,
    rooms_x: int = 8,
    rooms_y: int = 2,
    corridor_height: float = 5.0,
    material: str = "brick",
) -> FloorPlan:
    """A synthetic office floor with two rows of rooms and a central corridor.

    This stands in for the building plan of the paper's Fig. 1 (an 80 m x
    45 m floor): ``rooms_x`` rooms along the top and bottom edges separated
    by ``material`` partition walls, with a corridor of ``corridor_height``
    metres between the rows.  Wall density — the driver of multi-wall path
    loss — matches a realistic office layout.
    """
    if rooms_x < 1 or rooms_y < 1:
        raise ValueError("need at least one room in each direction")
    plan = FloorPlan(Rectangle(0.0, 0.0, width, height), name="office")
    room_band = (height - corridor_height) / 2.0
    corridor_lo = room_band
    corridor_hi = height - room_band

    # Horizontal walls separating the room bands from the corridor.
    plan.add_wall(Point(0.0, corridor_lo), Point(width, corridor_lo), material)
    plan.add_wall(Point(0.0, corridor_hi), Point(width, corridor_hi), material)

    # Vertical partitions within each band.
    room_width = width / rooms_x
    for i in range(1, rooms_x):
        x = i * room_width
        plan.add_wall(Point(x, 0.0), Point(x, corridor_lo), material)
        plan.add_wall(Point(x, corridor_hi), Point(x, height), material)

    # Optional horizontal sub-divisions of the bands (rooms_y > 1).
    for j in range(1, rooms_y):
        y_low = room_band * j / rooms_y
        y_high = height - y_low
        plan.add_wall(Point(0.0, y_low), Point(width, y_low), material)
        plan.add_wall(Point(0.0, y_high), Point(width, y_high), material)
    return plan


def open_floorplan(width: float = 80.0, height: float = 45.0) -> FloorPlan:
    """A floor with no interior walls (free-space-like propagation)."""
    return FloorPlan(Rectangle(0.0, 0.0, width, height), name="open")
