"""Basic 2-D geometric primitives used by floor plans and channel models.

The channel models only need two geometric queries:

* Euclidean distance between node locations.
* How many (and which) walls a straight transmitter->receiver ray crosses,
  which drives the multi-wall path-loss model.

Everything here is therefore small and exact: points, segments, axis-aligned
rectangles, and robust segment-segment intersection tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Iterator

#: Tolerance for geometric predicates, in metres.  Floor plans are specified
#: with centimetre-scale coordinates, so 1e-9 m is far below meaningful scale.
EPSILON = 1e-9


@dataclass(frozen=True, order=True)
class Point:
    """A point (or position vector) in the floor-plan coordinate system.

    Coordinates are in metres.  Points are immutable and hashable so they can
    be used as dictionary keys (e.g. candidate-location lookup tables).
    """

    x: float
    y: float

    def distance_to(self, other: Point) -> float:
        """Euclidean distance to ``other`` in metres."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def midpoint(self, other: Point) -> Point:
        """The point halfway between ``self`` and ``other``."""
        return Point((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)

    def translated(self, dx: float, dy: float) -> Point:
        """A copy of this point shifted by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def as_tuple(self) -> tuple[float, float]:
        """The point as a plain ``(x, y)`` tuple."""
        return (self.x, self.y)


def _orientation(a: Point, b: Point, c: Point) -> int:
    """Orientation of the ordered triple ``(a, b, c)``.

    Returns ``+1`` for counter-clockwise, ``-1`` for clockwise and ``0`` for
    (numerically) collinear points.
    """
    cross = (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x)
    if cross > EPSILON:
        return 1
    if cross < -EPSILON:
        return -1
    return 0


def _on_segment(p: Point, q: Point, r: Point) -> bool:
    """Whether collinear point ``q`` lies on the closed segment ``p``–``r``."""
    return (
        min(p.x, r.x) - EPSILON <= q.x <= max(p.x, r.x) + EPSILON
        and min(p.y, r.y) - EPSILON <= q.y <= max(p.y, r.y) + EPSILON
    )


@dataclass(frozen=True)
class Segment:
    """A closed straight segment between two points."""

    start: Point
    end: Point

    @property
    def length(self) -> float:
        """Segment length in metres."""
        return self.start.distance_to(self.end)

    def intersects(self, other: Segment) -> bool:
        """Whether this segment and ``other`` share at least one point.

        Uses the standard orientation predicate, with collinear-overlap
        special cases handled explicitly, so walls touching at corners are
        detected consistently.
        """
        p1, q1 = self.start, self.end
        p2, q2 = other.start, other.end
        o1 = _orientation(p1, q1, p2)
        o2 = _orientation(p1, q1, q2)
        o3 = _orientation(p2, q2, p1)
        o4 = _orientation(p2, q2, q1)

        if o1 != o2 and o3 != o4:
            return True
        if o1 == 0 and _on_segment(p1, p2, q1):
            return True
        if o2 == 0 and _on_segment(p1, q2, q1):
            return True
        if o3 == 0 and _on_segment(p2, p1, q2):
            return True
        if o4 == 0 and _on_segment(p2, q1, q2):
            return True
        return False

    def midpoint(self) -> Point:
        """The midpoint of the segment."""
        return self.start.midpoint(self.end)


@dataclass(frozen=True)
class Rectangle:
    """An axis-aligned rectangle, used for room outlines and floor bounds."""

    x_min: float
    y_min: float
    x_max: float
    y_max: float

    def __post_init__(self) -> None:
        if self.x_max < self.x_min or self.y_max < self.y_min:
            raise ValueError(
                f"degenerate rectangle: ({self.x_min}, {self.y_min}) .. "
                f"({self.x_max}, {self.y_max})"
            )

    @property
    def width(self) -> float:
        """Extent along x, in metres."""
        return self.x_max - self.x_min

    @property
    def height(self) -> float:
        """Extent along y, in metres."""
        return self.y_max - self.y_min

    @property
    def area(self) -> float:
        """Rectangle area in square metres."""
        return self.width * self.height

    def contains(self, point: Point) -> bool:
        """Whether ``point`` lies inside or on the boundary."""
        return (
            self.x_min - EPSILON <= point.x <= self.x_max + EPSILON
            and self.y_min - EPSILON <= point.y <= self.y_max + EPSILON
        )

    def edges(self) -> Iterator[Segment]:
        """The four boundary segments, counter-clockwise from bottom-left."""
        bl = Point(self.x_min, self.y_min)
        br = Point(self.x_max, self.y_min)
        tr = Point(self.x_max, self.y_max)
        tl = Point(self.x_min, self.y_max)
        yield Segment(bl, br)
        yield Segment(br, tr)
        yield Segment(tr, tl)
        yield Segment(tl, bl)
