"""Candidate-location generators.

Templates need (i) fixed locations for sensors/sinks/test points and (ii) a
pool of candidate locations where the optimizer may or may not place relays
or anchors.  The paper's Fig. 1a uses a regular grid of candidate relay
locations over the floor; these helpers produce such grids plus
deterministic pseudo-random scatters for the synthetic scalability
families (Table 3).
"""

from __future__ import annotations

import math

import numpy as np

from repro.geometry.floorplan import FloorPlan
from repro.geometry.primitives import Point, Rectangle


def grid_locations(
    bounds: Rectangle, nx: int, ny: int, margin: float = 2.0
) -> list[Point]:
    """An ``nx`` x ``ny`` regular grid of points inset by ``margin`` metres.

    Points are ordered row-major, bottom row first, which keeps template
    node indices stable across runs.
    """
    if nx < 1 or ny < 1:
        raise ValueError("grid must have at least one point per axis")
    usable_w = bounds.width - 2 * margin
    usable_h = bounds.height - 2 * margin
    if usable_w < 0 or usable_h < 0:
        raise ValueError("margin larger than the floor")
    xs = (
        [bounds.x_min + margin + usable_w / 2.0]
        if nx == 1
        else [bounds.x_min + margin + usable_w * i / (nx - 1) for i in range(nx)]
    )
    ys = (
        [bounds.y_min + margin + usable_h / 2.0]
        if ny == 1
        else [bounds.y_min + margin + usable_h * j / (ny - 1) for j in range(ny)]
    )
    return [Point(x, y) for y in ys for x in xs]


def grid_for_count(
    bounds: Rectangle, count: int, margin: float = 2.0
) -> list[Point]:
    """At least ``count`` grid points with an aspect ratio matching the floor.

    Returns exactly ``count`` points (the first ``count`` in row-major
    order of the smallest adequate grid).
    """
    if count < 1:
        raise ValueError("count must be positive")
    aspect = bounds.width / max(bounds.height, 1e-9)
    ny = max(1, int(math.floor(math.sqrt(count / aspect))))
    nx = max(1, int(math.ceil(count / ny)))
    while nx * ny < count:
        nx += 1
    return grid_locations(bounds, nx, ny, margin)[:count]


def scattered_locations(
    plan: FloorPlan, count: int, seed: int = 0, margin: float = 1.0
) -> list[Point]:
    """``count`` deterministic pseudo-random points inside the floor.

    Used by the synthetic scalability templates: a seeded generator makes
    benchmark instances reproducible run to run.
    """
    rng = np.random.default_rng(seed)
    bounds = plan.bounds
    xs = rng.uniform(bounds.x_min + margin, bounds.x_max - margin, size=count)
    ys = rng.uniform(bounds.y_min + margin, bounds.y_max - margin, size=count)
    return [Point(float(x), float(y)) for x, y in zip(xs, ys)]
