"""Vectorized geometric predicates for batch channel evaluation.

The multi-wall channel model asks, for every candidate link, which walls
the transmitter->receiver ray crosses.  Weighting a template therefore
evaluates O(nodes^2 * walls) segment-intersection tests — the dominant
cost of building large templates.  This module batches those tests with
numpy while mirroring the *exact* floating-point expressions of the
scalar predicates in :mod:`repro.geometry.primitives` (same operand
order, same :data:`~repro.geometry.primitives.EPSILON` comparisons), so
the boolean outcomes are bitwise-identical to ``Segment.intersects``.

Memory note: :func:`wall_attenuation_matrix` loops over walls, holding
``(T, R)`` intermediates per wall rather than a ``(T*R, W)`` tensor —
a 500-point, 30-wall plan peaks at a few MB instead of hundreds.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.floorplan import FloorPlan
from repro.geometry.primitives import EPSILON, Point


def points_to_array(points: list[Point] | tuple[Point, ...]) -> np.ndarray:
    """Pack points into an ``(n, 2)`` float64 coordinate array."""
    out = np.empty((len(points), 2), dtype=np.float64)
    for i, p in enumerate(points):
        out[i, 0] = p.x
        out[i, 1] = p.y
    return out


def _orientation_sign(
    ax: np.ndarray, ay: np.ndarray,
    bx: np.ndarray, by: np.ndarray,
    cx: np.ndarray, cy: np.ndarray,
) -> np.ndarray:
    """Broadcasted mirror of ``primitives._orientation`` (+1/-1/0 as int8)."""
    cross = (bx - ax) * (cy - ay) - (by - ay) * (cx - ax)
    return (cross > EPSILON).astype(np.int8) - (cross < -EPSILON).astype(np.int8)


def _on_segment_mask(
    px: np.ndarray, py: np.ndarray,
    qx: np.ndarray, qy: np.ndarray,
    rx: np.ndarray, ry: np.ndarray,
) -> np.ndarray:
    """Broadcasted mirror of ``primitives._on_segment``."""
    return (
        (np.minimum(px, rx) - EPSILON <= qx)
        & (qx <= np.maximum(px, rx) + EPSILON)
        & (np.minimum(py, ry) - EPSILON <= qy)
        & (qy <= np.maximum(py, ry) + EPSILON)
    )


def _intersect_broadcast(
    p1x: np.ndarray, p1y: np.ndarray, q1x: np.ndarray, q1y: np.ndarray,
    p2x: np.ndarray, p2y: np.ndarray, q2x: np.ndarray, q2y: np.ndarray,
) -> np.ndarray:
    """Broadcasted mirror of ``Segment.intersects`` on coordinate arrays.

    Segment 1 is ``p1``–``q1``, segment 2 is ``p2``–``q2``; all eight
    arrays broadcast together and the result has the broadcast shape.
    """
    o1 = _orientation_sign(p1x, p1y, q1x, q1y, p2x, p2y)
    o2 = _orientation_sign(p1x, p1y, q1x, q1y, q2x, q2y)
    o3 = _orientation_sign(p2x, p2y, q2x, q2y, p1x, p1y)
    o4 = _orientation_sign(p2x, p2y, q2x, q2y, q1x, q1y)
    hit = (o1 != o2) & (o3 != o4)
    hit |= (o1 == 0) & _on_segment_mask(p1x, p1y, p2x, p2y, q1x, q1y)
    hit |= (o2 == 0) & _on_segment_mask(p1x, p1y, q2x, q2y, q1x, q1y)
    hit |= (o3 == 0) & _on_segment_mask(p2x, p2y, p1x, p1y, q2x, q2y)
    hit |= (o4 == 0) & _on_segment_mask(p2x, p2y, q1x, q1y, q2x, q2y)
    return hit


def segments_intersect_matrix(
    a_start: np.ndarray, a_end: np.ndarray,
    b_start: np.ndarray, b_end: np.ndarray,
) -> np.ndarray:
    """Pairwise intersection tests between two segment families.

    ``a_start``/``a_end`` are ``(A, 2)`` arrays, ``b_start``/``b_end`` are
    ``(B, 2)``; the result is an ``(A, B)`` boolean matrix whose entries
    equal ``Segment.intersects`` for the corresponding pair exactly.
    """
    a_start = np.asarray(a_start, dtype=np.float64)
    a_end = np.asarray(a_end, dtype=np.float64)
    b_start = np.asarray(b_start, dtype=np.float64)
    b_end = np.asarray(b_end, dtype=np.float64)
    return _intersect_broadcast(
        a_start[:, None, 0], a_start[:, None, 1],
        a_end[:, None, 0], a_end[:, None, 1],
        b_start[None, :, 0], b_start[None, :, 1],
        b_end[None, :, 0], b_end[None, :, 1],
    )


def wall_attenuation_matrix(
    plan: FloorPlan, tx_xy: np.ndarray, rx_xy: np.ndarray
) -> np.ndarray:
    """Total wall penetration loss for every (tx, rx) ray, in dB.

    ``tx_xy`` is ``(T, 2)``, ``rx_xy`` is ``(R, 2)``; the result is a
    ``(T, R)`` float matrix matching ``plan.wall_attenuation_db`` for each
    pair bitwise (the per-wall accumulation below adds each wall's loss in
    wall-list order, exactly as the scalar sum does — adding 0.0 for
    non-crossing walls leaves the float sum unchanged).
    """
    tx_xy = np.asarray(tx_xy, dtype=np.float64)
    rx_xy = np.asarray(rx_xy, dtype=np.float64)
    p1x = tx_xy[:, None, 0]
    p1y = tx_xy[:, None, 1]
    q1x = rx_xy[None, :, 0]
    q1y = rx_xy[None, :, 1]
    total = np.zeros((tx_xy.shape[0], rx_xy.shape[0]), dtype=np.float64)
    for wall in plan.walls:
        seg = wall.segment
        hits = _intersect_broadcast(
            np.float64(seg.start.x), np.float64(seg.start.y),
            np.float64(seg.end.x), np.float64(seg.end.y),
            p1x, p1y, q1x, q1y,
        )
        total += np.where(hits, wall.attenuation_db(), 0.0)
    return total
