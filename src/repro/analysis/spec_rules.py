"""Spec-level analysis rules: problem inputs before encoding.

These rules run on the (template, requirements, library) triple and catch
the failure classes the paper prunes *structurally* — routes that no
candidate topology can realize, disjointness demands above the template's
min-cut, candidates no route can ever use, roles no device can realize,
and unit mixups in the channel/link-quality numbers.  All of them are
graph/interval checks in milliseconds, long before Yen enumeration or the
MILP solver run.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterator

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.rules import SpecContext, SpecRule, spec_rule
from repro.graph.digraph import DiGraph
from repro.network.requirements import RouteRequirement

#: Cap on node ids spelled out in aggregate messages.
_LIST_CAP = 8


def _shortest_hops(graph: DiGraph, source: int, dest: int) -> int | None:
    """BFS hop distance from ``source`` to ``dest`` (None if unreachable)."""
    if source == dest:
        return 0
    seen = {source}
    frontier = deque([(source, 0)])
    while frontier:
        node, hops = frontier.popleft()
        for succ, _ in graph.successors(node):
            if succ == dest:
                return hops + 1
            if succ not in seen:
                seen.add(succ)
                frontier.append((succ, hops + 1))
    return None


def _reachable_from(graph: DiGraph, sources: set[int], forward: bool) -> set[int]:
    """Multi-source BFS closure (forward over successors, else backward)."""
    seen = set(sources)
    frontier = deque(sources)
    while frontier:
        node = frontier.popleft()
        neighbours = (
            graph.successors(node) if forward else graph.predecessors(node)
        )
        for nbr, _ in neighbours:
            if nbr not in seen:
                seen.add(nbr)
                frontier.append(nbr)
    return seen


def _edge_disjoint_paths(
    graph: DiGraph, source: int, dest: int, limit: int
) -> int:
    """Max number of edge-disjoint ``source``->``dest`` paths, capped.

    Edmonds-Karp with unit edge capacities on the residual adjacency; the
    cap keeps the work at ``O(limit * E)``, enough to decide whether a
    requested replica count fits under the template's min-cut.
    """
    residual: dict[int, set[int]] = {}
    for u, v, _ in graph.edges():
        if not graph.is_masked(u, v):
            residual.setdefault(u, set()).add(v)
    flow = 0
    while flow < limit:
        parents: dict[int, int] = {source: source}
        frontier = deque([source])
        while frontier and dest not in parents:
            node = frontier.popleft()
            for succ in residual.get(node, ()):
                if succ not in parents:
                    parents[succ] = node
                    frontier.append(succ)
        if dest not in parents:
            break
        node = dest
        while node != source:
            parent = parents[node]
            residual[parent].discard(node)
            residual.setdefault(node, set()).add(parent)
            node = parent
        flow += 1
    return flow


def _route_location(index: int, route: RouteRequirement) -> str:
    return f"route[{index}] ({route.source}->{route.dest})"


def _valid_endpoints(ctx: SpecContext, route: RouteRequirement) -> bool:
    n = ctx.template.node_count
    return 0 <= route.source < n and 0 <= route.dest < n


@spec_rule
class RouteConnectivityRule(SpecRule):
    """Every required route must have at least one candidate path."""

    rule_id = "spec.route-connectivity"
    default_severity = Severity.ERROR
    title = "required route has no candidate path in the template"
    example = (
        "``has_path(sink, sensor[1])`` on a data-collection template — the "
        "sink never transmits, so no path can leave it"
    )
    hint = (
        "check the route's direction and endpoints, add relay candidates, "
        "or raise the template's path-loss cutoff"
    )

    def check(self, ctx: SpecContext) -> Iterator[Diagnostic]:
        for i, route in enumerate(ctx.routes):
            if not _valid_endpoints(ctx, route):
                yield self.diagnostic(
                    f"endpoint out of range: template has "
                    f"{ctx.template.node_count} nodes",
                    location=_route_location(i, route),
                    hint="route endpoints must be valid template node ids",
                    route=i,
                )
                continue
            hops = _shortest_hops(ctx.template.graph, route.source, route.dest)
            if hops is None:
                tx = ctx.template.node(route.source)
                yield self.diagnostic(
                    f"no candidate path from node {route.source} "
                    f"({tx.role}) to node {route.dest} "
                    f"({ctx.template.node(route.dest).role})",
                    location=_route_location(i, route),
                    route=i,
                )


@spec_rule
class RouteMinCutRule(SpecRule):
    """Disjoint replica demand must fit under the template's min-cut."""

    rule_id = "spec.route-min-cut"
    default_severity = Severity.ERROR
    title = "requested disjoint replicas exceed the template's min-cut"
    example = (
        "``has_paths(sensors, sink, replicas=64, disjoint=true)`` when a "
        "sensor has only a handful of outgoing candidate links"
    )
    hint = (
        "add relay candidates near the bottleneck, lower replicas, or drop "
        "disjoint=true"
    )

    def check(self, ctx: SpecContext) -> Iterator[Diagnostic]:
        for i, route in enumerate(ctx.routes):
            if route.replicas < 2 or not route.disjoint:
                continue
            if not _valid_endpoints(ctx, route):
                continue
            cut = _edge_disjoint_paths(
                ctx.template.graph, route.source, route.dest, route.replicas
            )
            if 0 < cut < route.replicas:
                yield self.diagnostic(
                    f"template supports at most {cut} link-disjoint "
                    f"route(s) but {route.replicas} replicas are required",
                    location=_route_location(i, route),
                    route=i,
                    min_cut=cut,
                    replicas=route.replicas,
                )


@spec_rule
class HopBoundsRule(SpecRule):
    """Hop bounds must be achievable on the template."""

    rule_id = "spec.hop-bounds"
    default_severity = Severity.ERROR
    title = "hop bound is unsatisfiable on this template"
    example = (
        "``min_hops(p, 500)`` on a 37-node template (a simple path has at "
        "most 36 hops), or ``max_hops(p, 1)`` when the shortest candidate "
        "route needs 3 hops"
    )
    hint = "relax the hop bound or densify the template"

    def check(self, ctx: SpecContext) -> Iterator[Diagnostic]:
        longest = ctx.template.node_count - 1
        for i, route in enumerate(ctx.routes):
            if not _valid_endpoints(ctx, route):
                continue
            where = _route_location(i, route)
            for kind, bound in (("min_hops", route.min_hops),
                                ("exact_hops", route.exact_hops)):
                if bound is not None and bound > longest:
                    yield self.diagnostic(
                        f"{kind}={bound} exceeds the longest simple path "
                        f"({longest} hops on {ctx.template.node_count} nodes)",
                        location=where, route=i, bound=bound,
                    )
            shortest = _shortest_hops(
                ctx.template.graph, route.source, route.dest
            )
            if shortest is None:
                continue  # spec.route-connectivity already fired
            for kind, bound in (("max_hops", route.max_hops),
                                ("exact_hops", route.exact_hops)):
                if bound is not None and bound < shortest:
                    yield self.diagnostic(
                        f"{kind}={bound} but the shortest candidate route "
                        f"needs {shortest} hops",
                        location=where, route=i,
                        bound=bound, shortest=shortest,
                    )


@spec_rule
class UnreachableNodesRule(SpecRule):
    """Optional candidates no required route can ever use."""

    rule_id = "spec.unreachable-nodes"
    default_severity = Severity.WARNING
    title = "candidate nodes lie on no source->destination corridor"
    example = (
        "a relay candidate with no candidate links (or links pointing away "
        "from every required destination) — it inflates the encoding but "
        "can never carry traffic"
    )
    hint = (
        "prune the candidates from the template or revisit the path-loss "
        "cutoff that isolated them"
    )

    def check(self, ctx: SpecContext) -> Iterator[Diagnostic]:
        if not ctx.routes:
            return
        sources = {r.source for r in ctx.routes
                   if _valid_endpoints(ctx, r)}
        dests = {r.dest for r in ctx.routes if _valid_endpoints(ctx, r)}
        if not sources or not dests:
            return
        corridor = (
            _reachable_from(ctx.template.graph, sources, forward=True)
            & _reachable_from(ctx.template.graph, dests, forward=False)
        )
        anchor_role = (
            ctx.reachability.anchor_role if ctx.reachability else None
        )
        stranded = [
            node.id
            for node in ctx.template.nodes
            if not node.fixed
            and node.role != anchor_role
            and node.id not in corridor
        ]
        if stranded:
            shown = ", ".join(str(n) for n in stranded[:_LIST_CAP])
            if len(stranded) > _LIST_CAP:
                shown += f", ... ({len(stranded) - _LIST_CAP} more)"
            yield self.diagnostic(
                f"{len(stranded)} optional candidate node(s) can serve no "
                f"required route: {shown}",
                location=f"template {ctx.template.name!r}",
                nodes=stranded,
            )


@spec_rule
class LibraryCoverageRule(SpecRule):
    """Some library device must be able to realize every used role."""

    rule_id = "spec.library-coverage"
    default_severity = Severity.ERROR
    title = "a template role has no compatible library device"
    example = (
        "a template with ``sink`` nodes solved against a library whose "
        "devices only support ``sensor``/``relay``"
    )
    hint = "add a device supporting the role or retire the nodes"

    def check(self, ctx: SpecContext) -> Iterator[Diagnostic]:
        if ctx.library is None:
            return
        anchor_role = (
            ctx.reachability.anchor_role if ctx.reachability else None
        )
        roles = sorted({n.role for n in ctx.template.nodes})
        for role in roles:
            if ctx.library.for_role(role):
                continue
            nodes = ctx.template.by_role(role)
            fixed = [n for n in nodes if n.fixed]
            # Optional candidates without a device are merely wasted
            # encoding; fixed nodes (or the anchors a reachability
            # requirement must place) make the problem infeasible.
            blocking = bool(fixed) or role == anchor_role
            yield self.diagnostic(
                f"no library device supports role {role!r} "
                f"({len(nodes)} node(s), {len(fixed)} fixed)",
                location=f"role {role!r}",
                severity=None if blocking else Severity.WARNING,
                role=role,
            )
        if ctx.reachability is not None and anchor_role not in roles:
            yield self.diagnostic(
                f"reachability requirement needs role {anchor_role!r} but "
                f"the template has no such candidates",
                location=f"role {anchor_role!r}",
                hint="add anchor candidates or fix anchor_role",
                role=anchor_role,
            )


@spec_rule
class UnitConsistencyRule(SpecRule):
    """Channel/link-quality numbers must be plausible in their units."""

    rule_id = "spec.unit-consistency"
    default_severity = Severity.WARNING
    title = "a threshold looks like it is in the wrong unit"
    example = (
        "``min_rss(10)`` — receive thresholds are negative dBm in "
        "practice; +10 suggests a mW or percentage value slipped in"
    )
    hint = "RSS/noise are dBm (negative), SNR is dB (typically 3..40)"

    def check(self, ctx: SpecContext) -> Iterator[Diagnostic]:
        lq = ctx.link_quality
        if lq is not None:
            if lq.min_rss_dbm is not None and lq.min_rss_dbm > 0:
                yield self.diagnostic(
                    f"min RSS of {lq.min_rss_dbm:+.1f} dBm is positive; "
                    f"receiver sensitivities are negative dBm",
                    location="link_quality.min_rss_dbm",
                    value=lq.min_rss_dbm,
                )
            if lq.min_snr_db is not None and 0 < lq.min_snr_db < 1:
                yield self.diagnostic(
                    f"min SNR of {lq.min_snr_db} dB is below 1 dB; this "
                    f"looks like a linear ratio, not decibels",
                    location="link_quality.min_snr_db",
                    value=lq.min_snr_db,
                )
        reach = ctx.reachability
        if reach is not None and reach.min_rss_dbm > 0:
            yield self.diagnostic(
                f"reachability RSS of {reach.min_rss_dbm:+.1f} dBm is "
                f"positive; receiver sensitivities are negative dBm",
                location="reachability.min_rss_dbm",
                value=reach.min_rss_dbm,
            )
        noise = ctx.template.link_type.noise_dbm
        if noise >= 0:
            yield self.diagnostic(
                f"link noise floor of {noise:+.1f} dBm is non-negative; "
                f"thermal noise floors sit far below 0 dBm",
                location=f"link_type {ctx.template.link_type.name!r}",
                value=noise,
            )


@spec_rule
class QualityPrunedConnectivityRule(SpecRule):
    """Quality bounds must leave every required route connected."""

    rule_id = "spec.quality-pruned-connectivity"
    default_severity = Severity.WARNING
    title = (
        "after dropping links that cannot meet the quality bound with any "
        "device, a required route is disconnected"
    )
    example = (
        "``min_signal_to_noise(85)`` — even the best PA + antenna pairing "
        "cannot reach 85 dB SNR across any candidate link, so every route "
        "is doomed before encoding"
    )
    hint = (
        "relax the RSS/SNR/BER bound, add stronger devices to the library, "
        "or densify the template"
    )

    def check(self, ctx: SpecContext) -> Iterator[Diagnostic]:
        threshold = self._rss_threshold(ctx)
        if threshold is None or ctx.library is None:
            return
        tx_hi = ctx.library.tx_gain_range()[1]
        rx_hi = ctx.library.rx_gain_range()[1]
        max_pl = tx_hi + rx_hi - threshold
        filtered = DiGraph()
        for node in ctx.template.graph.nodes():
            filtered.add_node(node)
        dropped = 0
        for u, v, pl in ctx.template.edges():
            if pl <= max_pl + 1e-9:
                filtered.add_edge(u, v, pl)
            else:
                dropped += 1
        if not dropped:
            return
        for i, route in enumerate(ctx.routes):
            if not _valid_endpoints(ctx, route):
                continue
            if _shortest_hops(
                ctx.template.graph, route.source, route.dest
            ) is None:
                continue  # spec.route-connectivity already fired
            if _shortest_hops(filtered, route.source, route.dest) is None:
                yield self.diagnostic(
                    f"route is connected on the template but not after "
                    f"dropping {dropped} link(s) whose path loss exceeds "
                    f"{max_pl:.1f} dB (best-device RSS floor "
                    f"{threshold:.1f} dBm)",
                    location=_route_location(i, route),
                    route=i,
                    max_path_loss_db=round(max_pl, 3),
                    rss_threshold_dbm=round(threshold, 3),
                )

    @staticmethod
    def _rss_threshold(ctx: SpecContext) -> float | None:
        """The RSS floor implied by the route link-quality bounds (dBm)."""
        lq = ctx.link_quality
        if lq is None or not ctx.routes:
            return None
        if ctx.library is None or not ctx.library.devices:
            return None
        link = ctx.template.link_type
        bounds: list[float] = []
        if lq.min_rss_dbm is not None:
            bounds.append(lq.min_rss_dbm)
        snr = lq.effective_min_snr_db(link.modulation)
        if snr is not None:
            bounds.append(snr + link.noise_dbm)
        return max(bounds) if bounds else None
