"""Symmetry orbit detection and lex-ordering constraint generation.

Candidate pools make the paper's formulation highly symmetric: routers
drawn from the same library entry at interchangeable positions produce
columns the constraint matrix cannot tell apart, and the solver
re-explores every permutation of them.  This pass finds such orbits and
breaks them with lexicographic ordering rows, the same device used by
the ``frasmt`` lex-ordering machinery referenced in ROADMAP.

Detection is two-staged so no unsound constraint can ever be emitted:

1. **Color refinement** (1-dimensional Weisfeiler–Leman) over the
   bipartite column/row graph proposes candidate orbits cheaply — columns
   that end with the same stable color *might* be interchangeable.
2. **Transposition verification** proves each *adjacent* transposition
   within a proposed orbit is a genuine model automorphism by comparing
   row-signature multisets.  Only rows touching the swapped pair can
   change, so each check is local.  Coupled orbits (columns that must
   move together with columns of another orbit) fail this check and are
   discarded rather than half-broken.

Verified adjacent transpositions generate the full symmetric group on
the orbit, so for any feasible solution there is a symmetric one with
the orbit's values sorted non-increasingly — which is exactly what the
emitted lex rows ``x_{o_1} >= x_{o_2} >= ...`` require.  Soundness
therefore holds orbit-by-orbit, and the optimal objective is unchanged.
"""

from __future__ import annotations

from collections import Counter, defaultdict

from repro.analysis.presolve.state import PresolveState, WorkRow

_INF = float("inf")

#: Quantization for color / signature hashing (same rationale as the
#: reductions pass: below model scale, above float noise).
_SIG_DIGITS = 12

#: Color refinement rounds; 1-WL stabilizes fast on these matrices and
#: verification catches anything refinement over-merges.
_MAX_REFINE_ROUNDS = 8

#: Orbits larger than this are truncated before verification so a
#: pathological model cannot make presolve quadratic; the first chunk
#: is still broken.
_MAX_ORBIT = 256


def _q(value: float) -> float:
    return round(value, _SIG_DIGITS)


def _refine_colors(state: PresolveState) -> dict[int, int]:
    """Stable 1-WL colors for live columns over the column/row graph."""
    live = state.live_columns()
    rows = [row for row in state.rows if row.alive and row.coeffs]
    col_color: dict[int, int] = {}
    palette: dict[object, int] = {}

    def intern(key: object) -> int:
        color = palette.get(key)
        if color is None:
            color = len(palette)
            palette[key] = color
        return color

    for j in live:
        col_color[j] = intern((
            "col",
            state.integer[j],
            _q(state.lower[j]),
            _q(state.upper[j]),
            _q(state.obj.get(j, 0.0)),
        ))
    for _ in range(_MAX_REFINE_ROUNDS):
        row_color = [
            intern((
                "row",
                _q(row.lower),
                _q(row.upper),
                tuple(sorted(
                    (_q(c), col_color[j])
                    for j, c in row.coeffs.items()
                    if j in col_color
                )),
            ))
            for row in rows
        ]
        incident: dict[int, list[tuple[float, int]]] = defaultdict(list)
        for idx, row in enumerate(rows):
            for j, c in row.coeffs.items():
                if j in col_color:
                    incident[j].append((_q(c), row_color[idx]))
        new_color = {
            j: intern((col_color[j], tuple(sorted(incident[j]))))
            for j in live
        }
        if len(set(new_color.values())) == len(set(col_color.values())):
            col_color = new_color
            break
        col_color = new_color
    return col_color


def _transposition_is_automorphism(
    state: PresolveState,
    rows_of: dict[int, list[WorkRow]],
    p: int,
    q: int,
) -> bool:
    """Whether swapping columns ``p`` and ``q`` maps the model to itself.

    Columns must agree on bounds, integrality and objective coefficient
    (pre-checked here even though refinement implies it), and the
    multiset of rows touching either column must be invariant under the
    swap.  Rows touching neither column map to themselves trivially.
    """
    if (
        state.integer[p] != state.integer[q]
        or state.lower[p] != state.lower[q]
        or state.upper[p] != state.upper[q]
        or _q(state.obj.get(p, 0.0)) != _q(state.obj.get(q, 0.0))
    ):
        return False
    touched: dict[int, WorkRow] = {}
    for row in rows_of.get(p, []):
        touched[id(row)] = row
    for row in rows_of.get(q, []):
        touched[id(row)] = row
    forward: Counter[tuple[object, ...]] = Counter()
    swapped: Counter[tuple[object, ...]] = Counter()
    for row in touched.values():
        if not row.alive:
            continue
        rest = tuple(sorted(
            (j, _q(c)) for j, c in row.coeffs.items() if j not in (p, q)
        ))
        a = _q(row.coeffs.get(p, 0.0))
        b = _q(row.coeffs.get(q, 0.0))
        bounds = (_q(row.lower), _q(row.upper))
        forward[(rest, a, b, bounds)] += 1
        swapped[(rest, b, a, bounds)] += 1
    return forward == swapped


def find_orbits(state: PresolveState) -> list[list[int]]:
    """Verified symmetry orbits (size >= 2) over the live columns.

    Each returned orbit is sorted by original column index and every
    adjacent transposition within it has been proven an automorphism.
    A refinement class whose chain of adjacent transpositions breaks
    part-way contributes its longest verified prefix (still a valid
    orbit: the verified transpositions generate the symmetric group on
    the prefix).
    """
    colors = _refine_colors(state)
    by_color: dict[int, list[int]] = defaultdict(list)
    for j, color in colors.items():
        by_color[color].append(j)
    rows_of: dict[int, list[WorkRow]] = defaultdict(list)
    for row in state.rows:
        if row.alive:
            for j in row.coeffs:
                rows_of[j].append(row)
    orbits: list[list[int]] = []
    for members in by_color.values():
        if len(members) < 2:
            continue
        members = sorted(members)[:_MAX_ORBIT]
        verified = [members[0]]
        for nxt in members[1:]:
            if _transposition_is_automorphism(
                state, rows_of, verified[-1], nxt,
            ):
                verified.append(nxt)
            else:
                break
        if len(verified) >= 2:
            orbits.append(verified)
    return orbits


def break_symmetry(state: PresolveState) -> tuple[int, int, int]:
    """Emit lex-ordering rows for every verified orbit.

    Appends ``x_p - x_q >= 0`` for consecutive orbit members to
    ``state.lex_rows``; returns ``(orbits_found, orbits_broken,
    lex_rows_added)``.
    """
    orbits = find_orbits(state)
    broken = 0
    added = 0
    for orbit in orbits:
        for p, nxt in zip(orbit, orbit[1:]):
            state.lex_rows.append(WorkRow(
                coeffs={p: 1.0, nxt: -1.0},
                lower=0.0,
                upper=_INF,
                name=f"presolve:lex[{state.names[p]}>={state.names[nxt]}]",
            ))
            added += 1
        broken += 1
    return len(orbits), broken, added


__all__ = ["break_symmetry", "find_orbits"]
