"""The presolve fixpoint driver.

``presolve(model)`` runs the pass pipeline to a fixpoint:

1. bound propagation (+ redundant/infeasible row detection),
2. coefficient / big-M strengthening,
3. constant-column fixing and substitution,
4. duplicate-row and parallel-column merging,
5. implied-integrality detection,

repeating while any pass changes the model (bounded by ``max_rounds``),
then — once, after the loop — symmetry breaking (``mode="full"`` only)
and the combinatorial lower-bound derivation, and finally extraction of
the reduced :class:`~repro.milp.model.Model` + postsolve recipe.

The reduced model carries the combinatorial bound as the
``objective_lower_bound`` entry of ``Model.hints`` so branch-and-bound
can terminate early; HiGHS simply ignores hints.

Modes
-----
``"off"``     return the model untouched (identity postsolve).
``"reduce"``  all transformations except symmetry lex rows.
``"full"``    everything, including symmetry breaking.
"""

from __future__ import annotations

import time

from repro.analysis.presolve.bounds import combinatorial_lower_bound
from repro.analysis.presolve.postsolve import PostsolveMap
from repro.analysis.presolve.propagation import (
    propagate,
    strengthen_coefficients,
)
from repro.analysis.presolve.reductions import (
    detect_implied_integrality,
    fix_constant_columns,
    merge_duplicate_rows,
    merge_parallel_columns,
)
from repro.analysis.presolve.report import PresolveReport, PresolveResult
from repro.analysis.presolve.state import PresolveState
from repro.analysis.presolve.symmetry import break_symmetry
from repro.milp.expr import LinExpr
from repro.milp.model import Model
from repro.telemetry import counter, span

PRESOLVE_MODES = ("off", "reduce", "full")


def _identity_result(model: Model, mode: str) -> PresolveResult:
    """An untouched-model result (mode "off" or nothing to do)."""
    stats = model.stats()
    report = PresolveReport(
        mode=mode,
        rows_before=stats.num_constraints,
        cols_before=stats.num_vars,
        nonzeros_before=stats.num_nonzeros,
        rows_after=stats.num_constraints,
        cols_after=stats.num_vars,
        nonzeros_after=stats.num_nonzeros,
    )
    postsolve = PostsolveMap(
        n_original=stats.num_vars,
        fixed={},
        column_of={j: j for j in range(stats.num_vars)},
        merges=[],
        original_objective=LinExpr(
            model.objective.coeffs, model.objective.constant,
        ),
    )
    return PresolveResult(model=model, postsolve=postsolve, report=report)


def presolve(
    model: Model, *, mode: str = "full", max_rounds: int = 10,
) -> PresolveResult:
    """Statically analyze and transform ``model``; never mutates it.

    Returns a :class:`PresolveResult` whose ``model`` is the reduced
    model (identical shape to the input only when nothing fired), whose
    ``postsolve`` lifts reduced solutions back, and whose ``report``
    accounts for every reduction.  A proved-infeasible model comes back
    with the *original* model and ``report.infeasible_reason`` set — the
    caller decides whether to trust the proof or solve anyway.
    """
    if mode not in PRESOLVE_MODES:
        raise ValueError(
            f"unknown presolve mode {mode!r}; expected one of "
            f"{', '.join(PRESOLVE_MODES)}"
        )
    if mode == "off":
        return _identity_result(model, mode)
    started = time.perf_counter()
    stats = model.stats()
    with span(
        "presolve.run",
        mode=mode,
        rows=stats.num_constraints,
        cols=stats.num_vars,
        nonzeros=stats.num_nonzeros,
    ) as run_span:
        state = PresolveState(model)
        report = PresolveReport(
            mode=mode,
            rows_before=stats.num_constraints,
            cols_before=stats.num_vars,
            nonzeros_before=stats.num_nonzeros,
        )
        for round_no in range(1, max_rounds + 1):
            changed = 0
            tightened, removed = propagate(state)
            report.bounds_tightened += tightened
            report.rows_removed += removed
            changed += tightened + removed
            if state.infeasible is None:
                strengthened = strengthen_coefficients(state)
                report.coefficients_strengthened += strengthened
                changed += strengthened
            if state.infeasible is None:
                fixed = fix_constant_columns(state)
                report.vars_fixed += fixed
                changed += fixed
            if state.infeasible is None:
                merged_rows = merge_duplicate_rows(state)
                report.duplicate_rows_merged += merged_rows
                report.rows_removed += merged_rows
                changed += merged_rows
            if state.infeasible is None:
                merged_cols = merge_parallel_columns(state)
                report.parallel_cols_merged += merged_cols
                changed += merged_cols
            if state.infeasible is None:
                implied = detect_implied_integrality(state)
                report.implied_integral += implied
                changed += implied
            report.rounds = round_no
            if state.infeasible is not None or changed == 0:
                break
        if state.infeasible is not None:
            report.infeasible_reason = state.infeasible
            report.rows_after = report.rows_before
            report.cols_after = report.cols_before
            report.nonzeros_after = report.nonzeros_before
            report.elapsed_s = time.perf_counter() - started
            run_span.set_attribute("infeasible", True)
            counter("presolve.runs", mode=mode, outcome="infeasible").inc()
            return PresolveResult(
                model=model,
                postsolve=_identity_result(model, mode).postsolve,
                report=report,
            )
        if mode == "full":
            found, broken, added = break_symmetry(state)
            report.orbits_found = found
            report.orbits_broken = broken
            report.lex_rows_added = added
        report.combinatorial_lower_bound = combinatorial_lower_bound(state)
        reduced, postsolve = state.extract()
        if report.combinatorial_lower_bound is not None:
            reduced.hints["objective_lower_bound"] = (
                report.combinatorial_lower_bound
            )
        reduced_stats = reduced.stats()
        report.rows_after = reduced_stats.num_constraints
        report.cols_after = reduced_stats.num_vars
        report.nonzeros_after = reduced_stats.num_nonzeros
        report.elapsed_s = time.perf_counter() - started
        run_span.set_attribute("rows_after", report.rows_after)
        run_span.set_attribute("cols_after", report.cols_after)
        run_span.set_attribute("rounds", report.rounds)
        counter("presolve.runs", mode=mode, outcome="ok").inc()
        counter("presolve.rows_removed").inc(report.rows_reduced)
        counter("presolve.cols_removed").inc(report.cols_reduced)
        counter("presolve.bounds_tightened").inc(report.bounds_tightened)
        if report.lex_rows_added:
            counter("presolve.lex_rows_added").inc(report.lex_rows_added)
        return PresolveResult(
            model=reduced, postsolve=postsolve, report=report,
        )


__all__ = ["PRESOLVE_MODES", "presolve"]
