"""Structural reductions: fixing, duplicate rows, parallel columns.

These passes shrink the model rather than just tightening it:

* **Variable fixing** — columns whose bounds coincide (possibly because
  propagation squeezed them) are substituted out; columns that appear in
  no live row are fixed at their objective-optimal bound.
* **Duplicate-row merging** — rows with proportional coefficient vectors
  are intersected into one (sign-flip swapping the bound roles), which
  both removes rows and can expose new infeasibility.
* **Parallel-column merging** — columns indistinguishable to every row
  *and* the objective are aggregated into their sum.  Valid for
  continuous pairs and for integer pairs (sums of two integer ranges are
  contiguous); postsolve splits the aggregate back within the recorded
  bounds.
* **Implied integrality** — a continuous column with a ±1 coefficient in
  an equality row whose other terms are all integral must itself take
  integer values; marking it integral lets later rounds round its bounds
  and lets branch-and-bound branch on it.
"""

from __future__ import annotations

import math

from repro.analysis.presolve.postsolve import ColumnMerge
from repro.analysis.presolve.state import (
    PresolveState,
    WorkRow,
    scaled_tol,
)

_INF = float("inf")

#: Quantization used when hashing coefficient signatures — safely below
#: any model coefficient scale but above float noise.
_SIG_DIGITS = 12


def _sig(value: float) -> float:
    return round(value, _SIG_DIGITS)


def fix_constant_columns(state: PresolveState) -> int:
    """Fix every live column whose bounds have collapsed to a point.

    Also fixes columns that appear in no live row at their
    objective-optimal bound (minimization: lower bound for positive
    objective coefficients, upper for negative; either bound — the lower
    by convention — when the column is absent from the objective too).
    Returns the number of columns fixed.
    """
    in_some_row: set[int] = set()
    for row in state.rows:
        if row.alive:
            in_some_row.update(row.coeffs)
    fixed = 0
    for j in state.live_columns():
        lo, hi = state.lower[j], state.upper[j]
        if hi - lo <= scaled_tol(hi):
            state.fix(j, 0.5 * (lo + hi))
            fixed += 1
            continue
        if j in in_some_row:
            continue
        coeff = state.obj.get(j, 0.0)
        if coeff > 0.0 and lo != -_INF:
            state.fix(j, lo)
            fixed += 1
        elif coeff < 0.0 and hi != _INF:
            state.fix(j, hi)
            fixed += 1
        elif coeff == 0.0 and (lo != -_INF or hi != _INF):
            state.fix(j, lo if lo != -_INF else hi)
            fixed += 1
        if state.infeasible is not None:
            break
    return fixed


def _row_signature(row: WorkRow) -> tuple[float, tuple[tuple[int, float], ...]]:
    """Pivot-scaled signature: proportional rows share a signature.

    The pivot is the coefficient of the smallest live column index;
    scaling by it makes the signature invariant under positive scaling,
    and rows that differ by a *negative* factor get distinct signatures
    here but identical ones after the caller retries with the negated
    row — handled by scaling so the pivot is always +1.
    """
    items = sorted(row.coeffs.items())
    pivot = items[0][1]
    scaled = tuple((j, _sig(c / pivot)) for j, c in items)
    return (1.0 if pivot > 0 else -1.0), scaled


def merge_duplicate_rows(state: PresolveState) -> int:
    """Merge rows with proportional coefficient vectors.

    The surviving row takes the intersection of the scaled bounds; an
    empty intersection proves infeasibility.  Returns rows removed.
    """
    seen: dict[tuple[tuple[int, float], ...], WorkRow] = {}
    pivots: dict[int, float] = {}
    merged = 0
    for row in state.rows:
        if not row.alive or not row.coeffs:
            continue
        sign, scaled = _row_signature(row)
        keeper = seen.get(scaled)
        if keeper is None:
            seen[scaled] = row
            pivots[id(row)] = sign * abs(sorted(row.coeffs.items())[0][1])
            continue
        # Scale this row's bounds into the keeper's frame: both rows,
        # divided by their own pivot, have identical coefficients, so
        # row/|pivot_row| * sign compares directly after rescaling by
        # the keeper's pivot magnitude.
        keeper_pivot = pivots[id(keeper)]
        row_pivot = sorted(row.coeffs.items())[0][1]
        factor = keeper_pivot / row_pivot
        lo, hi = row.lower, row.upper
        if factor > 0:
            new_lo = lo * factor if lo != -_INF else -_INF
            new_hi = hi * factor if hi != _INF else _INF
        else:
            new_lo = hi * factor if hi != _INF else -_INF
            new_hi = lo * factor if lo != -_INF else _INF
        merged_lo = max(keeper.lower, new_lo)
        merged_hi = min(keeper.upper, new_hi)
        if merged_lo > merged_hi + scaled_tol(merged_hi):
            state.mark_infeasible(
                f"duplicate rows {keeper.name or '?'} and "
                f"{row.name or '?'} have disjoint bounds"
            )
            return merged
        keeper.lower = merged_lo
        keeper.upper = merged_hi
        row.alive = False
        merged += 1
    return merged


def _column_profile(
    state: PresolveState, j: int,
) -> tuple[object, ...]:
    """Hashable identity of column ``j`` as rows + objective see it."""
    entries = []
    for idx in state.rows_of.get(j, ()):
        row = state.rows[idx]
        if row.alive and j in row.coeffs:
            entries.append((idx, _sig(row.coeffs[j])))
    return (
        state.integer[j],
        _sig(state.obj.get(j, 0.0)),
        tuple(entries),
    )


def merge_parallel_columns(state: PresolveState) -> int:
    """Aggregate columns identical to every row and the objective.

    The kept column's bounds widen to the sum of both ranges (both must
    be finite on at least one side for the split to be well-defined; we
    require fully finite bounds, which every candidate-selection binary
    has).  Returns the number of columns merged away.
    """
    groups: dict[tuple[object, ...], int] = {}
    merged = 0
    for j in state.live_columns():
        if not (math.isfinite(state.lower[j]) and math.isfinite(state.upper[j])):
            continue
        profile = _column_profile(state, j)
        keeper = groups.get(profile)
        if keeper is None:
            groups[profile] = j
            continue
        state.merges.append(ColumnMerge(
            kept=keeper,
            dropped=j,
            dropped_lower=state.lower[j],
            dropped_upper=state.upper[j],
            rest_lower=state.lower[keeper],
            rest_upper=state.upper[keeper],
            integer=state.integer[j],
        ))
        state.lower[keeper] += state.lower[j]
        state.upper[keeper] += state.upper[j]
        state.merged_away.add(j)
        for idx in state.rows_of.get(j, ()):
            if state.rows[idx].alive:
                state.rows[idx].coeffs.pop(j, None)
        state.obj.pop(j, None)
        merged += 1
    return merged


def detect_implied_integrality(state: PresolveState) -> int:
    """Mark continuous columns forced integral by an equality row.

    If an equality row has integral bound, a single continuous column
    with coefficient ±1, and every other term integer-valued (integer
    column with integer coefficient), that column must take an integer
    value in any feasible solution.  Returns columns marked.
    """
    marked = 0
    for row in state.rows:
        if not row.alive or not row.is_equality:
            continue
        if not math.isfinite(row.lower):
            continue
        if abs(row.lower - round(row.lower)) > scaled_tol(row.lower):
            continue
        candidate = -1
        ok = True
        for j, coeff in row.coeffs.items():
            if state.integer[j]:
                if abs(coeff - round(coeff)) > scaled_tol(coeff):
                    ok = False
                    break
                continue
            if candidate >= 0 or abs(abs(coeff) - 1.0) > scaled_tol(1.0):
                ok = False
                break
            candidate = j
        if ok and candidate >= 0:
            state.integer[candidate] = True
            marked += 1
    return marked


__all__ = [
    "detect_implied_integrality",
    "fix_constant_columns",
    "merge_duplicate_rows",
    "merge_parallel_columns",
]
