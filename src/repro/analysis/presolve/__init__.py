"""repro.analysis.presolve — static analysis that transforms the MILP.

Where :mod:`repro.analysis` *reports* on models, this package *acts* on
what it proves: a fixpoint of activity-based bound propagation, big-M
strengthening, constant fixing, duplicate-row / parallel-column merging,
implied integrality, symmetry breaking, and an LP-free combinatorial
objective bound — producing a smaller, tighter model plus the
:class:`PostsolveMap` that lifts its solutions back to the original
variable space with the exact same objective value.

Entry point::

    from repro.analysis.presolve import presolve

    result = presolve(model, mode="full")
    solution = solver.solve(result.model)
    original_space = result.postsolve.restore(solution)

See ``docs/diagnostics.md`` for the reduction catalog and
``docs/formulation.md`` for the ``SolveOptions(presolve=...)`` wiring.
"""

from repro.analysis.presolve.bounds import combinatorial_lower_bound
from repro.analysis.presolve.engine import PRESOLVE_MODES, presolve
from repro.analysis.presolve.postsolve import (
    ColumnMerge,
    PostsolveMap,
    restores_cleanly,
)
from repro.analysis.presolve.propagation import propagated_bounds
from repro.analysis.presolve.report import PresolveReport, PresolveResult
from repro.analysis.presolve.symmetry import find_orbits

__all__ = [
    "PRESOLVE_MODES",
    "ColumnMerge",
    "PostsolveMap",
    "PresolveReport",
    "PresolveResult",
    "combinatorial_lower_bound",
    "find_orbits",
    "presolve",
    "propagated_bounds",
    "restores_cleanly",
]
