"""Presolve accounting: what the fixpoint loop proved and removed.

The :class:`PresolveReport` is the user-facing record of a presolve run.
It rides on ``SynthesisResult.diagnostics`` (as an INFO diagnostic with
the full dict in ``data``), feeds the ``repro lint --presolve`` CLI
mode, and is what ``benchmarks/bench_presolve.py`` gates on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.presolve.postsolve import PostsolveMap
from repro.milp.model import Model


@dataclass
class PresolveReport:
    """Counters accumulated across all rounds of a presolve run."""

    mode: str = "full"
    rounds: int = 0
    #: Original model shape.
    rows_before: int = 0
    cols_before: int = 0
    nonzeros_before: int = 0
    #: Reduced model shape (including any symmetry rows added).
    rows_after: int = 0
    cols_after: int = 0
    nonzeros_after: int = 0
    #: Per-pass counters.
    bounds_tightened: int = 0
    coefficients_strengthened: int = 0
    vars_fixed: int = 0
    rows_removed: int = 0
    duplicate_rows_merged: int = 0
    parallel_cols_merged: int = 0
    implied_integral: int = 0
    #: Symmetry breaking.
    orbits_found: int = 0
    orbits_broken: int = 0
    lex_rows_added: int = 0
    #: LP-free combinatorial lower bound (user objective space); ``None``
    #: when no finite bound could be derived.
    combinatorial_lower_bound: float | None = None
    #: Nonempty iff presolve proved the model infeasible.
    infeasible_reason: str | None = None
    #: Wall-clock spent inside the presolve engine.
    elapsed_s: float = 0.0

    @property
    def rows_reduced(self) -> int:
        return max(0, self.rows_before - self.rows_after)

    @property
    def cols_reduced(self) -> int:
        return max(0, self.cols_before - self.cols_after)

    @property
    def nonzeros_reduced(self) -> int:
        return max(0, self.nonzeros_before - self.nonzeros_after)

    @property
    def reduced_anything(self) -> bool:
        """Whether the run changed the model at all."""
        return bool(
            self.rows_reduced or self.cols_reduced
            or self.nonzeros_reduced or self.bounds_tightened
            or self.coefficients_strengthened or self.implied_integral
            or self.lex_rows_added or self.infeasible_reason
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "mode": self.mode,
            "rounds": self.rounds,
            "rows": {
                "before": self.rows_before,
                "after": self.rows_after,
                "removed": self.rows_reduced,
            },
            "cols": {
                "before": self.cols_before,
                "after": self.cols_after,
                "removed": self.cols_reduced,
            },
            "nonzeros": {
                "before": self.nonzeros_before,
                "after": self.nonzeros_after,
                "removed": self.nonzeros_reduced,
            },
            "bounds_tightened": self.bounds_tightened,
            "coefficients_strengthened": self.coefficients_strengthened,
            "vars_fixed": self.vars_fixed,
            "rows_removed": self.rows_removed,
            "duplicate_rows_merged": self.duplicate_rows_merged,
            "parallel_cols_merged": self.parallel_cols_merged,
            "implied_integral": self.implied_integral,
            "orbits_found": self.orbits_found,
            "orbits_broken": self.orbits_broken,
            "lex_rows_added": self.lex_rows_added,
            "combinatorial_lower_bound": self.combinatorial_lower_bound,
            "infeasible_reason": self.infeasible_reason,
            "elapsed_s": self.elapsed_s,
        }

    def summary(self) -> str:
        """One-line human summary for logs and CLI output."""
        if self.infeasible_reason:
            return f"presolve proved infeasibility: {self.infeasible_reason}"
        parts = [
            f"rows {self.rows_before}->{self.rows_after}",
            f"cols {self.cols_before}->{self.cols_after}",
            f"nnz {self.nonzeros_before}->{self.nonzeros_after}",
        ]
        if self.bounds_tightened:
            parts.append(f"{self.bounds_tightened} bounds tightened")
        if self.coefficients_strengthened:
            parts.append(
                f"{self.coefficients_strengthened} coefficients strengthened"
            )
        if self.vars_fixed:
            parts.append(f"{self.vars_fixed} vars fixed")
        if self.implied_integral:
            parts.append(f"{self.implied_integral} implied integral")
        if self.orbits_broken:
            parts.append(
                f"{self.orbits_broken} orbits broken "
                f"(+{self.lex_rows_added} lex rows)"
            )
        if self.combinatorial_lower_bound is not None:
            parts.append(
                f"combinatorial bound {self.combinatorial_lower_bound:g}"
            )
        return (
            f"presolve[{self.mode}] {self.rounds} round(s): "
            + ", ".join(parts)
        )

    def to_diagnostic(self) -> Diagnostic:
        """The report as a diagnostic riding on ``SynthesisResult``.

        A proved-infeasible model surfaces at ERROR severity (the solve
        short-circuits); everything else is informational.
        """
        severity = (
            Severity.ERROR if self.infeasible_reason else Severity.INFO
        )
        return Diagnostic(
            rule_id=(
                "presolve.infeasible" if self.infeasible_reason
                else "presolve.report"
            ),
            severity=severity,
            message=self.summary(),
            location="model",
            hint=(
                "the model is infeasible before any solver ran; inspect "
                "the conflicting constraints named in the message"
                if self.infeasible_reason else None
            ),
            data=self.to_dict(),
        )


@dataclass
class PresolveResult:
    """Everything a presolve run hands back to the caller.

    ``model`` is the reduced model (the *original* model when presolve
    proved infeasibility or made no change), ``postsolve`` restores
    reduced-space solutions, and ``report`` is the accounting above.
    """

    model: Model
    postsolve: PostsolveMap
    report: PresolveReport = field(default_factory=PresolveReport)

    @property
    def proved_infeasible(self) -> bool:
        return self.report.infeasible_reason is not None
