"""Mutable working state of a presolve run.

The presolve passes operate on a cheap mutable mirror of the
:class:`~repro.milp.model.Model` — plain lists of bounds, dict-backed
rows, an objective coefficient map — so transformations never mutate the
caller's model.  :meth:`PresolveState.extract` rebuilds a fresh reduced
``Model`` (plus the :class:`~repro.analysis.presolve.postsolve
.PostsolveMap` recipe) once the fixpoint loop settles.

Infinity-safe activity bounds follow the standard presolve trick of
tracking the finite part and the number of infinite contributions
separately, so "activity excluding variable j" stays well-defined when
exactly one term is unbounded.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.analysis.presolve.postsolve import ColumnMerge, PostsolveMap
from repro.milp.expr import LinExpr
from repro.milp.model import Model

_INF = float("inf")

#: Base feasibility tolerance of the presolve passes.
TOL = 1e-9


def scaled_tol(reference: float) -> float:
    """Feasibility tolerance scaled to the magnitude of ``reference``."""
    if math.isinf(reference):
        return TOL
    return TOL * max(1.0, abs(reference))


@dataclass
class WorkRow:
    """One constraint row in presolve working form: ``lo <= a.x <= hi``."""

    coeffs: dict[int, float]
    lower: float
    upper: float
    name: str = ""
    alive: bool = True

    @property
    def is_equality(self) -> bool:
        return self.lower == self.upper

    @property
    def one_sided(self) -> bool:
        return (self.lower == -_INF) != (self.upper == _INF)


@dataclass(frozen=True)
class Activity:
    """Interval of a row's activity with infinity bookkeeping.

    ``lo``/``hi`` are the *finite parts*; ``lo_infs``/``hi_infs`` count
    the terms whose contribution is infinite.  The true minimum activity
    is ``-inf`` whenever ``lo_infs > 0`` (symmetrically for the max).
    """

    lo: float
    hi: float
    lo_infs: int
    hi_infs: int

    @property
    def min(self) -> float:
        return -_INF if self.lo_infs else self.lo

    @property
    def max(self) -> float:
        return _INF if self.hi_infs else self.hi


class PresolveState:
    """The mutable mirror a presolve run transforms."""

    def __init__(self, model: Model) -> None:
        self.model = model
        variables = model.variables
        self.n = len(variables)
        self.lower: list[float] = [v.lower for v in variables]
        self.upper: list[float] = [v.upper for v in variables]
        self.integer: list[bool] = [v.is_integer for v in variables]
        self.names: list[str] = [v.name for v in variables]
        self.rows: list[WorkRow] = []
        for constraint in model.constraints:
            coeffs, lo, hi = constraint.normalized()
            self.rows.append(WorkRow(
                {i: c for i, c in coeffs.items() if c != 0.0},
                lo, hi, constraint.name,
            ))
        #: Column -> indices of rows referencing it at construction.  The
        #: passes only ever *remove* coefficients (no fill-in), so this
        #: stays a superset of the live incidence and lets per-column
        #: work touch just the relevant rows instead of scanning all.
        self.rows_of: dict[int, list[int]] = {}
        for idx, row in enumerate(self.rows):
            for j in row.coeffs:
                self.rows_of.setdefault(j, []).append(idx)
        self.obj: dict[int, float] = {
            i: c for i, c in model.objective.coeffs.items() if c != 0.0
        }
        self.obj_constant: float = model.objective.constant
        #: Original index -> value, for variables proven constant.
        self.fixed: dict[int, float] = {}
        #: Parallel-column merges, in application order.
        self.merges: list[ColumnMerge] = []
        #: Columns absorbed into an aggregate by a merge.
        self.merged_away: set[int] = set()
        #: Reason string once the model is proven infeasible.
        self.infeasible: str | None = None
        #: Extra rows appended by symmetry breaking (kept separate so the
        #: report can distinguish reductions from additions).
        self.lex_rows: list[WorkRow] = []

    # -- column liveness ----------------------------------------------------

    def is_live(self, j: int) -> bool:
        """Whether column ``j`` still exists in the reduced model."""
        return j not in self.fixed and j not in self.merged_away

    def live_columns(self) -> list[int]:
        """Live column indices in original order."""
        return [j for j in range(self.n) if self.is_live(j)]

    def live_rows(self) -> list[WorkRow]:
        """Live rows in original order (excludes symmetry additions)."""
        return [row for row in self.rows if row.alive]

    def is_binary(self, j: int) -> bool:
        """Whether column ``j`` is currently a 0/1 integer."""
        return (
            self.integer[j]
            and self.lower[j] == 0.0
            and self.upper[j] == 1.0
        )

    # -- activities ---------------------------------------------------------

    def activity(self, row: WorkRow) -> Activity:
        """Infinity-safe activity interval of ``row``."""
        lo = hi = 0.0
        lo_infs = hi_infs = 0
        lower, upper = self.lower, self.upper
        for j, coeff in row.coeffs.items():
            if coeff > 0.0:
                term_lo, term_hi = lower[j], upper[j]
            else:
                term_lo, term_hi = upper[j], lower[j]
            contrib_lo = coeff * term_lo
            contrib_hi = coeff * term_hi
            if math.isinf(contrib_lo):
                lo_infs += 1
            else:
                lo += contrib_lo
            if math.isinf(contrib_hi):
                hi_infs += 1
            else:
                hi += contrib_hi
        return Activity(lo, hi, lo_infs, hi_infs)

    def residual_min(self, row: WorkRow, act: Activity, j: int) -> float:
        """Minimum activity of ``row`` excluding column ``j``.

        Returns ``-inf`` when another term is unbounded below.
        """
        coeff = row.coeffs[j]
        bound = self.lower[j] if coeff > 0.0 else self.upper[j]
        contrib = coeff * bound
        if math.isinf(contrib):
            return -_INF if act.lo_infs > 1 else act.lo
        return -_INF if act.lo_infs else act.lo - contrib

    def residual_max(self, row: WorkRow, act: Activity, j: int) -> float:
        """Maximum activity of ``row`` excluding column ``j``."""
        coeff = row.coeffs[j]
        bound = self.upper[j] if coeff > 0.0 else self.lower[j]
        contrib = coeff * bound
        if math.isinf(contrib):
            return _INF if act.hi_infs > 1 else act.hi
        return _INF if act.hi_infs else act.hi - contrib

    # -- mutations ----------------------------------------------------------

    def mark_infeasible(self, reason: str) -> None:
        """Record a proof of infeasibility (first proof wins)."""
        if self.infeasible is None:
            self.infeasible = reason

    def fix(self, j: int, value: float) -> None:
        """Fix column ``j`` at ``value`` and substitute it out of every
        live row and the objective."""
        if self.integer[j]:
            value = float(round(value))
        self.fixed[j] = value
        self.lower[j] = self.upper[j] = value
        for idx in self.rows_of.get(j, ()):
            row = self.rows[idx]
            if not row.alive:
                continue
            coeff = row.coeffs.pop(j, None)
            if coeff is None:
                continue
            shift = coeff * value
            if row.lower != -_INF:
                row.lower -= shift
            if row.upper != _INF:
                row.upper -= shift
            if not row.coeffs:
                # Constant row: satisfied or a proof of infeasibility.
                if (row.lower > scaled_tol(row.lower)
                        or row.upper < -scaled_tol(row.upper)):
                    self.mark_infeasible(
                        f"row {row.name or '?'} reduced to an "
                        f"unsatisfiable constant"
                    )
                row.alive = False
        obj_coeff = self.obj.pop(j, None)
        if obj_coeff is not None:
            self.obj_constant += obj_coeff * value

    def nonzeros(self) -> int:
        """Nonzero count over the live rows."""
        return sum(len(row.coeffs) for row in self.rows if row.alive)

    # -- extraction ---------------------------------------------------------

    def extract(self) -> tuple[Model, PostsolveMap]:
        """Rebuild the reduced :class:`Model` plus the postsolve recipe."""
        reduced = Model(f"{self.model.name}:presolved")
        column_of: dict[int, int] = {}
        for j in self.live_columns():
            var = reduced.add_var(
                self.names[j],
                lower=self.lower[j],
                upper=self.upper[j],
                integer=self.integer[j],
            )
            column_of[j] = var.index
        for row in [*self.rows, *self.lex_rows]:
            if not row.alive or not row.coeffs:
                continue
            expr = LinExpr({column_of[j]: c for j, c in row.coeffs.items()})
            reduced.add_range(expr, row.lower, row.upper, name=row.name)
        reduced.minimize(LinExpr(
            {column_of[j]: c for j, c in self.obj.items()},
            self.obj_constant,
        ))
        postsolve = PostsolveMap(
            n_original=self.n,
            fixed=dict(self.fixed),
            column_of=column_of,
            merges=list(self.merges),
            original_objective=LinExpr(
                self.model.objective.coeffs,
                self.model.objective.constant,
            ),
        )
        return reduced, postsolve
