"""Activity-based bound propagation and big-M coefficient strengthening.

These are the classic feasibility-preserving row passes of a MILP
presolve (cf. Achterberg et al., "Presolve reductions in MIP"):

* **Bound propagation** — for each row ``lo <= a.x <= hi`` and each
  column ``j`` with coefficient ``a_j``, the residual activity of the
  other terms implies a bound on ``x_j``; integer columns round the
  implied bound inward.  Iterated to a fixpoint this is exactly the
  Heuristic-mode bound tightening of the WAN-router wiring solver.
* **Redundancy / infeasibility detection** — a row whose activity
  interval lies inside its bounds is implied by the bounds alone and is
  dropped; one whose activity interval cannot meet its bounds proves the
  model infeasible outright.
* **Coefficient (big-M) strengthening** — on a one-sided row, a binary
  whose coefficient is larger than the residual activity requires can be
  shrunk (shifting the bound for "relaxing at one" indicators) without
  changing the integer-feasible set, tightening the LP relaxation.

All passes are pure interval arithmetic over the working state: O(nnz)
per sweep, no LP.
"""

from __future__ import annotations

import math

from repro.analysis.presolve.state import (
    TOL,
    Activity,
    PresolveState,
    WorkRow,
    scaled_tol,
)
from repro.milp.model import Model

_INF = float("inf")

#: Minimum relative improvement before a tightened bound is applied —
#: guards the fixpoint loop against crawling by epsilons.
_MIN_IMPROVE = 1e-7

#: Slack below which coefficient strengthening is not worth the rewrite.
_MIN_STRENGTHEN = 1e-6


def _tighten_upper(state: PresolveState, j: int, bound: float) -> bool:
    """Apply ``x_j <= bound`` if it improves the current upper bound."""
    if state.integer[j]:
        bound = math.floor(bound + 1e-6)
    current = state.upper[j]
    if bound >= current - _MIN_IMPROVE * max(1.0, abs(current)):
        return False
    state.upper[j] = bound
    if bound < state.lower[j] - scaled_tol(bound):
        state.mark_infeasible(
            f"bounds of {state.names[j]!r} crossed during propagation "
            f"([{state.lower[j]:g}, {bound:g}])"
        )
    return True


def _tighten_lower(state: PresolveState, j: int, bound: float) -> bool:
    """Apply ``x_j >= bound`` if it improves the current lower bound."""
    if state.integer[j]:
        bound = math.ceil(bound - 1e-6)
    current = state.lower[j]
    if bound <= current + _MIN_IMPROVE * max(1.0, abs(current)):
        return False
    state.lower[j] = bound
    if bound > state.upper[j] + scaled_tol(bound):
        state.mark_infeasible(
            f"bounds of {state.names[j]!r} crossed during propagation "
            f"([{bound:g}, {state.upper[j]:g}])"
        )
    return True


def _propagate_row(state: PresolveState, row: WorkRow) -> tuple[int, bool]:
    """One propagation sweep over ``row``.

    Returns ``(bounds_tightened, removed)``; flags infeasibility on the
    state when the activity interval cannot meet the row bounds.
    """
    act = state.activity(row)
    lo, hi = row.lower, row.upper
    # Infeasible by interval arithmetic alone.
    if act.min > hi + scaled_tol(hi) or act.max < lo - scaled_tol(lo):
        state.mark_infeasible(
            f"row {row.name or '?'}: activity interval "
            f"[{act.min:g}, {act.max:g}] cannot meet bounds "
            f"[{lo:g}, {hi:g}]"
        )
        return 0, False
    # Redundant: implied by the variable bounds alone.
    if ((lo == -_INF or act.min >= lo - scaled_tol(lo))
            and (hi == _INF or act.max <= hi + scaled_tol(hi))):
        row.alive = False
        return 0, True
    tightened = 0
    for j, coeff in list(row.coeffs.items()):
        if coeff == 0.0:
            continue
        if hi != _INF:
            residual = state.residual_min(row, act, j)
            if residual != -_INF:
                implied = (hi - residual) / coeff
                if coeff > 0.0:
                    if _tighten_upper(state, j, implied):
                        tightened += 1
                elif _tighten_lower(state, j, implied):
                    tightened += 1
        if lo != -_INF:
            residual = state.residual_max(row, act, j)
            if residual != _INF:
                implied = (lo - residual) / coeff
                if coeff > 0.0:
                    if _tighten_lower(state, j, implied):
                        tightened += 1
                elif _tighten_upper(state, j, implied):
                    tightened += 1
        if state.infeasible is not None:
            return tightened, False
        if tightened:
            # Bounds moved under this row; refresh the activity so later
            # columns see the tightened interval.
            act = state.activity(row)
    return tightened, False


def propagate(state: PresolveState) -> tuple[int, int]:
    """One full bound-propagation sweep over every live row.

    Returns ``(bounds_tightened, rows_removed)``.
    """
    tightened = 0
    removed = 0
    for row in state.rows:
        if not row.alive:
            continue
        row_tightened, row_removed = _propagate_row(state, row)
        tightened += row_tightened
        removed += 1 if row_removed else 0
        if state.infeasible is not None:
            break
    return tightened, removed


def strengthen_coefficients(state: PresolveState) -> int:
    """Big-M / coefficient strengthening over one-sided rows.

    Works on the canonical ``d.x >= L`` orientation (``<=`` rows are
    negated in and back out).  For a binary ``j`` with ``d_j > 0`` whose
    slack ``s = m + d_j - L`` is positive (``m`` the residual minimum),
    the coefficient shrinks to ``L - m``; for ``d_j < 0`` the
    coefficient and the bound both shift by the slack ``m - L`` — the
    classic tightening of ``e >= d - M(1-b)`` to the tightest implied M.
    The integer-feasible set is unchanged; the LP relaxation tightens.

    Returns the number of coefficients strengthened.
    """
    changed = 0
    for row in state.rows:
        if not row.alive or not row.one_sided:
            continue
        changed += _strengthen_row(state, row)
    return changed


def _strengthen_row(state: PresolveState, row: WorkRow) -> int:
    """Strengthen one one-sided row in place; returns change count."""
    geq = row.upper == _INF
    changed = 0
    for j in list(row.coeffs.keys()):
        if not state.is_binary(j):
            continue
        plan = strengthened_coefficient(state, row, j)
        if plan is None:
            continue
        new_coeff, new_bound = plan
        if new_coeff == 0.0:
            del row.coeffs[j]
        else:
            row.coeffs[j] = new_coeff if geq else -new_coeff
        if geq:
            row.lower = new_bound
        else:
            row.upper = -new_bound
        changed += 1
        if not row.coeffs:
            row.alive = False
            break
    return changed


def strengthened_coefficient(
    state: PresolveState, row: WorkRow, j: int,
) -> tuple[float, float] | None:
    """The strengthening a one-sided ``row`` admits on binary ``j``.

    Returns ``(new_coeff, new_bound)`` in the canonical ``d.x >= L``
    orientation — the caller negates back for ``<=`` rows — or ``None``
    when the coefficient is already as tight as the activity bounds can
    prove.  This is the single source of truth consulted by both the
    transforming pass above and the ``model.loose-big-m`` lint rule.
    """
    if not row.one_sided:
        return None
    geq = row.upper == _INF
    coeff = row.coeffs.get(j, 0.0)
    if coeff == 0.0:
        return None
    d_j = coeff if geq else -coeff
    bound = row.lower if geq else -row.upper
    if not math.isfinite(bound):
        return None
    act = state.activity(row)
    if geq:
        residual = state.residual_min(row, act, j)
    else:
        # For a <= row the canonical form negates every term, so the
        # canonical residual minimum is minus the residual maximum.
        residual_max = state.residual_max(row, act, j)
        residual = -residual_max if residual_max != _INF else -_INF
    if residual == -_INF:
        return None
    if d_j > 0.0:
        slack = residual + d_j - bound
        if slack <= max(_MIN_STRENGTHEN, TOL * abs(d_j)):
            return None
        new_coeff = bound - residual
        if new_coeff <= TOL:
            # The rest alone satisfies the row: it is redundant, not a
            # loose big-M; leave it for the redundancy pass.
            return None
        return new_coeff, bound
    slack = residual - bound
    if slack <= max(_MIN_STRENGTHEN, TOL * abs(d_j)):
        return None
    new_coeff = d_j + slack
    new_bound = bound + slack
    if new_coeff >= -TOL:
        # The indicator side went vacuous: the row is redundant.
        return None
    return new_coeff, new_bound


def propagated_bounds(
    model: Model, *, max_rounds: int = 5,
) -> tuple[list[float], list[float], int]:
    """Fixpoint-propagated variable bounds of ``model``.

    A read-only convenience for analysis rules: runs the bound
    propagation above on a throwaway working state (never mutating
    ``model``) and returns ``(lower, upper, bounds_tightened)`` in the
    model's variable order.  Rows the propagation removes or proves
    infeasible are irrelevant here — only the bounds are reported.
    """
    state = PresolveState(model)
    total = 0
    for _ in range(max_rounds):
        tightened, _removed = propagate(state)
        total += tightened
        if not tightened or state.infeasible is not None:
            break
    return list(state.lower), list(state.upper), total


__all__ = [
    "Activity",
    "propagate",
    "propagated_bounds",
    "strengthen_coefficients",
    "strengthened_coefficient",
]
