"""Postsolve: lift a reduced-model solution back to the original space.

Presolve shrinks the variable space three ways — fixing columns,
dropping them (merged parallel columns), and reindexing the survivors —
so a solver assignment over the reduced model means nothing to the
caller's decoders.  A :class:`PostsolveMap` is the recorded recipe that
undoes all three: :meth:`PostsolveMap.restore` produces a
:class:`~repro.milp.solution.Solution` whose ``x`` lives in the original
index space and whose objective value is *exactly* the reduced model's
(presolve is objective-exact by construction: fixed contributions are
folded into the reduced objective constant and merged columns share one
coefficient).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np
import numpy.typing as npt

from repro.milp.expr import LinExpr
from repro.milp.solution import Solution


@dataclass(frozen=True)
class ColumnMerge:
    """One parallel-column merge: ``dropped`` absorbed into ``kept``.

    After the merge, the ``kept`` column represents the *sum* of both
    originals; the bounds recorded here are the bounds at merge time,
    which :meth:`PostsolveMap.restore` uses to split the aggregate value
    back into two in-bounds parts.
    """

    kept: int
    dropped: int
    dropped_lower: float
    dropped_upper: float
    #: Bounds of the aggregate *before* this merge widened it.
    rest_lower: float
    rest_upper: float
    integer: bool


@dataclass(frozen=True)
class PostsolveMap:
    """The recipe restoring reduced-model solutions to the original space."""

    #: Variable count of the original model.
    n_original: int
    #: Original index -> fixed value, for columns presolve proved constant.
    fixed: dict[int, float]
    #: Original index -> reduced-model column, for surviving columns.
    column_of: dict[int, int]
    #: Parallel-column merges in application order (undone in reverse).
    merges: list[ColumnMerge] = field(default_factory=list)
    #: The original objective, kept so callers can cross-check exactness.
    original_objective: LinExpr = field(default_factory=LinExpr)

    @property
    def identity(self) -> bool:
        """Whether the variable space was not changed at all."""
        return (
            not self.fixed
            and not self.merges
            and all(j == col for j, col in self.column_of.items())
            and len(self.column_of) == self.n_original
        )

    def restore(self, solution: Solution) -> Solution:
        """``solution`` (over the reduced model) in the original space.

        Status, timing, gap and ``extra`` metadata pass through
        untouched; the objective value is preserved exactly.  Solutions
        without an assignment (infeasible, timeout, error) pass through
        as-is — there is nothing to lift.
        """
        if solution.x is None:
            return solution
        values = np.zeros(self.n_original, dtype=float)
        for j, col in self.column_of.items():
            values[j] = solution.x[col]
        # Fixed values go in BEFORE merges are undone: a merge keeper
        # may itself have been fixed later (e.g. an aggregate of
        # parallel binaries pinned by propagation), and its aggregate
        # value must still be split back over the dropped columns.
        for j, value in self.fixed.items():
            values[j] = value
        # Undo merges newest-first: each split peels one dropped column
        # off the aggregate, leaving the pre-merge aggregate value for
        # the next (earlier) record.
        for merge in reversed(self.merges):
            total = values[merge.kept]
            part = min(merge.dropped_upper, total - merge.rest_lower)
            part = max(part, merge.dropped_lower)
            if merge.integer:
                part = float(round(part))
                # Integer splits must keep both parts integral and in
                # bounds; rounding can push the remainder one off.
                rest = total - part
                if rest < merge.rest_lower - 0.5:
                    part -= 1.0
                elif rest > merge.rest_upper + 0.5:
                    part += 1.0
            values[merge.dropped] = part
            values[merge.kept] = total - part
        restored = Solution(
            status=solution.status,
            objective=solution.objective,
            x=values,
            solve_time=solution.solve_time,
            mip_gap=solution.mip_gap,
            node_count=solution.node_count,
            message=solution.message,
            extra=dict(solution.extra),
        )
        return restored

    def forward(
        self,
        x: npt.NDArray[np.float64],
        fixed_tol: float = 1e-6,
    ) -> npt.NDArray[np.float64] | None:
        """Map an *original*-space assignment into the reduced space.

        The inverse direction of :meth:`restore`, used to carry a warm
        start computed on the original model into the presolved model:
        merges are replayed oldest-first (each aggregates the dropped
        column's value onto its keeper), then the surviving columns are
        gathered through ``column_of``.  Returns ``None`` when ``x``
        disagrees with a presolve-fixed column by more than
        ``fixed_tol`` — such a start cannot be represented in the
        reduced space (and was probably infeasible to begin with).
        """
        if x.shape[0] != self.n_original:
            return None
        values = np.asarray(x, dtype=float).copy()
        for merge in self.merges:
            values[merge.kept] += values[merge.dropped]
        for j, value in self.fixed.items():
            if abs(values[j] - value) > fixed_tol:
                return None
        n_reduced = 1 + max(self.column_of.values(), default=-1)
        reduced = np.zeros(n_reduced, dtype=float)
        for j, col in self.column_of.items():
            reduced[col] = values[j]
        return reduced

    def objective_value(self, x: npt.NDArray[np.float64]) -> float:
        """The *original* objective evaluated at an original-space ``x``
        (cross-check helper; must equal ``solution.objective`` up to
        floating-point noise)."""
        total = self.original_objective.constant
        for j, coeff in self.original_objective.coeffs.items():
            total += coeff * float(x[j])
        return total


def restores_cleanly(mapping: PostsolveMap, solution: Solution) -> bool:
    """Whether ``restore`` reproduces the reduced objective exactly.

    Debug helper used by tests and the benchmark gate: restores and
    recomputes the original objective, tolerating only floating-point
    accumulation noise.
    """
    restored = mapping.restore(solution)
    if restored.x is None:
        return True
    recomputed = mapping.objective_value(restored.x)
    reference = max(1.0, abs(recomputed), abs(solution.objective))
    if math.isnan(solution.objective):
        return False
    return abs(recomputed - solution.objective) <= 1e-6 * reference
