"""LP-free combinatorial lower bounds from candidate-pool structure.

The paper's formulation is dominated by covering structure: "place at
least *k* devices among this candidate pool", "select at least *k*
disjoint replica routes".  Those rows admit a purely combinatorial
objective bound with no LP solve:

* every column contributes at least ``min(c*lb, c*ub)`` (the *trivial*
  part), and
* a covering row ``sum x_j >= k`` over unit-coefficient binaries forces
  at least ``ceil(k)`` of its columns to one, so beyond the trivial part
  the ``needed`` cheapest *positive* objective coefficients in the row
  must be paid (columns with non-positive coefficients sit at one in the
  trivial bound already and cover for free).

Gains from rows with disjoint column support are additive, so a greedy
best-gain-first selection over disjoint rows yields a valid — often
much tighter — bound.  Branch-and-bound uses it for early termination
via the ``objective_lower_bound`` model hint; the report carries it for
diagnostics either way.
"""

from __future__ import annotations

import math

from repro.analysis.presolve.state import PresolveState, scaled_tol

_INF = float("inf")


def _trivial_bound(state: PresolveState) -> float | None:
    """Sum of per-column minimum contributions, or ``None`` if unbounded."""
    total = state.obj_constant
    for j in state.live_columns():
        coeff = state.obj.get(j, 0.0)
        if coeff == 0.0:
            continue
        contribution = min(coeff * state.lower[j], coeff * state.upper[j])
        if math.isinf(contribution):
            return None
        total += contribution
    return total


def _covering_gain(
    state: PresolveState, coeffs: dict[int, float], need: int,
) -> float:
    """Extra objective cost the covering row forces beyond trivial.

    ``need`` columns must be at one; those with non-positive objective
    coefficient are free (trivial already pays them); the rest cost
    their coefficient.  Picking the cheapest completion gives the valid
    (minimum) forced extra cost.
    """
    free = sum(1 for j in coeffs if state.obj.get(j, 0.0) <= 0.0)
    needed = need - free
    if needed <= 0:
        return 0.0
    positives = sorted(
        state.obj.get(j, 0.0)
        for j in coeffs
        if state.obj.get(j, 0.0) > 0.0
    )
    if needed > len(positives):
        # The row cannot be satisfied by live binaries alone; bound
        # derivation stays conservative and takes what is provable.
        needed = len(positives)
    return sum(positives[:needed])


def combinatorial_lower_bound(state: PresolveState) -> float | None:
    """A valid lower bound on the (minimized) objective, or ``None``.

    ``None`` means no finite bound is provable (some column is unbounded
    in its favorable direction).  The returned value is in the model's
    objective space — directly comparable to ``Solution.objective``.
    """
    trivial = _trivial_bound(state)
    if trivial is None:
        return None
    candidates: list[tuple[float, set[int]]] = []
    for row in state.rows:
        if not row.alive or row.lower == -_INF or row.lower <= 0.0:
            continue
        if not all(
            abs(c - 1.0) <= scaled_tol(1.0) and state.is_binary(j)
            for j, c in row.coeffs.items()
        ):
            continue
        need = math.ceil(row.lower - scaled_tol(row.lower))
        if need <= 0:
            continue
        gain = _covering_gain(state, row.coeffs, need)
        if gain > 0.0:
            candidates.append((gain, set(row.coeffs)))
    # Greedy best-gain-first over disjoint supports: disjointness keeps
    # the gains independently forced, so their sum stays valid.
    candidates.sort(key=lambda item: -item[0])
    used: set[int] = set()
    total_gain = 0.0
    for gain, support in candidates:
        if used & support:
            continue
        used |= support
        total_gain += gain
    return trivial + total_gain


__all__ = ["combinatorial_lower_bound"]
