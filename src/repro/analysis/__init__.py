"""Pre-solve static analysis: spec and model linting with diagnostics.

The subsystem mirrors the paper's thesis — prune the infeasible space
*before* the solver sees it — at the tooling level: rule-based analyzers
run over problem inputs (:func:`analyze_problem`) and built MILPs
(:func:`analyze_model`), emit structured :class:`Diagnostic` findings,
and gate :meth:`repro.core.explorer.ExplorerBase.build` so structurally
doomed problems fail in milliseconds with actionable messages instead of
after a full encode + solve cycle.  ``repro lint`` exposes the same
passes on the command line; ``docs/diagnostics.md`` catalogs every rule.
"""

from repro.analysis.analyzer import analyze_model, analyze_problem
from repro.analysis.diagnostics import (
    AnalysisError,
    AnalysisReport,
    Diagnostic,
    Severity,
)
from repro.analysis.presolve import (
    PRESOLVE_MODES,
    PresolveReport,
    PresolveResult,
    presolve,
)
from repro.analysis.rules import (
    ModelRule,
    Rule,
    SpecContext,
    SpecRule,
    model_rule,
    model_rules,
    rule_catalog,
    spec_rule,
    spec_rules,
)

__all__ = [
    "PRESOLVE_MODES",
    "AnalysisError",
    "AnalysisReport",
    "Diagnostic",
    "ModelRule",
    "PresolveReport",
    "PresolveResult",
    "Rule",
    "Severity",
    "SpecContext",
    "SpecRule",
    "analyze_model",
    "analyze_problem",
    "model_rule",
    "model_rules",
    "presolve",
    "rule_catalog",
    "spec_rule",
    "spec_rules",
]
