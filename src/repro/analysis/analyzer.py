"""Analyzer entry points: run every registered rule and collect a report.

:func:`analyze_problem` checks the problem inputs (template,
requirements, library) before encoding; :func:`analyze_model` checks a
built MILP before solving.  Both are pure passes in milliseconds — the
point of the subsystem is that a structurally doomed problem is rejected
here instead of burning a full encode + solve cycle.
"""

from __future__ import annotations

import time
from collections.abc import Sequence

from repro.analysis.diagnostics import AnalysisReport
from repro.analysis.rules import (
    ModelRule,
    SpecContext,
    SpecRule,
    model_rules,
    spec_rules,
)
from repro.library.catalog import Library
from repro.milp.model import Model
from repro.network.requirements import ReachabilityRequirement, RequirementSet
from repro.network.template import Template

# Importing the rule modules registers their rules.
from repro.analysis import model_rules as _model_rules  # noqa: F401
from repro.analysis import spec_rules as _spec_rules  # noqa: F401


def analyze_problem(
    template: Template,
    requirements: RequirementSet | ReachabilityRequirement | None = None,
    library: Library | None = None,
    *,
    rules: Sequence[SpecRule] | None = None,
) -> AnalysisReport:
    """Run the spec-level rules over the problem inputs.

    ``rules`` restricts the pass to an explicit rule list (tests,
    targeted linting); by default every registered rule runs.
    """
    ctx = SpecContext.build(template, requirements, library)
    report = AnalysisReport()
    start = time.perf_counter()
    for rule in spec_rules() if rules is None else rules:
        report.extend(rule.check(ctx))
    report.seconds = time.perf_counter() - start
    return report


def analyze_model(
    model: Model,
    *,
    rules: Sequence[ModelRule] | None = None,
) -> AnalysisReport:
    """Run the model-level rules over a built MILP."""
    report = AnalysisReport()
    start = time.perf_counter()
    for rule in model_rules() if rules is None else rules:
        report.extend(rule.check(model))
    report.seconds = time.perf_counter() - start
    return report
