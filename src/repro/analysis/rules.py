"""The rule framework of the static analyzer.

A rule is one class: subclass :class:`SpecRule` (checks the problem
inputs — template, requirements, library — before encoding) or
:class:`ModelRule` (checks a built :class:`~repro.milp.model.Model`
before solving), fill in the class metadata (``rule_id``, severity,
trigger example and fix hint — the same strings ``docs/diagnostics.md``
catalogs), implement ``check`` as a generator of
:class:`~repro.analysis.diagnostics.Diagnostic`, and register it with the
``@spec_rule`` / ``@model_rule`` decorator.  The analyzer entry points in
:mod:`repro.analysis.analyzer` run every registered rule.
"""

from __future__ import annotations

import abc
from collections.abc import Iterator
from dataclasses import dataclass
from typing import ClassVar

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.library.catalog import Library
from repro.milp.model import Model
from repro.network.requirements import (
    LifetimeRequirement,
    LinkQualityRequirement,
    ReachabilityRequirement,
    RequirementSet,
    RouteRequirement,
)
from repro.network.template import Template


@dataclass
class SpecContext:
    """Everything a spec-level rule may inspect."""

    template: Template
    library: Library | None = None
    routes: tuple[RouteRequirement, ...] = ()
    link_quality: LinkQualityRequirement | None = None
    lifetime: LifetimeRequirement | None = None
    reachability: ReachabilityRequirement | None = None

    @classmethod
    def build(
        cls,
        template: Template,
        requirements: RequirementSet | ReachabilityRequirement | None = None,
        library: Library | None = None,
    ) -> SpecContext:
        """Normalize the explorer inputs into a context.

        Accepts a full :class:`RequirementSet` (data-collection problems),
        a bare :class:`ReachabilityRequirement` (anchor placement), or
        ``None`` (template-only checks).
        """
        if isinstance(requirements, ReachabilityRequirement):
            return cls(template, library, reachability=requirements)
        if requirements is None:
            return cls(template, library)
        return cls(
            template,
            library,
            routes=tuple(requirements.routes),
            link_quality=requirements.link_quality,
            lifetime=requirements.lifetime,
            reachability=requirements.reachability,
        )


class Rule(abc.ABC):
    """Shared metadata of every analysis rule (see ``docs/diagnostics.md``)."""

    #: Stable identifier, ``spec.*`` or ``model.*`` namespaced.
    rule_id: ClassVar[str]
    #: Default severity of this rule's findings.
    default_severity: ClassVar[Severity]
    #: One-line description of what the rule checks.
    title: ClassVar[str]
    #: Example of a spec/model that triggers the rule (for the docs).
    example: ClassVar[str]
    #: Default fix hint attached to findings.
    hint: ClassVar[str]

    def diagnostic(
        self,
        message: str,
        *,
        location: str = "",
        severity: Severity | None = None,
        hint: str | None = None,
        **data: object,
    ) -> Diagnostic:
        """A finding of this rule, defaulting severity and hint."""
        return Diagnostic(
            rule_id=self.rule_id,
            severity=self.default_severity if severity is None else severity,
            message=message,
            location=location,
            hint=self.hint if hint is None else hint,
            data=dict(data),
        )


class SpecRule(Rule):
    """A rule over the problem inputs (template/requirements/library)."""

    @abc.abstractmethod
    def check(self, ctx: SpecContext) -> Iterator[Diagnostic]:
        """Yield findings for the given problem inputs."""


class ModelRule(Rule):
    """A rule over a built MILP model."""

    @abc.abstractmethod
    def check(self, model: Model) -> Iterator[Diagnostic]:
        """Yield findings for the given model."""


_SPEC_RULES: dict[str, SpecRule] = {}
_MODEL_RULES: dict[str, ModelRule] = {}


def spec_rule(cls: type[SpecRule]) -> type[SpecRule]:
    """Class decorator registering a :class:`SpecRule`."""
    rule = cls()
    if rule.rule_id in _SPEC_RULES:
        raise ValueError(f"duplicate rule id {rule.rule_id!r}")
    _SPEC_RULES[rule.rule_id] = rule
    return cls


def model_rule(cls: type[ModelRule]) -> type[ModelRule]:
    """Class decorator registering a :class:`ModelRule`."""
    rule = cls()
    if rule.rule_id in _MODEL_RULES:
        raise ValueError(f"duplicate rule id {rule.rule_id!r}")
    _MODEL_RULES[rule.rule_id] = rule
    return cls


def spec_rules() -> tuple[SpecRule, ...]:
    """All registered spec-level rules, in registration order."""
    return tuple(_SPEC_RULES.values())


def model_rules() -> tuple[ModelRule, ...]:
    """All registered model-level rules, in registration order."""
    return tuple(_MODEL_RULES.values())


def rule_catalog() -> tuple[Rule, ...]:
    """Every registered rule (spec first); drives the docs catalog."""
    return tuple(_SPEC_RULES.values()) + tuple(_MODEL_RULES.values())
