"""Structured diagnostics emitted by the pre-solve static analyzer.

A :class:`Diagnostic` is one finding of one rule: a stable rule id
(``spec.route-connectivity``, ``model.loose-big-m``, ...), a severity, a
human-readable message, the location (object path) it anchors to, and a
fix hint.  An :class:`AnalysisReport` aggregates the findings of an
analyzer pass; :class:`AnalysisError` carries a report out of
:meth:`repro.core.explorer.ExplorerBase.build` when blocking errors are
found, and subclasses :class:`repro.encoding.base.EncodingError` so
existing "this problem cannot be encoded" handlers keep working.

The full rule catalog (trigger examples, fix hints) is documented in
``docs/diagnostics.md``.
"""

from __future__ import annotations

import enum
from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.encoding.base import EncodingError


class Severity(enum.Enum):
    """How bad a finding is.

    ``ERROR`` findings make :meth:`ExplorerBase.build` refuse the problem
    (the solve would be wasted); ``WARNING`` findings are recorded on the
    result but do not block; ``INFO`` findings are informational only.
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def blocking(self) -> bool:
        """Whether findings at this severity abort the build."""
        return self is Severity.ERROR


@dataclass(frozen=True, eq=False)
class Diagnostic:
    """One finding of one analysis rule."""

    rule_id: str
    severity: Severity
    message: str
    #: Object path the finding anchors to (``route[2]``, ``row lq[3,4]:rss``).
    location: str = ""
    #: Actionable fix suggestion.
    hint: str = ""
    #: Machine-readable extras (route index, tightest big-M value, ...).
    data: dict[str, object] = field(default_factory=dict)

    def format(self) -> str:
        """One-line rendering: ``severity[rule] location: message``."""
        where = f" {self.location}" if self.location else ""
        line = f"{self.severity.value}[{self.rule_id}]{where}: {self.message}"
        if self.hint:
            line += f" (hint: {self.hint})"
        return line

    def to_dict(self) -> dict[str, object]:
        """JSON-ready representation."""
        payload: dict[str, object] = {
            "rule": self.rule_id,
            "severity": self.severity.value,
            "message": self.message,
        }
        if self.location:
            payload["location"] = self.location
        if self.hint:
            payload["hint"] = self.hint
        if self.data:
            payload["data"] = dict(self.data)
        return payload


@dataclass
class AnalysisReport:
    """The findings of an analyzer pass (or of several merged passes)."""

    diagnostics: list[Diagnostic] = field(default_factory=list)
    #: Wall-clock seconds spent producing the findings.
    seconds: float = 0.0

    def add(self, diagnostic: Diagnostic) -> None:
        """Append one finding."""
        self.diagnostics.append(diagnostic)

    def extend(self, diagnostics: Iterable[Diagnostic]) -> None:
        """Append many findings."""
        self.diagnostics.extend(diagnostics)

    def merge(self, other: AnalysisReport) -> None:
        """Fold another report into this one (findings and timing)."""
        self.diagnostics.extend(other.diagnostics)
        self.seconds += other.seconds

    @property
    def errors(self) -> list[Diagnostic]:
        """Blocking findings."""
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        """Non-blocking findings worth surfacing."""
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    @property
    def infos(self) -> list[Diagnostic]:
        """Informational findings."""
        return [d for d in self.diagnostics if d.severity is Severity.INFO]

    @property
    def ok(self) -> bool:
        """Whether the pass found no blocking errors."""
        return not self.errors

    @property
    def rule_ids(self) -> set[str]:
        """The distinct rule ids that fired."""
        return {d.rule_id for d in self.diagnostics}

    def summary(self) -> str:
        """One line: counts by severity plus analysis time."""
        return (
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s), "
            f"{len(self.infos)} info(s) from {len(self.rule_ids)} rule(s) "
            f"in {self.seconds * 1000.0:.1f} ms"
        )

    def render(self) -> str:
        """Multi-line rendering of every finding plus the summary."""
        lines = [d.format() for d in self.diagnostics]
        lines.append(self.summary())
        return "\n".join(lines)

    def to_dict(self) -> dict[str, object]:
        """JSON-ready representation (what ``repro lint --json`` emits)."""
        return {
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "infos": len(self.infos),
            "rules": sorted(self.rule_ids),
            "seconds": round(self.seconds, 6),
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }

    def raise_for_errors(self, context: str = "") -> None:
        """Raise :class:`AnalysisError` when blocking findings exist."""
        if not self.ok:
            raise AnalysisError(self, context=context)


class AnalysisError(EncodingError):
    """A blocking analyzer finding: the problem would be wasted solver time.

    Subclasses :class:`~repro.encoding.base.EncodingError` because every
    blocking spec finding is a statement that the requirements cannot be
    (usefully) encoded on this template — callers that already handle
    encoding failures handle this too.  The offending report rides along
    as :attr:`report`.
    """

    def __init__(self, report: AnalysisReport, context: str = "") -> None:
        self.report = report
        self.context = context
        errors = report.errors
        head = f"{context}: " if context else ""
        detail = "; ".join(d.format() for d in errors[:5])
        if len(errors) > 5:
            detail += f"; ... ({len(errors) - 5} more)"
        super().__init__(
            f"{head}static analysis found {len(errors)} blocking "
            f"diagnostic(s): {detail}"
        )
