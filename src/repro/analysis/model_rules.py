"""Model-level analysis rules: a built MILP before the solver sees it.

All rules here are interval-arithmetic passes over the variable bounds
and constraint rows — O(nonzeros) each, no LP relaxation required.  They
catch the model-construction bugs that otherwise surface as an opaque
``infeasible`` (or as silent slack): contradictory bounds, rows no
assignment can satisfy, rows implied by the bounds alone, variables the
model never constrains, big-M constants larger than the tightest value
the bounds imply, and duplicated left-hand sides.
"""

from __future__ import annotations

import math
from collections.abc import Iterator

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.rules import ModelRule, model_rule
from repro.milp.expr import Constraint, Var
from repro.milp.model import Model

_INF = float("inf")


def _tol(reference: float) -> float:
    """Feasibility tolerance scaled to the magnitude of ``reference``."""
    if math.isinf(reference):
        return 1e-9
    return 1e-9 * max(1.0, abs(reference))


def _row_location(index: int, constraint: Constraint) -> str:
    if constraint.name:
        return f"row {constraint.name!r}"
    return f"row #{index}"


def _valid_indices(coeffs: dict[int, float], n: int) -> bool:
    return all(0 <= idx < n for idx in coeffs)


def _activity(
    coeffs: dict[int, float], variables: list[Var]
) -> tuple[float, float]:
    """Interval of ``sum(coeff * var)`` over the variable bounds."""
    lo = hi = 0.0
    for idx, coeff in coeffs.items():
        if coeff == 0.0:
            continue
        var = variables[idx]
        if coeff > 0.0:
            lo += coeff * var.lower
            hi += coeff * var.upper
        else:
            lo += coeff * var.upper
            hi += coeff * var.lower
    return lo, hi


@model_rule
class VariableBoundsRule(ModelRule):
    """Variable bounds must be orderable and finite where integrality needs."""

    rule_id = "model.variable-bounds"
    default_severity = Severity.ERROR
    title = "variable bounds are contradictory or missing"
    example = (
        "a variable with ``lower=1, upper=0`` (empty domain) or a general "
        "integer left unbounded above"
    )
    hint = "fix the bounds where the variable is created"

    def check(self, model: Model) -> Iterator[Diagnostic]:
        for var in model.variables:
            if math.isnan(var.lower) or math.isnan(var.upper):
                yield self.diagnostic(
                    f"bound is NaN: [{var.lower}, {var.upper}]",
                    location=f"var {var.name!r}", variable=var.name,
                )
            elif var.lower > var.upper:
                yield self.diagnostic(
                    f"lower bound {var.lower:g} exceeds upper bound "
                    f"{var.upper:g}: the domain is empty",
                    location=f"var {var.name!r}", variable=var.name,
                )
            elif var.is_integer and not var.is_binary and (
                math.isinf(var.lower) or math.isinf(var.upper)
            ):
                yield self.diagnostic(
                    f"general integer variable is unbounded "
                    f"([{var.lower:g}, {var.upper:g}]); branch-and-bound "
                    f"cannot enumerate an infinite lattice efficiently",
                    location=f"var {var.name!r}",
                    severity=Severity.INFO,
                    hint="give integer variables finite bounds",
                    variable=var.name,
                )


@model_rule
class ForeignVariableRule(ModelRule):
    """Rows and objective may only reference registered variables."""

    rule_id = "model.foreign-variable"
    default_severity = Severity.ERROR
    title = "a row references a variable the model does not own"
    example = (
        "building a constraint from variables of one ``Model`` and adding "
        "it to another — the index resolves to a different column there"
    )
    hint = "create all variables on the model the constraint is added to"

    def check(self, model: Model) -> Iterator[Diagnostic]:
        n = len(model.variables)
        for i, constraint in enumerate(model.constraints):
            bad = sorted(
                idx for idx in constraint.expr.coeffs if not 0 <= idx < n
            )
            if bad:
                yield self.diagnostic(
                    f"references variable index(es) {bad} but the model "
                    f"has {n} variable(s)",
                    location=_row_location(i, constraint),
                    indices=bad,
                )
        bad = sorted(idx for idx in model.objective.coeffs if not 0 <= idx < n)
        if bad:
            yield self.diagnostic(
                f"objective references variable index(es) {bad} but the "
                f"model has {n} variable(s)",
                location="objective",
                indices=bad,
            )


@model_rule
class TrivialInfeasibilityRule(ModelRule):
    """No row may be unsatisfiable for every assignment within bounds."""

    rule_id = "model.trivial-infeasibility"
    default_severity = Severity.WARNING
    title = "a row cannot be satisfied by any assignment within bounds"
    example = (
        "``x + y >= 3`` over two binaries, or a coverage row demanding "
        "more anchors than it has candidate variables"
    )
    hint = (
        "the whole model is infeasible because of this row alone; fix the "
        "requirement or the bounds that make it impossible"
    )

    def check(self, model: Model) -> Iterator[Diagnostic]:
        n = len(model.variables)
        for i, constraint in enumerate(model.constraints):
            coeffs, lo, hi = constraint.normalized()
            if not _valid_indices(coeffs, n):
                continue  # model.foreign-variable already fired
            where = _row_location(i, constraint)
            if lo > hi + _tol(hi):
                yield self.diagnostic(
                    f"row bounds are crossed: lower {lo:g} > upper {hi:g}",
                    location=where, row=i,
                )
                continue
            act_lo, act_hi = _activity(coeffs, model.variables)
            if math.isnan(act_lo) or math.isnan(act_hi):
                continue
            if act_lo > hi + _tol(hi):
                yield self.diagnostic(
                    f"smallest attainable activity {act_lo:g} already "
                    f"exceeds the upper bound {hi:g}",
                    location=where, row=i, activity=(act_lo, act_hi),
                )
            elif act_hi < lo - _tol(lo):
                yield self.diagnostic(
                    f"largest attainable activity {act_hi:g} cannot reach "
                    f"the lower bound {lo:g}",
                    location=where, row=i, activity=(act_lo, act_hi),
                )


@model_rule
class VacuousConstraintRule(ModelRule):
    """Rows implied by the variable bounds alone are dead weight."""

    rule_id = "model.vacuous-constraint"
    default_severity = Severity.INFO
    title = "a row is implied by the variable bounds alone"
    example = (
        "``x + y >= 0`` over two binaries — every assignment within "
        "bounds already satisfies it"
    )
    hint = "drop the row; it only inflates the matrix"

    def check(self, model: Model) -> Iterator[Diagnostic]:
        n = len(model.variables)
        for i, constraint in enumerate(model.constraints):
            coeffs, lo, hi = constraint.normalized()
            if not coeffs or not _valid_indices(coeffs, n):
                continue
            act_lo, act_hi = _activity(coeffs, model.variables)
            if math.isnan(act_lo) or math.isnan(act_hi):
                continue
            lower_ok = lo == -_INF or act_lo >= lo - _tol(lo)
            upper_ok = hi == _INF or act_hi <= hi + _tol(hi)
            if lower_ok and upper_ok:
                yield self.diagnostic(
                    f"activity range [{act_lo:g}, {act_hi:g}] always lies "
                    f"within the row bounds [{lo:g}, {hi:g}]",
                    location=_row_location(i, constraint), row=i,
                )


@model_rule
class UnusedVariableRule(ModelRule):
    """Every variable should appear in a row or the objective."""

    rule_id = "model.unused-variable"
    default_severity = Severity.WARNING
    title = "variables appear in no row and no objective term"
    example = (
        "a binary created by an encoder but never wired into any "
        "constraint — the solver branches on pure noise"
    )
    hint = "remove the variables or wire them into the model"

    def check(self, model: Model) -> Iterator[Diagnostic]:
        used: set[int] = {
            idx for idx, coeff in model.objective.coeffs.items()
            if coeff != 0.0
        }
        for constraint in model.constraints:
            for idx, coeff in constraint.expr.coeffs.items():
                if coeff != 0.0:
                    used.add(idx)
        unused = [var.name for var in model.variables if var.index not in used]
        if unused:
            shown = ", ".join(unused[:8])
            if len(unused) > 8:
                shown += f", ... ({len(unused) - 8} more)"
            yield self.diagnostic(
                f"{len(unused)} variable(s) unused: {shown}",
                location=f"model {model.name!r}",
                variables=unused,
            )


@model_rule
class LooseBigMRule(ModelRule):
    """Indicator big-M constants should be as tight as the bounds allow.

    The activity analysis runs over *fixpoint-propagated* bounds
    (:func:`repro.analysis.presolve.propagated_bounds`), not the raw
    declared bounds.  This retires a whole class of false positives: a
    row like ``c - 50*b >= -44`` looks like a loose M=50 against
    ``c in [0, 10]``, but when another row forces ``c >= 6`` the
    indicator side is *vacuous* — the row is implied for both values of
    ``b``, the correct fix is deleting it (``model.vacuous-constraint``
    territory), and no M-shrinking advice applies.  With propagated
    bounds the tightest implied constant collapses to ~0 there and the
    rule stays silent.
    """

    rule_id = "model.loose-big-m"
    default_severity = Severity.WARNING
    title = "an indicator's big-M is larger than the bounds require"
    example = (
        "``c >= 5 - 50*(1 - b)`` with ``c in [0, 10]`` — M=50 where M=5 "
        "suffices, which weakens the LP relaxation"
    )
    hint = "shrink the constant to the reported tightest implied value"

    #: Report only when the slack is material (absolute and relative);
    #: micro-coefficient indicator rows (piecewise tails) are numerical
    #: noise, not modelling bugs.
    _ABS_SLACK = 1e-4
    _REL_SLACK = 0.01

    def check(self, model: Model) -> Iterator[Diagnostic]:
        # Deferred import: the presolve package imports the diagnostics
        # types from this package's siblings.
        from repro.analysis.presolve import propagated_bounds

        n = len(model.variables)
        if n:
            prop_lower, prop_upper, _ = propagated_bounds(model)
        else:
            prop_lower, prop_upper = [], []
        for i, constraint in enumerate(model.constraints):
            coeffs, lo, hi = constraint.normalized()
            if not _valid_indices(coeffs, n):
                continue
            # Normalize one-sided rows to `sum(d * x) >= bound` form.
            if lo != -_INF and hi == _INF:
                d, bound = coeffs, lo
            elif lo == -_INF and hi != _INF:
                d = {idx: -c for idx, c in coeffs.items()}
                bound = -hi
            else:
                continue
            # Big-M analysis targets the classic indicator shape: exactly
            # one binary relaxing a bound over a continuous expression.
            # Rows with several binaries (device-selection hulls) or none
            # couple through other constraints (assignment equalities),
            # which interval analysis cannot see, so they are skipped to
            # avoid false positives.
            binaries = []
            has_continuous = False
            for idx, coeff in d.items():
                if coeff == 0.0:
                    continue
                var = model.variables[idx]
                if var.is_binary:
                    binaries.append((var, coeff))
                else:
                    has_continuous = True
            if len(binaries) != 1 or not has_continuous:
                continue
            act_lo, _ = _activity(d, model.variables)
            prop_act_lo = 0.0
            for idx, coeff in d.items():
                if coeff == 0.0:
                    continue
                prop_act_lo += coeff * (
                    prop_lower[idx] if coeff > 0.0 else prop_upper[idx]
                )
            if not math.isfinite(act_lo) or not math.isfinite(bound):
                continue
            for var, coeff in binaries:
                # At the binary's relaxing value the row must hold for
                # every assignment; slack beyond that proves the constant
                # is larger than needed.  The *declared* bounds decide
                # whether the constant looks like a modelling bug; the
                # propagated bounds can only acquit — when they show the
                # indicator side is vacuous (the row holds for either
                # binary value given what the other rows force), the
                # right fix is deleting the row, not shrinking M, so the
                # finding is suppressed as a false positive.
                slack = act_lo + abs(coeff) - bound
                tightest = abs(coeff) - slack
                prop_tightest = abs(coeff) - (
                    prop_act_lo + abs(coeff) - bound
                )
                if math.isfinite(prop_act_lo) and (
                    prop_tightest <= self._ABS_SLACK
                ):
                    continue
                if (slack > max(self._ABS_SLACK, self._REL_SLACK * abs(coeff))
                        and tightest > self._ABS_SLACK):
                    yield self.diagnostic(
                        f"coefficient {abs(coeff):g} on binary "
                        f"{var.name!r} exceeds the tightest implied "
                        f"big-M {tightest:g}",
                        location=_row_location(i, constraint),
                        row=i,
                        variable=var.name,
                        coefficient=abs(coeff),
                        tightest=tightest,
                    )


@model_rule
class DuplicateRowRule(ModelRule):
    """Rows sharing one left-hand side should be merged."""

    rule_id = "model.duplicate-row"
    default_severity = Severity.INFO
    title = "several rows share the same left-hand side"
    example = (
        "adding ``x + y <= 1`` and ``x + y >= 1`` as separate rows instead "
        "of one equality (or one range row)"
    )
    hint = "merge the rows into a single range constraint"

    def check(self, model: Model) -> Iterator[Diagnostic]:
        groups: dict[tuple[tuple[int, float], ...], list[int]] = {}
        rows = model.constraints
        for i, constraint in enumerate(rows):
            coeffs = constraint.normalized()[0]
            signature = tuple(
                sorted((idx, c) for idx, c in coeffs.items() if c != 0.0)
            )
            if signature:
                groups.setdefault(signature, []).append(i)
        for indices in groups.values():
            if len(indices) < 2:
                continue
            names = [
                rows[i].name or f"#{i}" for i in indices[:4]
            ]
            shown = ", ".join(names)
            if len(indices) > 4:
                shown += f", ... ({len(indices) - 4} more)"
            yield self.diagnostic(
                f"{len(indices)} rows share one left-hand side: {shown}",
                location=_row_location(indices[0], rows[indices[0]]),
                rows=list(indices),
            )
