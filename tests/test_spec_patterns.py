"""Tests for compiling pattern statements against a template."""

import pytest

from repro.spec import SpecError, compile_spec
from repro.spec.patterns import resolve_group, resolve_node


class TestResolution:
    def test_role_with_index(self, grid_instance):
        template = grid_instance.template
        assert resolve_node("sensor[0]", template) == grid_instance.sensor_ids[0]
        assert resolve_node("sensor[2]", template) == grid_instance.sensor_ids[2]

    def test_raw_node_index(self, grid_instance):
        assert resolve_node("node[5]", grid_instance.template) == 5

    def test_unique_role_without_index(self, grid_instance):
        assert resolve_node("sink", grid_instance.template) == (
            grid_instance.sink_id
        )

    def test_ambiguous_role_rejected(self, grid_instance):
        with pytest.raises(SpecError, match="ambiguous"):
            resolve_node("sensor", grid_instance.template)

    def test_out_of_range_rejected(self, grid_instance):
        with pytest.raises(SpecError, match="out of range"):
            resolve_node("sensor[99]", grid_instance.template)
        with pytest.raises(SpecError):
            resolve_node("node[999]", grid_instance.template)

    def test_unknown_role_rejected(self, grid_instance):
        with pytest.raises(SpecError):
            resolve_node("gateway[0]", grid_instance.template)

    def test_group_plural(self, grid_instance):
        assert resolve_group("sensors", grid_instance.template) == (
            grid_instance.sensor_ids
        )

    def test_group_unknown(self, grid_instance):
        with pytest.raises(SpecError):
            resolve_group("gateways", grid_instance.template)


class TestCompile:
    def test_disjoint_group_merges_into_one_requirement(self, grid_instance):
        spec = """
        a = has_path(sensor[0], sink)
        b = has_path(sensor[0], sink)
        disjoint_links(a, b)
        """
        compiled = compile_spec(spec, grid_instance.template)
        (req,) = compiled.requirements.routes
        assert req.replicas == 2 and req.disjoint

    def test_loner_paths_become_single_routes(self, grid_instance):
        spec = """
        a = has_path(sensor[0], sink)
        b = has_path(sensor[1], sink)
        """
        compiled = compile_spec(spec, grid_instance.template)
        assert len(compiled.requirements.routes) == 2
        assert all(not r.disjoint for r in compiled.requirements.routes)

    def test_hop_bound_attached(self, grid_instance):
        spec = """
        a = has_path(sensor[0], sink)
        max_hops(a, 4)
        """
        compiled = compile_spec(spec, grid_instance.template)
        assert compiled.requirements.routes[0].max_hops == 4

    def test_mixed_pairs_in_group_rejected(self, grid_instance):
        spec = """
        a = has_path(sensor[0], sink)
        b = has_path(sensor[1], sink)
        disjoint_links(a, b)
        """
        with pytest.raises(SpecError, match="mixes"):
            compile_spec(spec, grid_instance.template)

    def test_has_paths_fans_out(self, grid_instance):
        compiled = compile_spec(
            "has_paths(sensors, sink, replicas=2)", grid_instance.template
        )
        assert len(compiled.requirements.routes) == len(
            grid_instance.sensor_ids
        )
        assert all(r.replicas == 2 for r in compiled.requirements.routes)

    def test_quality_and_lifetime(self, grid_instance):
        spec = """
        min_signal_to_noise(20)
        min_rss(-80)
        min_network_lifetime(5)
        """
        compiled = compile_spec(spec, grid_instance.template)
        reqs = compiled.requirements
        assert reqs.link_quality.min_snr_db == 20.0
        assert reqs.link_quality.min_rss_dbm == -80.0
        assert reqs.lifetime.years == 5.0

    def test_protocol_and_battery(self, grid_instance):
        spec = "tdma(slots=8, slot_ms=2, report_s=10)\nbattery(mah=1000)"
        compiled = compile_spec(spec, grid_instance.template)
        assert compiled.requirements.tdma.slots == 8
        assert compiled.requirements.power.battery_mah == 1000.0

    def test_objective_default_is_cost(self, grid_instance):
        compiled = compile_spec("min_rss(-80)", grid_instance.template)
        assert compiled.objective.weights == {"cost": 1.0}

    def test_duplicate_objective_rejected(self, grid_instance):
        spec = "objective(cost)\nobjective(energy)"
        with pytest.raises(SpecError, match="multiple objective"):
            compile_spec(spec, grid_instance.template)

    def test_duplicate_path_name_rejected(self, grid_instance):
        spec = """
        a = has_path(sensor[0], sink)
        a = has_path(sensor[1], sink)
        """
        with pytest.raises(SpecError, match="duplicate path name"):
            compile_spec(spec, grid_instance.template)

    def test_reachability_needs_test_points(self, grid_instance):
        with pytest.raises(SpecError, match="test points"):
            compile_spec(
                "min_reachable_devices(3, -80)", grid_instance.template
            )

    def test_reachability_with_test_points(self, loc_instance):
        compiled = compile_spec(
            "min_reachable_devices(3, -80)",
            loc_instance.template,
            test_points=loc_instance.test_points,
        )
        reach = compiled.requirements.reachability
        assert reach.min_anchors == 3
        assert reach.min_rss_dbm == -80.0
        assert len(reach.test_points) == len(loc_instance.test_points)

    def test_path_names_map_to_requirements(self, grid_instance):
        spec = """
        a = has_path(sensor[0], sink)
        b = has_path(sensor[0], sink)
        disjoint_links(a, b)
        c = has_path(sensor[1], sink)
        """
        compiled = compile_spec(spec, grid_instance.template)
        assert compiled.path_names["a"] == compiled.path_names["b"]
        assert compiled.path_names["c"] != compiled.path_names["a"]
