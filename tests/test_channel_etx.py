"""Tests for the ETX(SNR) piecewise-linear encoding."""

import numpy as np
import pytest

from repro.channel import build_etx_curve, expected_transmissions


@pytest.fixture(scope="module")
def curve():
    return build_etx_curve(packet_bytes=50.0)


class TestBuild:
    def test_floor_matches_cap(self, curve):
        assert curve.etx_at(curve.snr_floor) == pytest.approx(4.0, rel=1e-2)

    def test_invalid_cap_rejected(self):
        with pytest.raises(ValueError):
            build_etx_curve(50.0, etx_floor_cap=1.0)
        with pytest.raises(ValueError):
            build_etx_curve(50.0, etx_floor_cap=100.0)

    def test_ceiling_must_exceed_floor(self):
        with pytest.raises(ValueError):
            build_etx_curve(50.0, snr_ceiling=-20.0)

    def test_segments_bounded(self, curve):
        assert 1 <= len(curve.pwl.segments) <= 6


class TestOverApproximation:
    def test_pwl_above_true_curve_in_range(self, curve):
        for snr in np.linspace(curve.snr_floor, curve.snr_ceiling, 200):
            true = expected_transmissions(snr, 50.0)
            assert curve.pwl_at(snr) >= true - 1e-9

    def test_pwl_tight_at_high_snr(self, curve):
        # At the reliable end the encoding must not over-charge energy.
        assert curve.pwl_at(curve.snr_ceiling) == pytest.approx(1.0, abs=0.02)

    def test_pwl_floor_is_one(self, curve):
        # pwl_at never reports below the physical minimum of 1 TX.
        assert curve.pwl_at(100.0) >= 1.0

    def test_overestimate_is_moderate(self, curve):
        # The chorded encoding should stay within ~35% of truth over the
        # usable range (it is exact at hull points).
        for snr in np.linspace(curve.snr_floor, curve.snr_ceiling, 100):
            true = curve.etx_at(snr)
            assert curve.pwl_at(snr) <= true * 1.35 + 0.05


class TestParameterisation:
    def test_larger_packets_shift_floor_right(self):
        small = build_etx_curve(packet_bytes=20.0)
        large = build_etx_curve(packet_bytes=120.0)
        assert large.snr_floor > small.snr_floor

    def test_modulation_respected(self):
        qpsk = build_etx_curve(50.0, modulation="qpsk")
        ook = build_etx_curve(50.0, modulation="ook")
        assert ook.snr_floor > qpsk.snr_floor
