"""Tests for exhaustive simple-path enumeration."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import DiGraph, all_simple_paths, count_simple_paths


def grid3() -> DiGraph:
    """A 3x3 directed grid (right/up moves only)."""
    g = DiGraph()
    for x in range(3):
        for y in range(3):
            if x < 2:
                g.add_edge((x, y), (x + 1, y), 1.0)
            if y < 2:
                g.add_edge((x, y), (x, y + 1), 1.0)
    return g


class TestAllSimplePaths:
    def test_count_on_grid(self):
        # Monotone lattice paths in a 2x2 step grid: C(4, 2) = 6.
        paths = list(all_simple_paths(grid3(), (0, 0), (2, 2)))
        assert len(paths) == 6

    def test_paths_are_simple_and_valid(self):
        g = grid3()
        for path in all_simple_paths(g, (0, 0), (2, 2)):
            assert len(set(path)) == len(path)
            for u, v in zip(path, path[1:]):
                assert g.has_edge(u, v)

    def test_max_hops_filters(self):
        paths = list(all_simple_paths(grid3(), (0, 0), (2, 2), max_hops=3))
        assert paths == []
        paths = list(all_simple_paths(grid3(), (0, 0), (2, 2), max_hops=4))
        assert len(paths) == 6

    def test_limit_truncates(self):
        paths = list(all_simple_paths(grid3(), (0, 0), (2, 2), limit=2))
        assert len(paths) == 2

    def test_missing_nodes_raise(self):
        with pytest.raises(KeyError):
            list(all_simple_paths(grid3(), (0, 0), "nope"))

    def test_direct_edge_path(self):
        g = DiGraph()
        g.add_edge("a", "b")
        assert list(all_simple_paths(g, "a", "b")) == [["a", "b"]]

    def test_deep_graph_no_recursion_error(self):
        g = DiGraph()
        n = 5000
        for i in range(n):
            g.add_edge(i, i + 1, 1.0)
        paths = list(all_simple_paths(g, 0, n))
        assert len(paths) == 1 and len(paths[0]) == n + 1


class TestCountSimplePaths:
    def test_exact_count(self):
        assert count_simple_paths(grid3(), (0, 0), (2, 2)) == 6

    def test_cap_saturates(self):
        assert count_simple_paths(grid3(), (0, 0), (2, 2), cap=3) == 3


@st.composite
def random_digraphs(draw):
    n = draw(st.integers(min_value=2, max_value=7))
    edges = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            min_size=0, max_size=18,
            unique=True,
        )
    )
    return n, [(u, v) for u, v in edges if u != v]


@settings(max_examples=50, deadline=None)
@given(random_digraphs())
def test_matches_networkx(data):
    n, edges = data
    ours = DiGraph()
    theirs = nx.DiGraph()
    for node in range(n):
        ours.add_node(node)
        theirs.add_node(node)
    for u, v in edges:
        ours.add_edge(u, v, 1.0)
        theirs.add_edge(u, v)
    expected = {tuple(p) for p in nx.all_simple_paths(theirs, 0, n - 1)}
    got = {tuple(p) for p in all_simple_paths(ours, 0, n - 1)}
    assert got == expected
