"""Dijkstra tests, including a cross-check against networkx."""


import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import DiGraph, NoPathError, shortest_path, shortest_path_tree


def diamond() -> DiGraph:
    g = DiGraph()
    for u, v, w in [("s", "a", 1), ("s", "b", 4), ("a", "b", 1),
                    ("a", "t", 5), ("b", "t", 1)]:
        g.add_edge(u, v, w)
    return g


class TestShortestPath:
    def test_finds_min_cost_path(self):
        path, cost = shortest_path(diamond(), "s", "t")
        assert path == ["s", "a", "b", "t"]
        assert cost == 3.0

    def test_source_equals_target(self):
        path, cost = shortest_path(diamond(), "s", "s")
        assert path == ["s"] and cost == 0.0

    def test_unreachable_raises(self):
        g = diamond()
        g.add_node("island")
        with pytest.raises(NoPathError):
            shortest_path(g, "s", "island")

    def test_missing_endpoint_raises(self):
        with pytest.raises(KeyError):
            shortest_path(diamond(), "s", "nope")

    def test_banned_node_forces_detour(self):
        path, cost = shortest_path(diamond(), "s", "t",
                                   banned_nodes={"a"})
        assert path == ["s", "b", "t"]
        assert cost == 5.0

    def test_banned_edge_forces_detour(self):
        path, _ = shortest_path(diamond(), "s", "t",
                                banned_edges={("a", "b")})
        assert "b" not in path or path.index("b") == 1

    def test_banned_endpoint_raises(self):
        with pytest.raises(NoPathError):
            shortest_path(diamond(), "s", "t", banned_nodes={"t"})

    def test_masked_edges_ignored(self):
        g = diamond()
        g.mask_edge("a", "b")
        path, cost = shortest_path(g, "s", "t")
        assert cost == 5.0

    def test_zero_weight_edges(self):
        g = DiGraph()
        g.add_edge("s", "a", 0.0)
        g.add_edge("a", "t", 0.0)
        path, cost = shortest_path(g, "s", "t")
        assert cost == 0.0


class TestShortestPathTree:
    def test_distances(self):
        dist = shortest_path_tree(diamond(), "s")
        assert dist == {"s": 0.0, "a": 1.0, "b": 2.0, "t": 3.0}

    def test_unreachable_absent(self):
        g = diamond()
        g.add_node("island")
        assert "island" not in shortest_path_tree(g, "s")


@st.composite
def random_digraphs(draw):
    """Random weighted digraphs, returned as edge lists."""
    n = draw(st.integers(min_value=2, max_value=12))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(0, n - 1),
                st.integers(0, n - 1),
                st.floats(0.1, 10.0, allow_nan=False),
            ),
            min_size=1,
            max_size=40,
        )
    )
    return n, [(u, v, w) for u, v, w in edges if u != v]


@settings(max_examples=60, deadline=None)
@given(random_digraphs())
def test_matches_networkx(data):
    n, edges = data
    ours = DiGraph()
    theirs = nx.DiGraph()
    for node in range(n):
        ours.add_node(node)
        theirs.add_node(node)
    for u, v, w in edges:
        ours.add_edge(u, v, w)
        theirs.add_edge(u, v, weight=w)
    try:
        expected = nx.shortest_path_length(theirs, 0, n - 1, weight="weight")
    except nx.NetworkXNoPath:
        with pytest.raises(NoPathError):
            shortest_path(ours, 0, n - 1)
        return
    _, cost = shortest_path(ours, 0, n - 1)
    assert cost == pytest.approx(expected)


@settings(max_examples=40, deadline=None)
@given(random_digraphs())
def test_tree_matches_networkx(data):
    n, edges = data
    ours = DiGraph()
    theirs = nx.DiGraph()
    for node in range(n):
        ours.add_node(node)
        theirs.add_node(node)
    for u, v, w in edges:
        ours.add_edge(u, v, w)
        theirs.add_edge(u, v, weight=w)
    expected = nx.single_source_dijkstra_path_length(theirs, 0)
    ours_dist = shortest_path_tree(ours, 0)
    assert set(ours_dist) == set(expected)
    for node, dist in expected.items():
        assert ours_dist[node] == pytest.approx(dist)
