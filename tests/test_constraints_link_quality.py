"""Tests for the link-quality constraints (2a)-(2b)."""

import pytest

from repro.constraints import build_link_quality, build_mapping
from repro.encoding import ApproximatePathEncoder
from repro.library import default_catalog
from repro.milp import HighsSolver, Model
from repro.network import (
    LinkQualityRequirement,
    RouteRequirement,
    small_grid_template,
)
from repro.validation import link_rss_dbm
from repro.core.explorer import decode_architecture, BuiltProblem


def solve_with_lq(grid, lq_requirement, k_star=8):
    model = Model()
    library = default_catalog()
    mapping = build_mapping(model, grid.template, library)
    routes = [
        RouteRequirement(s, grid.sink_id, replicas=1, disjoint=False)
        for s in grid.sensor_ids
    ]
    encoding = ApproximatePathEncoder(k_star=k_star).encode(
        model, grid.template, routes, mapping.node_used
    )
    lq = build_link_quality(model, grid.template, mapping, encoding,
                            lq_requirement)
    model.minimize(mapping.cost_expr())
    solution = HighsSolver().solve(model)
    built = BuiltProblem(
        model=model, mapping=mapping, encoding=encoding, link_quality=lq,
        energy=None, localization=None, objective_exprs={},
    )
    arch = (
        decode_architecture(solution, built, grid.template, library)
        if solution.status.has_solution else None
    )
    return solution, arch, lq


@pytest.fixture()
def grid():
    return small_grid_template(nx=4, ny=3, spacing=10.0)


class TestRssExpressions:
    def test_rss_matches_datasheet_on_active_links(self, grid):
        solution, arch, _ = solve_with_lq(
            grid, LinkQualityRequirement(min_rss_dbm=-80.0)
        )
        assert solution.status.has_solution
        for u, v in arch.active_edges:
            assert link_rss_dbm(arch, u, v) >= -80.0 - 1e-6

    def test_expressions_built_even_without_requirement(self, grid):
        _, _, lq = solve_with_lq(grid, None)
        assert lq.rss
        for _edge, (lo, hi) in lq.rss_bounds.items():
            assert lo <= hi

    def test_snr_offsets_noise(self, grid):
        _, _, lq = solve_with_lq(grid, None)
        edge = next(iter(lq.rss))
        snr = lq.snr(edge)
        rss = lq.rss[edge]
        assert snr.constant - rss.constant == pytest.approx(100.0)
        lo_s, hi_s = lq.snr_bounds(edge)
        lo_r, hi_r = lq.rss_bounds[edge]
        assert lo_s - lo_r == pytest.approx(100.0)


class TestQualityEnforcement:
    def test_tight_bound_forces_upgrades_or_detours(self, grid):
        cheap_sol, cheap_arch, _ = solve_with_lq(
            grid, LinkQualityRequirement(min_snr_db=5.0)
        )
        strict_sol, strict_arch, _ = solve_with_lq(
            grid, LinkQualityRequirement(min_snr_db=25.0)
        )
        assert cheap_sol.status.has_solution
        assert strict_sol.status.has_solution
        assert strict_sol.objective >= cheap_sol.objective - 1e-9
        noise = grid.template.link_type.noise_dbm
        for u, v in strict_arch.active_edges:
            assert link_rss_dbm(strict_arch, u, v) - noise >= 25.0 - 1e-6

    def test_impossible_bound_infeasible(self, grid):
        solution, _, _ = solve_with_lq(
            grid, LinkQualityRequirement(min_snr_db=80.0)
        )
        assert not solution.status.has_solution

    def test_both_bounds_enforced(self, grid):
        requirement = LinkQualityRequirement(
            min_rss_dbm=-75.0, min_snr_db=22.0
        )
        solution, arch, _ = solve_with_lq(grid, requirement)
        assert solution.status.has_solution
        noise = grid.template.link_type.noise_dbm
        for u, v in arch.active_edges:
            rss = link_rss_dbm(arch, u, v)
            assert rss >= -75.0 - 1e-6
            assert rss - noise >= 22.0 - 1e-6
