"""Tests for the TDMA slot scheduler."""

import pytest

from repro.core import DataCollectionExplorer
from repro.network import RequirementSet, TdmaConfig
from repro.protocols import SchedulingError, build_schedule, slot_demand


@pytest.fixture()
def arch(grid_instance, library, grid_requirements):
    result = DataCollectionExplorer(
        grid_instance.template, library, grid_requirements
    ).solve("cost")
    assert result.feasible
    return result.architecture


class TestBuildSchedule:
    def test_every_hop_scheduled_once(self, arch):
        schedule = build_schedule(arch, TdmaConfig())
        total_hops = sum(r.hops for r in arch.routes)
        assert len(schedule.assignments) == total_hops

    def test_hops_in_route_order(self, arch):
        schedule = build_schedule(arch, TdmaConfig())
        by_route = {}
        for a in schedule.assignments:
            by_route.setdefault(a.route_index, []).append(a)
        for assignments in by_route.values():
            assignments.sort(key=lambda a: a.hop_index)
            slots = [a.slot for a in assignments]
            assert slots == sorted(slots)
            assert len(set(slots)) == len(slots)

    def test_no_node_double_booked(self, arch):
        schedule = build_schedule(arch, TdmaConfig())
        for slot in range(schedule.span_slots):
            busy = []
            for a in schedule.in_slot(slot):
                busy.extend([a.tx, a.rx])
            assert len(busy) == len(set(busy))

    def test_no_interference_at_receivers(self, arch):
        schedule = build_schedule(arch, TdmaConfig())
        for slot in range(schedule.span_slots):
            concurrent = schedule.in_slot(slot)
            for i, a in enumerate(concurrent):
                for b in concurrent[i + 1:]:
                    # b's transmitter must not be audible at a's receiver.
                    try:
                        arch.template.path_loss(b.tx, a.rx)
                        audible = True
                    except KeyError:
                        audible = False
                    assert not audible

    def test_slots_of_matches_demand(self, arch):
        schedule = build_schedule(arch, TdmaConfig())
        demand = slot_demand(arch.routes)
        for node_id, count in demand.items():
            assert len(schedule.slots_of(node_id)) == count

    def test_budget_exceeded_raises(self, arch):
        with pytest.raises(SchedulingError):
            build_schedule(arch, TdmaConfig(), max_superframes=0)

    def test_span_superframes(self, arch):
        config = TdmaConfig(slots=16)
        schedule = build_schedule(arch, config)
        import math

        assert schedule.span_superframes == math.ceil(
            schedule.span_slots / config.slots
        )


class TestMultiSuperframe:
    def test_small_superframes_spill_over(self, arch):
        """With tiny superframes the schedule must span several of them
        while staying conflict-free."""
        config = TdmaConfig(slots=2, slot_ms=1.0)
        schedule = build_schedule(arch, config)
        assert schedule.span_superframes > 1
        for slot in range(schedule.span_slots):
            busy = []
            for a in schedule.in_slot(slot):
                busy.extend([a.tx, a.rx])
            assert len(busy) == len(set(busy))

    def test_simulator_handles_multi_superframe_schedules(
        self, arch, grid_requirements
    ):

        from repro.network import RequirementSet
        from repro.simulation import DataCollectionSimulator

        reqs = RequirementSet(
            routes=grid_requirements.routes,
            link_quality=grid_requirements.link_quality,
            lifetime=grid_requirements.lifetime,
            tdma=TdmaConfig(slots=2, slot_ms=1.0, report_interval_s=30.0),
            power=grid_requirements.power,
        )
        sim = DataCollectionSimulator(arch, reqs, seed=0)
        assert sim.schedule.span_superframes > 1
        outcome = sim.run(reports=20)
        assert outcome.delivery_ratio == 1.0


class TestScheduleProperties:
    """Property-based: any valid route set schedules conflict-free."""

    from hypothesis import given, settings
    from hypothesis import strategies as st

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 1000), n_routes=st.integers(1, 8))
    def test_random_route_sets(self, seed, n_routes):
        import numpy as np

        from repro.graph import k_shortest_paths
        from repro.library import default_catalog
        from repro.network import (
            Architecture,
            Route,
            small_grid_template,
        )

        instance = small_grid_template(nx=4, ny=3)
        rng = np.random.default_rng(seed)
        arch = Architecture(template=instance.template,
                            library=default_catalog())
        for i in range(n_routes):
            sensor = int(rng.choice(instance.sensor_ids))
            options = k_shortest_paths(
                instance.template.graph, sensor, instance.sink_id, 4
            )
            path, _ = options[int(rng.integers(len(options)))]
            arch.routes.append(Route(sensor, instance.sink_id, i,
                                     tuple(path)))
        arch.active_edges = {e for r in arch.routes for e in r.edges}

        schedule = build_schedule(arch, TdmaConfig())
        # Completeness.
        assert len(schedule.assignments) == sum(r.hops for r in arch.routes)
        # Causality within each route.
        slots_by_route = {}
        for a in schedule.assignments:
            slots_by_route.setdefault(a.route_index, []).append(
                (a.hop_index, a.slot)
            )
        for hops in slots_by_route.values():
            hops.sort()
            slot_seq = [s for _, s in hops]
            assert slot_seq == sorted(slot_seq)
            assert len(set(slot_seq)) == len(slot_seq)
        # No node double-booked in any slot.
        for slot in range(schedule.span_slots):
            busy = []
            for a in schedule.in_slot(slot):
                busy.extend([a.tx, a.rx])
            assert len(busy) == len(set(busy))


class TestSlotDemand:
    def test_counts_tx_and_rx(self, arch):
        demand = slot_demand(arch.routes)
        expected_total = 2 * sum(r.hops for r in arch.routes)
        assert sum(demand.values()) == expected_total

    def test_empty_routes(self):
        assert slot_demand([]) == {}
