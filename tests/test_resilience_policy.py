"""Tests for deadline budgets and retry policies (fake clock, no sleeps)."""

import math

import pytest

from repro.resilience import DeadlineBudget, RetryPolicy
from repro.resilience.policy import NO_RETRY


class FakeClock:
    """A manually advanced monotonic clock."""

    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestDeadlineBudget:
    def test_unlimited_never_expires(self):
        clock = FakeClock()
        budget = DeadlineBudget.unlimited(clock=clock)
        clock.advance(1e9)
        assert not budget.limited
        assert not budget.expired
        assert budget.remaining() == math.inf
        assert budget.solver_time_limit() is None

    def test_remaining_counts_down(self):
        clock = FakeClock()
        budget = DeadlineBudget(10.0, clock=clock)
        assert budget.remaining() == pytest.approx(10.0)
        clock.advance(4.0)
        assert budget.remaining() == pytest.approx(6.0)
        assert not budget.expired
        clock.advance(7.0)
        assert budget.remaining() == 0.0
        assert budget.expired

    def test_negative_seconds_rejected(self):
        with pytest.raises(ValueError):
            DeadlineBudget(-1.0)

    def test_sub_budget_is_min_of_chain(self):
        clock = FakeClock()
        run = DeadlineBudget(100.0, clock=clock)
        rung = run.sub(10.0)
        assert rung.remaining() == pytest.approx(10.0)
        # The child cannot outlive the parent.
        clock.advance(95.0)
        late = run.sub(10.0)
        assert late.remaining() == pytest.approx(5.0)

    def test_unlimited_child_of_limited_parent(self):
        clock = FakeClock()
        run = DeadlineBudget(8.0, clock=clock)
        child = run.sub()  # no own deadline
        assert child.limited
        assert child.remaining() == pytest.approx(8.0)
        clock.advance(9.0)
        assert child.expired

    def test_solver_time_limit_caps_and_floors(self):
        clock = FakeClock()
        budget = DeadlineBudget(30.0, clock=clock)
        # Remaining below the solver's own cap wins.
        assert budget.solver_time_limit(cap=300.0) == pytest.approx(30.0)
        # The solver's cap wins when tighter.
        assert budget.solver_time_limit(cap=5.0) == pytest.approx(5.0)
        # Nearly expired budgets still yield a positive limit.
        clock.advance(30.0)
        assert budget.solver_time_limit(cap=300.0) == pytest.approx(1e-3)

    def test_solver_time_limit_unlimited_with_cap(self):
        budget = DeadlineBudget.unlimited(clock=FakeClock())
        assert budget.solver_time_limit(cap=12.0) == pytest.approx(12.0)


class TestRetryPolicy:
    def test_attempts_counts_first_try(self):
        assert RetryPolicy(max_retries=2).attempts == 3
        assert NO_RETRY.attempts == 1

    def test_exponential_delays_capped(self):
        policy = RetryPolicy(
            max_retries=5, base_delay_s=0.1, multiplier=2.0, max_delay_s=0.35
        )
        assert policy.delay(1) == pytest.approx(0.1)
        assert policy.delay(2) == pytest.approx(0.2)
        assert policy.delay(3) == pytest.approx(0.35)  # capped
        assert policy.delay(4) == pytest.approx(0.35)

    def test_delay_is_one_based(self):
        with pytest.raises(ValueError):
            RetryPolicy().delay(0)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay_s=-0.1)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)

    def test_backoff_uses_injected_sleep(self):
        slept = []
        policy = RetryPolicy(base_delay_s=0.5, multiplier=2.0)
        pause = policy.backoff(2, sleep=slept.append)
        assert pause == pytest.approx(1.0)
        assert slept == [pytest.approx(1.0)]

    def test_backoff_clipped_to_budget(self):
        clock = FakeClock()
        budget = DeadlineBudget(0.3, clock=clock)
        slept = []
        policy = RetryPolicy(base_delay_s=1.0)
        pause = policy.backoff(1, sleep=slept.append, budget=budget)
        assert pause == pytest.approx(0.3)
        assert slept == [pytest.approx(0.3)]

    def test_zero_delay_skips_sleep(self):
        slept = []
        NO_RETRY.backoff(1, sleep=slept.append)
        assert slept == []
