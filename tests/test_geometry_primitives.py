"""Unit tests for geometric primitives."""


import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import Point, Rectangle, Segment

coords = st.floats(min_value=-100.0, max_value=100.0,
                   allow_nan=False, allow_infinity=False)
points = st.builds(Point, coords, coords)


class TestPoint:
    def test_distance_is_euclidean(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == pytest.approx(5.0)

    def test_distance_to_self_is_zero(self):
        p = Point(1.5, -2.5)
        assert p.distance_to(p) == 0.0

    def test_midpoint(self):
        assert Point(0, 0).midpoint(Point(2, 4)) == Point(1, 2)

    def test_translated(self):
        assert Point(1, 1).translated(2, -3) == Point(3, -2)

    def test_as_tuple(self):
        assert Point(1.0, 2.0).as_tuple() == (1.0, 2.0)

    def test_points_are_hashable(self):
        assert len({Point(0, 0), Point(0, 0), Point(1, 0)}) == 2

    @given(points, points)
    def test_distance_symmetric(self, a, b):
        assert a.distance_to(b) == pytest.approx(b.distance_to(a))

    @given(points, points, points)
    def test_triangle_inequality(self, a, b, c):
        assert a.distance_to(c) <= a.distance_to(b) + b.distance_to(c) + 1e-9


class TestSegment:
    def test_length(self):
        assert Segment(Point(0, 0), Point(0, 5)).length == pytest.approx(5.0)

    def test_crossing_segments_intersect(self):
        s1 = Segment(Point(0, 0), Point(2, 2))
        s2 = Segment(Point(0, 2), Point(2, 0))
        assert s1.intersects(s2)

    def test_parallel_segments_do_not_intersect(self):
        s1 = Segment(Point(0, 0), Point(2, 0))
        s2 = Segment(Point(0, 1), Point(2, 1))
        assert not s1.intersects(s2)

    def test_touching_at_endpoint_intersects(self):
        s1 = Segment(Point(0, 0), Point(1, 1))
        s2 = Segment(Point(1, 1), Point(2, 0))
        assert s1.intersects(s2)

    def test_collinear_overlapping_intersect(self):
        s1 = Segment(Point(0, 0), Point(2, 0))
        s2 = Segment(Point(1, 0), Point(3, 0))
        assert s1.intersects(s2)

    def test_collinear_disjoint_do_not_intersect(self):
        s1 = Segment(Point(0, 0), Point(1, 0))
        s2 = Segment(Point(2, 0), Point(3, 0))
        assert not s1.intersects(s2)

    def test_t_junction_intersects(self):
        wall = Segment(Point(0, 0), Point(4, 0))
        ray = Segment(Point(2, -1), Point(2, 1))
        assert wall.intersects(ray)

    @given(points, points, points, points)
    def test_intersection_is_symmetric(self, a, b, c, d):
        s1, s2 = Segment(a, b), Segment(c, d)
        assert s1.intersects(s2) == s2.intersects(s1)

    def test_midpoint(self):
        s = Segment(Point(0, 0), Point(4, 2))
        assert s.midpoint() == Point(2, 1)


class TestRectangle:
    def test_dimensions(self):
        r = Rectangle(1, 2, 4, 6)
        assert r.width == 3 and r.height == 4 and r.area == 12

    def test_degenerate_raises(self):
        with pytest.raises(ValueError):
            Rectangle(2, 0, 1, 5)

    def test_contains_interior_and_boundary(self):
        r = Rectangle(0, 0, 2, 2)
        assert r.contains(Point(1, 1))
        assert r.contains(Point(0, 0))
        assert r.contains(Point(2, 2))
        assert not r.contains(Point(3, 1))

    def test_edges_form_closed_loop(self):
        r = Rectangle(0, 0, 2, 3)
        edges = list(r.edges())
        assert len(edges) == 4
        for first, second in zip(edges, edges[1:] + edges[:1]):
            assert first.end == second.start

    def test_edge_lengths_match_perimeter(self):
        r = Rectangle(0, 0, 3, 4)
        assert sum(e.length for e in r.edges()) == pytest.approx(14.0)
