"""Yen's K-shortest-paths tests, cross-checked against networkx."""

import itertools

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import DiGraph, k_shortest_paths


def ladder() -> DiGraph:
    """A graph with many distinct s-t paths of known costs."""
    g = DiGraph()
    for u, v, w in [
        ("s", "a", 1), ("s", "b", 3), ("a", "b", 1), ("b", "a", 1),
        ("a", "t", 4), ("b", "t", 2), ("s", "t", 9),
    ]:
        g.add_edge(u, v, w)
    return g


class TestKShortest:
    def test_first_path_is_shortest(self):
        paths = k_shortest_paths(ladder(), "s", "t", 1)
        assert paths[0] == (["s", "a", "b", "t"], 4.0)

    def test_costs_non_decreasing(self):
        paths = k_shortest_paths(ladder(), "s", "t", 6)
        costs = [c for _, c in paths]
        assert costs == sorted(costs)

    def test_paths_are_distinct(self):
        paths = k_shortest_paths(ladder(), "s", "t", 6)
        keys = [tuple(p) for p, _ in paths]
        assert len(keys) == len(set(keys))

    def test_paths_are_loopless(self):
        for path, _ in k_shortest_paths(ladder(), "s", "t", 6):
            assert len(path) == len(set(path))

    def test_costs_match_edge_weights(self):
        g = ladder()
        for path, cost in k_shortest_paths(g, "s", "t", 6):
            assert cost == pytest.approx(g.subgraph_weight(path))

    def test_exhausts_finite_path_set(self):
        # The ladder has exactly 5 simple s-t paths.
        paths = k_shortest_paths(ladder(), "s", "t", 50)
        assert len(paths) == 5

    def test_unreachable_returns_empty(self):
        g = ladder()
        g.add_node("island")
        assert k_shortest_paths(g, "s", "island", 3) == []

    def test_k_must_be_positive(self):
        with pytest.raises(ValueError):
            k_shortest_paths(ladder(), "s", "t", 0)

    def test_respects_masks(self):
        g = ladder()
        g.mask_edge("s", "a")
        for path, _ in k_shortest_paths(g, "s", "t", 10):
            assert ("s", "a") not in zip(path, path[1:])


@st.composite
def random_digraphs(draw):
    n = draw(st.integers(min_value=2, max_value=9))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(0, n - 1),
                st.integers(0, n - 1),
                st.floats(0.1, 10.0, allow_nan=False),
            ),
            min_size=1,
            max_size=30,
            unique_by=lambda e: (e[0], e[1]),
        )
    )
    return n, [(u, v, w) for u, v, w in edges if u != v]


@settings(max_examples=40, deadline=None)
@given(random_digraphs(), st.integers(1, 6))
def test_matches_networkx_shortest_simple_paths(data, k):
    """Cost sequence must equal networkx's (which implements Yen)."""
    n, edges = data
    ours = DiGraph()
    theirs = nx.DiGraph()
    for node in range(n):
        ours.add_node(node)
        theirs.add_node(node)
    for u, v, w in edges:
        ours.add_edge(u, v, w)
        theirs.add_edge(u, v, weight=w)

    try:
        reference = list(
            itertools.islice(
                nx.shortest_simple_paths(theirs, 0, n - 1, weight="weight"), k
            )
        )
    except nx.NetworkXNoPath:
        assert k_shortest_paths(ours, 0, n - 1, k) == []
        return
    expected_costs = [
        nx.path_weight(theirs, p, weight="weight") for p in reference
    ]
    result = k_shortest_paths(ours, 0, n - 1, k)
    assert len(result) == len(reference)
    for (_, cost), expected in zip(result, expected_costs):
        assert cost == pytest.approx(expected)
