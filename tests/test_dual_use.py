"""Dual-use synthesis: data-collection relays doubling as anchors.

The richest requirement combination the framework supports in one MILP:
routing with disjoint replicas + link quality + lifetime + localization
coverage, where the coverage must be provided by the *relays* the routing
places.
"""

import pytest

from repro.core import DataCollectionExplorer
from repro.geometry import grid_for_count
from repro.network import (
    LifetimeRequirement,
    LinkQualityRequirement,
    ReachabilityRequirement,
    RequirementSet,
    small_grid_template,
)
from repro.validation import validate


@pytest.fixture(scope="module")
def dual_use():
    instance = small_grid_template(nx=5, ny=4, spacing=9.0)
    test_points = tuple(
        grid_for_count(instance.plan.bounds, 12, margin=6.0)
    )
    reqs = RequirementSet()
    for s in instance.sensor_ids:
        reqs.require_route(s, instance.sink_id, replicas=2, disjoint=True)
    reqs.link_quality = LinkQualityRequirement(min_snr_db=20.0)
    reqs.lifetime = LifetimeRequirement(years=5.0)
    reqs.reachability = ReachabilityRequirement(
        test_points=test_points, min_anchors=2, min_rss_dbm=-78.0,
        anchor_role="relay",
    )
    return instance, reqs


class TestDualUseSynthesis:
    def test_channel_required(self, dual_use, library):
        instance, reqs = dual_use
        explorer = DataCollectionExplorer(instance.template, library, reqs)
        with pytest.raises(ValueError, match="channel"):
            explorer.build("cost")

    def test_all_requirements_hold_together(self, dual_use, library):
        instance, reqs = dual_use
        result = DataCollectionExplorer(
            instance.template, library, reqs,
            channel=instance.channel, reach_k_star=10,
        ).solve("cost")
        assert result.feasible
        report = validate(result.architecture, reqs, instance.channel)
        assert report.ok, report.violations[:5]
        # Routing and coverage both satisfied by the same relay set.
        assert report.average_reachable >= 2.0
        assert report.min_lifetime_years >= 5.0

    def test_coverage_requirement_costs_relays(self, dual_use, library):
        """Adding the coverage requirement can only increase cost, and the
        relay count covers both roles."""
        instance, reqs = dual_use
        routing_only = RequirementSet(
            routes=reqs.routes,
            link_quality=reqs.link_quality,
            lifetime=reqs.lifetime,
        )
        base = DataCollectionExplorer(
            instance.template, library, routing_only
        ).solve("cost")
        combined = DataCollectionExplorer(
            instance.template, library, reqs,
            channel=instance.channel, reach_k_star=10,
        ).solve("cost")
        assert base.feasible and combined.feasible
        assert (combined.architecture.dollar_cost
                >= base.architecture.dollar_cost - 1e-6)

    def test_routing_relays_kept_in_decoded_design(self, dual_use, library):
        """Relays that carry routes but serve no test point must survive
        the anchor-filter during decoding."""
        instance, reqs = dual_use
        result = DataCollectionExplorer(
            instance.template, library, reqs,
            channel=instance.channel, reach_k_star=10,
        ).solve("cost")
        route_nodes = {
            n for r in result.architecture.routes for n in r.nodes
        }
        assert route_nodes <= set(result.architecture.used_nodes)

    def test_dsod_objective_available(self, dual_use, library):
        instance, reqs = dual_use
        built = DataCollectionExplorer(
            instance.template, library, reqs,
            channel=instance.channel, reach_k_star=10,
        ).build("cost")
        assert "dsod" in built.objective_exprs
