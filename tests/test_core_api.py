"""Tests for the unified job request/result API (:mod:`repro.core.api`)."""

import pytest

import repro
from repro.core.api import JOB_SCHEMA_VERSION, JobRequest, JobResult
from repro.core.kstar_search import KStarSearchResult
from repro.core.options import SolveOptions
from repro.core.pareto import ParetoFront
from repro.resilience.checkpoint import RestoredResult

SMALL_KSTAR = {"nodes": 12, "devices": 5, "ladder": [1, 2]}


class TestJobRequestValidation:
    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown job kind"):
            JobRequest(kind="optimize")

    def test_unknown_problem_parameter(self):
        with pytest.raises(ValueError, match="unknown problem parameter"):
            JobRequest(kind="kstar", problem={"node": 12})

    def test_problem_keys_are_per_kind(self):
        # "nodes" belongs to kstar, not synthesize.
        with pytest.raises(ValueError, match="synthesize"):
            JobRequest(kind="synthesize", problem={"nodes": 12})

    def test_options_type_checked(self):
        with pytest.raises(TypeError, match="SolveOptions"):
            JobRequest(kind="kstar", options={"parallel": 2})

    def test_empty_tenant_rejected(self):
        with pytest.raises(ValueError, match="tenant"):
            JobRequest(kind="kstar", tenant="")

    def test_resumable_property(self):
        assert JobRequest(kind="kstar").resumable
        assert JobRequest(kind="pareto").resumable
        assert not JobRequest(kind="synthesize").resumable
        assert not JobRequest(kind="localize").resumable


class TestJobRequestWire:
    def test_round_trip(self):
        request = JobRequest(
            kind="kstar", problem=dict(SMALL_KSTAR), objective="cost",
            options=SolveOptions(parallel=2, deadline_s=30.0),
            tenant="team-a",
        )
        payload = request.to_dict()
        assert payload["schema_version"] == JOB_SCHEMA_VERSION
        assert JobRequest.from_dict(payload) == request

    def test_minimal_payload_fills_defaults(self):
        request = JobRequest.from_dict({"kind": "synthesize"})
        assert request.objective == "cost"
        assert request.tenant == "default"
        assert request.options == SolveOptions()

    def test_unsupported_schema_version(self):
        with pytest.raises(ValueError, match="schema_version"):
            JobRequest.from_dict({"kind": "kstar", "schema_version": 99})

    def test_unknown_fields_rejected(self):
        with pytest.raises(ValueError, match="unknown job request field"):
            JobRequest.from_dict({"kind": "kstar", "priority": 3})


class TestJobRequestRun:
    def test_kstar_run_and_envelope_round_trip(self, tmp_path):
        request = JobRequest(kind="kstar", problem=dict(SMALL_KSTAR))
        search = request.run()
        assert isinstance(search, KStarSearchResult)
        assert search.best is not None

        payload = repro.result_to_dict(search)
        assert payload["kind"] == "kstar"
        decoded = repro.result_from_dict(payload)
        assert isinstance(decoded, KStarSearchResult)
        assert decoded.best.k_star == search.best.k_star
        assert decoded.stop_reason == search.stop_reason
        assert len(decoded.trials) == len(search.trials)

    def test_non_resumable_kind_strips_checkpoint(self, tmp_path):
        # A synthesize request must ignore server-passed checkpointing:
        # its recovery story is simply re-running the job.
        request = JobRequest(
            kind="synthesize",
            problem={"sensors": 4, "relays": 8, "k_star": 4},
        )
        result = request.run(
            checkpoint=str(tmp_path / "sweep.jsonl"), resume=True
        )
        assert result.feasible
        assert not (tmp_path / "sweep.jsonl").exists()

    def test_resumable_kind_resumes_from_checkpoint(self, tmp_path):
        sweep = tmp_path / "sweep.jsonl"
        request = JobRequest(kind="kstar", problem=dict(SMALL_KSTAR))
        first = request.run(checkpoint=str(sweep))
        assert sweep.exists()
        second = request.run(checkpoint=str(sweep), resume=True)
        assert len(second.restored_ks) == len(first.trials)
        assert second.best.k_star == first.best.k_star

    def test_synthesis_envelope_round_trip(
        self, grid_instance, library, grid_requirements
    ):
        result = repro.explore(
            grid_instance.template, library, grid_requirements
        )
        payload = repro.result_to_dict(result)
        assert payload["kind"] == "synthesis"
        decoded = repro.result_from_dict(payload)
        assert isinstance(decoded, RestoredResult)
        assert decoded.feasible
        assert decoded.objective_value == pytest.approx(result.objective_value)

    def test_unknown_result_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown result kind"):
            repro.result_from_dict({"kind": "mystery"})


class TestJobResult:
    def test_success_envelope(self):
        request = JobRequest(kind="kstar", problem=dict(SMALL_KSTAR))
        search = request.run()
        outcome = JobResult.success("kstar", search, seconds=1.25)
        payload = outcome.to_dict()
        assert payload["ok"] is True
        assert payload["result"]["kind"] == "kstar"
        assert payload["seconds"] == 1.25
        back = JobResult.from_dict(payload)
        assert back.ok and back.kind == "kstar"
        assert isinstance(
            repro.result_from_dict(back.result), KStarSearchResult
        )

    def test_failure_envelope(self):
        outcome = JobResult.failure("pareto", "boom", seconds=0.1)
        payload = outcome.to_dict()
        assert payload["ok"] is False
        assert payload["error"] == "boom"
        assert "result" not in payload
        back = JobResult.from_dict(payload)
        assert not back.ok and back.error == "boom"


class TestParetoEnvelope:
    def test_pareto_round_trip(self):
        request = JobRequest(
            kind="pareto",
            problem={"sensors": 4, "relays": 8, "k_star": 3, "points": 3},
        )
        front = request.run()
        assert isinstance(front, ParetoFront)
        assert front.points
        payload = repro.result_to_dict(front)
        assert payload["kind"] == "pareto"
        decoded = repro.result_from_dict(payload)
        assert isinstance(decoded, ParetoFront)
        assert len(decoded.points) == len(front.points)
        assert decoded.points[0].primary == pytest.approx(
            front.points[0].primary
        )


class TestScenarioJobs:
    def test_problem_keys(self):
        with pytest.raises(ValueError, match="scenario"):
            JobRequest(kind="scenario", problem={"sensors": 4})
        request = JobRequest(
            kind="scenario",
            problem={"scenario": "campus::0",
                     "edits": ["set-min-snr:21"], "base": "job-1"},
        )
        assert not request.resumable
        assert JobRequest.from_dict(request.to_dict()) == request

    def test_run_without_edits(self):
        request = JobRequest(
            kind="scenario", problem={"scenario": "campus::0"},
        )
        result = request.run()
        assert result.feasible
        assert repro.result_to_dict(result)["kind"] == "synthesis"

    def test_run_with_edit_matches_cold_solve(self):
        from repro.runtime import EncodeCache
        from repro.scenarios import apply_edits, default_registry, parse_edit

        cache = EncodeCache()
        base = JobRequest(
            kind="scenario", problem={"scenario": "campus::0"},
        ).run(cache=cache)
        edited_request = JobRequest(
            kind="scenario",
            problem={"scenario": "campus::0",
                     "edits": ["add-wall:30,5,30,25,brick"]},
        )
        incremental = edited_request.run(
            cache=cache, previous=base.architecture
        )
        scenario = default_registry().generate("campus::0")
        cold_problem, _ = apply_edits(
            scenario, (parse_edit("add-wall:30,5,30,25,brick"),)
        )
        cold = cold_problem.rebuilt().explore()
        assert incremental.objective_value == cold.objective_value
        assert cache.counters.partial_count() > 0

    def test_missing_scenario_name(self):
        with pytest.raises(ValueError, match="need a 'scenario' name"):
            JobRequest(kind="scenario").run()

    def test_unknown_scenario_name(self):
        with pytest.raises(KeyError, match="unknown scenario family"):
            JobRequest(
                kind="scenario", problem={"scenario": "skyscraper::0"}
            ).run()

    def test_k_star_override(self):
        request = JobRequest(
            kind="scenario",
            problem={"scenario": "campus::0", "k_star": 3},
        )
        assert request.run().feasible
