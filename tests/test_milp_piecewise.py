"""Tests for the convex piecewise-linear fitting and constraints."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.milp import HighsSolver, Model, convex_pwl_from_samples


class TestFit:
    def test_linear_data_single_segment(self):
        xs = np.linspace(0, 10, 20)
        pwl = convex_pwl_from_samples(xs, 2 * xs + 1)
        assert len(pwl.segments) == 1
        assert pwl.segments[0].slope == pytest.approx(2.0)
        assert pwl.segments[0].intercept == pytest.approx(1.0)

    def test_quadratic_chords_over_estimate_between_samples(self):
        xs = np.linspace(-2, 2, 9)
        pwl = convex_pwl_from_samples(xs, xs ** 2, max_segments=8)
        for x in np.linspace(-2, 2, 101):
            assert pwl.value_at(x) >= x * x - 1e-9

    def test_exact_at_hull_sample_points(self):
        xs = np.linspace(0, 4, 5)
        ys = xs ** 2
        pwl = convex_pwl_from_samples(xs, ys, max_segments=10)
        for x, y in zip(xs, ys):
            assert pwl.value_at(x) == pytest.approx(y, abs=1e-9)

    def test_max_segments_respected(self):
        xs = np.linspace(0, 10, 100)
        pwl = convex_pwl_from_samples(xs, np.exp(xs / 3), max_segments=4)
        assert len(pwl.segments) <= 4

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            convex_pwl_from_samples(np.array([1.0, 2.0]), np.array([1.0]))

    def test_too_few_samples_raise(self):
        with pytest.raises(ValueError):
            convex_pwl_from_samples(np.array([1.0]), np.array([1.0]))

    def test_unsorted_input_handled(self):
        xs = np.array([3.0, 0.0, 1.0, 2.0])
        pwl = convex_pwl_from_samples(xs, xs ** 2, max_segments=5)
        assert pwl.value_at(0.0) == pytest.approx(0.0, abs=1e-9)


class TestConstraints:
    def test_constrain_above_enforces_hull(self):
        xs = np.linspace(0, 4, 9)
        pwl = convex_pwl_from_samples(xs, xs ** 2, max_segments=8)
        for x_val in (0.5, 2.0, 3.7):
            m = Model()
            x = m.continuous("x", x_val, x_val)
            y = m.continuous("y", 0.0, 100.0)
            pwl.constrain_above(m, x, y, "pwl")
            m.minimize(y)
            sol = HighsSolver().solve(m)
            assert sol.value(y) == pytest.approx(pwl.value_at(x_val), rel=1e-6)


@settings(max_examples=30, deadline=None)
@given(
    st.floats(0.2, 3.0),
    st.floats(-2.0, 2.0),
    st.integers(3, 8),
)
def test_hull_never_below_convex_curve(scale, shift, segments):
    xs = np.linspace(-3, 3, 40)
    ys = scale * (xs - shift) ** 2
    pwl = convex_pwl_from_samples(xs, ys, max_segments=segments)
    for x in np.linspace(-3, 3, 61):
        assert pwl.value_at(x) >= scale * (x - shift) ** 2 - 1e-6
