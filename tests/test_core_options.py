"""Tests for :class:`SolveOptions` and legacy-keyword normalization."""

import warnings
from pathlib import Path

import pytest

import repro
from repro.core.options import (
    DEFAULT_OPTIONS,
    SolveOptions,
    resolve_options,
)
from repro.resilience.policy import DeadlineBudget, RetryPolicy


class TestSolveOptions:
    def test_defaults(self):
        opts = SolveOptions()
        assert opts.deadline_s is None
        assert opts.parallel == 1
        assert opts.cache is True
        assert opts.resume is False
        assert opts.warm_start is False
        assert opts.lazy_cuts is False
        assert opts.portfolio is False
        assert opts == DEFAULT_OPTIONS

    def test_accel_flags_round_trip(self):
        opts = SolveOptions(warm_start=True, lazy_cuts=True, portfolio=True)
        assert SolveOptions.from_dict(opts.to_dict()) == opts
        payload = opts.to_dict()
        assert payload["warm_start"] is True
        assert payload["lazy_cuts"] is True
        assert payload["portfolio"] is True

    def test_incremental_flag_round_trips(self):
        assert SolveOptions().incremental is False
        opts = SolveOptions(incremental=True)
        assert SolveOptions.from_dict(opts.to_dict()) == opts
        assert opts.to_dict()["incremental"] is True

    @pytest.mark.parametrize("bad", [
        {"deadline_s": -1.0},
        {"max_retries": -2},
        {"parallel": 0},
        {"resume": True},  # resume without checkpoint
    ])
    def test_validation(self, bad):
        with pytest.raises(ValueError):
            SolveOptions(**bad)

    def test_checkpoint_path_normalized(self, tmp_path):
        opts = SolveOptions(checkpoint=tmp_path / "c.jsonl")
        assert isinstance(opts.checkpoint, str)
        assert opts.checkpoint == str(tmp_path / "c.jsonl")

    def test_round_trip(self, tmp_path):
        opts = SolveOptions(
            deadline_s=12.5, max_retries=2, parallel=3,
            checkpoint=str(tmp_path / "c.jsonl"), resume=True,
            cache=False, trace="t.jsonl", metrics="m.prom",
        )
        assert SolveOptions.from_dict(opts.to_dict()) == opts

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown option"):
            SolveOptions.from_dict({"deadline_s": 1.0, "bogus": True})

    def test_derived_runtime_objects(self):
        opts = SolveOptions(deadline_s=5.0, max_retries=3)
        assert isinstance(opts.budget(), DeadlineBudget)
        policy = opts.retry_policy()
        assert isinstance(policy, RetryPolicy)
        assert policy.max_retries == 3
        assert opts.resilient
        assert SolveOptions().budget() is None
        assert SolveOptions().retry_policy() is None
        assert not SolveOptions().resilient

    def test_replace(self):
        opts = SolveOptions(parallel=2)
        changed = opts.replace(deadline_s=1.0)
        assert changed.parallel == 2
        assert changed.deadline_s == 1.0
        assert opts.deadline_s is None  # frozen original untouched


class TestResolveOptions:
    def test_no_legacy_returns_options_or_defaults(self):
        opts = SolveOptions(parallel=4)
        assert resolve_options(opts, {}) is opts
        assert resolve_options(None, {}) is DEFAULT_OPTIONS

    def test_default_valued_legacy_dropped_silently(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            resolved = resolve_options(
                None, {"parallel": 1, "deadline_s": None, "resume": False}
            )
        assert resolved == DEFAULT_OPTIONS

    def test_effective_legacy_warns_and_folds(self):
        with pytest.warns(DeprecationWarning, match="deprecated"):
            resolved = resolve_options(
                None, {"parallel": 2, "deadline_s": 9.0}, where="f()"
            )
        assert resolved.parallel == 2
        assert resolved.deadline_s == 9.0

    def test_both_sources_is_an_error(self):
        with pytest.raises(ValueError, match="not both"):
            resolve_options(SolveOptions(), {"parallel": 2})

    def test_unknown_keyword_is_type_error(self):
        with pytest.raises(TypeError, match="unexpected keyword"):
            resolve_options(None, {"paralell": 2}, where="f()")

    def test_path_values_normalized(self, tmp_path):
        with pytest.warns(DeprecationWarning):
            resolved = resolve_options(
                None, {"checkpoint": tmp_path / "c.jsonl"}
            )
        assert resolved.checkpoint == str(tmp_path / "c.jsonl")


class TestEntryPointsAcceptOptions:
    def test_explore_with_options_parallel(
        self, grid_instance, library, grid_requirements
    ):
        results = repro.explore(
            grid_instance.template, library, grid_requirements,
            objective=("cost", "energy"),
            options=SolveOptions(parallel=2),
        )
        assert len(results) == 2
        assert all(r.feasible for r in results)

    def test_explore_rejects_checkpoint_options(
        self, grid_instance, library, grid_requirements, tmp_path
    ):
        with pytest.raises(ValueError, match="checkpoint"):
            repro.explore(
                grid_instance.template, library, grid_requirements,
                options=SolveOptions(
                    checkpoint=str(tmp_path / "c.jsonl")
                ),
            )

    def test_explore_legacy_keyword_warns(
        self, grid_instance, library, grid_requirements
    ):
        with pytest.warns(DeprecationWarning, match="explore\\(\\)"):
            result = repro.explore(
                grid_instance.template, library, grid_requirements,
                parallel=2,
            )
        assert result.feasible

    def test_explore_unknown_keyword_rejected(
        self, grid_instance, library, grid_requirements
    ):
        with pytest.raises(TypeError, match="unexpected keyword"):
            repro.explore(
                grid_instance.template, library, grid_requirements,
                paralel=2,
            )
