"""Round-trip tests for JSON persistence."""

import json

import pytest

from repro.core import DataCollectionExplorer
from repro.io import (
    architecture_from_dict,
    architecture_to_dict,
    load_architecture,
    save_architecture,
    template_from_dict,
    template_to_dict,
)
from repro.validation import validate


def Architecture_factory(instance, library, rng, relay_names):
    """A random (not necessarily feasible) architecture for round-trips."""
    from repro.network import Architecture, Route

    arch = Architecture(template=instance.template, library=library)
    n_edges = instance.template.edge_count
    edges = [(u, v) for u, v, _ in instance.template.edges()]
    chosen = [edges[i] for i in
              rng.choice(n_edges, size=min(6, n_edges), replace=False)]
    arch.active_edges = set(chosen)
    used = {n for e in chosen for n in e}
    for node_id in used:
        role = instance.template.node(node_id).role
        if role == "relay":
            arch.sizing[node_id] = str(rng.choice(relay_names))
        elif role == "sensor":
            arch.sizing[node_id] = "sensor-std"
        else:
            arch.sizing[node_id] = "sink-std"
    if chosen:
        u, v = chosen[0]
        arch.routes = [Route(u, v, 0, (u, v))]
    return arch


@pytest.fixture(scope="module")
def design(grid_instance, library, ):
    from repro.network import (
        LifetimeRequirement,
        LinkQualityRequirement,
        RequirementSet,
    )

    reqs = RequirementSet()
    for s in grid_instance.sensor_ids:
        reqs.require_route(s, grid_instance.sink_id, replicas=2,
                           disjoint=True)
    reqs.link_quality = LinkQualityRequirement(min_snr_db=20.0)
    reqs.lifetime = LifetimeRequirement(years=5.0)
    result = DataCollectionExplorer(
        grid_instance.template, library, reqs
    ).solve("cost")
    assert result.feasible
    return result.architecture, reqs


class TestTemplateRoundTrip:
    def test_structure_preserved(self, grid_instance):
        template = grid_instance.template
        restored = template_from_dict(template_to_dict(template))
        assert restored.node_count == template.node_count
        assert restored.edge_count == template.edge_count
        for node in template.nodes:
            copy = restored.node(node.id)
            assert copy.location == node.location
            assert copy.role == node.role
            assert copy.fixed == node.fixed

    def test_path_losses_preserved(self, grid_instance):
        template = grid_instance.template
        restored = template_from_dict(template_to_dict(template))
        for u, v, pl in template.edges():
            assert restored.path_loss(u, v) == pytest.approx(pl)

    def test_link_type_preserved(self, grid_instance):
        restored = template_from_dict(
            template_to_dict(grid_instance.template)
        )
        assert restored.link_type == grid_instance.template.link_type

    def test_json_serializable(self, grid_instance):
        json.dumps(template_to_dict(grid_instance.template))

    def test_bad_version_rejected(self, grid_instance):
        data = template_to_dict(grid_instance.template)
        data["version"] = 99
        with pytest.raises(ValueError, match="version"):
            template_from_dict(data)


class TestArchitectureRoundTrip:
    def test_dict_roundtrip_identical(self, design, library):
        arch, _ = design
        restored = architecture_from_dict(
            architecture_to_dict(arch), library
        )
        assert restored.sizing == arch.sizing
        assert restored.active_edges == arch.active_edges
        assert [r.nodes for r in restored.routes] == [
            r.nodes for r in arch.routes
        ]
        assert restored.dollar_cost == pytest.approx(arch.dollar_cost)

    def test_restored_design_validates_identically(self, design, library):
        arch, reqs = design
        restored = architecture_from_dict(
            architecture_to_dict(arch), library
        )
        original = validate(arch, reqs)
        copy = validate(restored, reqs)
        assert copy.ok == original.ok
        assert copy.average_lifetime_years == pytest.approx(
            original.average_lifetime_years
        )
        assert copy.total_charge_ma_ms == pytest.approx(
            original.total_charge_ma_ms
        )

    def test_file_roundtrip(self, design, library, tmp_path):
        arch, _ = design
        path = tmp_path / "design.json"
        save_architecture(arch, path)
        restored = load_architecture(path, library)
        assert restored.sizing == arch.sizing

    def test_randomized_architectures_roundtrip(self, library):
        """Property-style: arbitrary sizing/edge/route combinations survive
        the JSON round trip bit-exactly."""
        import numpy as np

        from repro.network import Route, small_grid_template

        instance = small_grid_template(nx=4, ny=3)
        rng = np.random.default_rng(7)
        relay_names = [d.name for d in library.for_role("relay")]
        for _ in range(10):
            arch = Architecture_factory(instance, library, rng, relay_names)
            restored = architecture_from_dict(
                architecture_to_dict(arch), library
            )
            assert restored.sizing == arch.sizing
            assert restored.active_edges == arch.active_edges
            assert [(r.source, r.dest, r.replica, r.nodes)
                    for r in restored.routes] == [
                (r.source, r.dest, r.replica, r.nodes) for r in arch.routes
            ]

    def test_unknown_device_rejected(self, design):
        from repro.library import Library, device

        arch, _ = design
        empty = Library(devices=[device("other", ("relay",), cost=1.0)])
        with pytest.raises(KeyError):
            architecture_from_dict(architecture_to_dict(arch), empty)
