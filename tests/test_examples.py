"""Smoke tests: every example script runs end to end.

The domain-specific examples accept size arguments, so the tests run them
at reduced scale to stay fast; the assertions check they exit cleanly and
print their headline output.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"
SRC = EXAMPLES.parent / "src"


def run_example(name: str, *args: str, timeout: float = 600.0):
    # The child does not inherit an importable ``repro`` from the test
    # process (which may run from src/ via PYTHONPATH or an editable
    # install), so put src/ on the child's path explicitly.
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(SRC)] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=timeout, env=env,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


def test_quickstart(tmp_path):
    out = run_example("quickstart.py")
    assert "validation: OK" in out
    assert "delivery ratio 1.000" in out


def test_spec_language():
    out = run_example("spec_language.py")
    assert "validation: OK" in out
    assert "route 0->" in out


def test_simulation_validation():
    out = run_example("simulation_validation.py")
    assert "delivery 1.000" in out
    assert "-year bound" in out


def test_dual_use_network():
    out = run_example("dual_use_network.py")
    assert "all hold" in out
    assert "localization duty costs" in out


def test_pareto_tradeoff():
    out = run_example("pareto_tradeoff.py")
    assert "knee operating point" in out
    assert "front spans" in out


def test_resiliency_and_protocols():
    out = run_example("resiliency_and_protocols.py")
    assert "single-fault analysis" in out
    assert "survives any single link failure: True" in out
    assert "idle listening dominates CSMA" in out


@pytest.mark.slow
def test_data_collection_reduced(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    out = run_example(
        "data_collection.py", "--sensors", "8", "--relays", "24",
        "--k", "6", "--time-limit", "60",
    )
    assert "$ + energy" in out
    assert (tmp_path / "figure1a_template.svg").exists()
    assert (tmp_path / "figure1b_topology.svg").exists()


@pytest.mark.slow
def test_localization_reduced(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    out = run_example(
        "localization.py", "--anchors", "40", "--points", "25", "--k", "15",
    )
    assert "$ + DSOD" in out
    assert (tmp_path / "figure1c_anchors.svg").exists()


@pytest.mark.slow
def test_kstar_tradeoff_reduced():
    out = run_example(
        "kstar_tradeoff.py", "--nodes", "25", "--devices", "6",
        "--full-time-limit", "60",
    )
    assert "automatic search picked K*" in out


def run_cli(*args: str, timeout: float = 600.0):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(SRC)] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    result = subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True, text=True, timeout=timeout, env=env,
        cwd=str(EXAMPLES.parent),
    )
    assert result.returncode == 0, result.stderr[-2000:] or result.stdout
    return result.stdout


@pytest.mark.parametrize("stem", ["multifloor", "urbangrid"])
def test_scenario_spec_lints(stem):
    out = run_cli(
        "lint", f"examples/specs/{stem}.spec",
        "--floorplan", f"examples/specs/{stem}.svg",
        "--sensors", "6", "--relays", "18",
    )
    assert "0 error(s)" in out


def test_urbangrid_spec_synthesizes():
    out = run_cli(
        "synthesize",
        "--spec", "examples/specs/urbangrid.spec",
        "--floorplan", "examples/specs/urbangrid.svg",
        "--sensors", "6", "--relays", "18",
    )
    assert "status:  optimal" in out
    assert "all requirements hold" in out


@pytest.mark.slow
def test_multifloor_spec_synthesizes():
    out = run_cli(
        "synthesize",
        "--spec", "examples/specs/multifloor.spec",
        "--floorplan", "examples/specs/multifloor.svg",
        "--sensors", "8", "--relays", "24",
    )
    assert "status:  optimal" in out
    assert "all requirements hold" in out
