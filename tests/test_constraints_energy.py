"""Tests for the energy/lifetime constraints (3a)-(3b)."""

import pytest

from repro.constraints import (
    build_energy,
    build_link_quality,
    build_mapping,
    lifetime_budget_ma_ms,
)
from repro.core import DataCollectionExplorer
from repro.encoding import ApproximatePathEncoder
from repro.library import default_catalog
from repro.milp import HighsSolver, Model
from repro.network import (
    LifetimeRequirement,
    LinkQualityRequirement,
    PowerConfig,
    RequirementSet,
    RouteRequirement,
    TdmaConfig,
    small_grid_template,
)
from repro.validation import node_charge_ma_ms, validate


@pytest.fixture()
def grid():
    return small_grid_template(nx=4, ny=3, spacing=10.0)


def make_requirements(grid, years=5.0):
    reqs = RequirementSet()
    for s in grid.sensor_ids:
        reqs.require_route(s, grid.sink_id, replicas=2, disjoint=True)
    reqs.link_quality = LinkQualityRequirement(min_snr_db=20.0)
    reqs.lifetime = LifetimeRequirement(years=years)
    return reqs


class TestBudget:
    def test_budget_formula(self):
        tdma = TdmaConfig(report_interval_s=30.0)
        power = PowerConfig(battery_mah=3000.0)
        budget = lifetime_budget_ma_ms(LifetimeRequirement(5.0), tdma, power)
        # battery mA*ms divided by reports in 5 years.
        reports = 5 * 365.25 * 24 * 3600 / 30.0
        assert budget == pytest.approx(power.battery_ma_ms / reports)

    def test_longer_lifetime_smaller_budget(self):
        tdma, power = TdmaConfig(), PowerConfig()
        b5 = lifetime_budget_ma_ms(LifetimeRequirement(5.0), tdma, power)
        b10 = lifetime_budget_ma_ms(LifetimeRequirement(10.0), tdma, power)
        assert b10 == pytest.approx(b5 / 2.0)


class TestEnergyModel:
    def test_milp_charge_upper_bounds_exact_charge(self, grid):
        """The MILP's (PWL, big-M) charge must dominate the validator's
        exact nonlinear recomputation on the decoded design."""
        reqs = make_requirements(grid)
        explorer = DataCollectionExplorer(
            grid.template, default_catalog(), reqs,
            encoder=ApproximatePathEncoder(k_star=6),
        )
        built = explorer.build("energy")
        solution = HighsSolver().solve(built.model)
        assert solution.status.has_solution
        from repro.core.explorer import decode_architecture

        arch = decode_architecture(
            solution, built, grid.template, default_catalog()
        )
        for node_id, charge_expr in built.energy.node_charge.items():
            if node_id not in arch.sizing:
                continue
            milp_charge = solution.value(charge_expr)
            exact = node_charge_ma_ms(arch, reqs, node_id)
            assert milp_charge >= exact * (1 - 1e-5) - 1e-3

    def test_lifetime_requirement_validated(self, grid):
        reqs = make_requirements(grid, years=5.0)
        result = DataCollectionExplorer(
            grid.template, default_catalog(), reqs
        ).solve("cost")
        assert result.feasible
        report = validate(result.architecture, reqs)
        assert report.ok, report.violations
        assert report.min_lifetime_years >= 5.0

    def test_stricter_lifetime_costs_more(self, grid):
        cheap = DataCollectionExplorer(
            grid.template, default_catalog(), make_requirements(grid, 2.0)
        ).solve("cost")
        strict = DataCollectionExplorer(
            grid.template, default_catalog(), make_requirements(grid, 10.0)
        ).solve("cost")
        assert cheap.feasible and strict.feasible
        assert (
            strict.architecture.dollar_cost
            >= cheap.architecture.dollar_cost - 1e-9
        )

    def test_impossible_lifetime_infeasible(self, grid):
        # Even an idle low-power node cannot last 200 years on 2xAA.
        reqs = make_requirements(grid, years=200.0)
        result = DataCollectionExplorer(
            grid.template, default_catalog(), reqs
        ).solve("cost")
        assert not result.feasible

    def test_energy_objective_prefers_low_power_parts(self, grid):
        reqs = make_requirements(grid)
        explorer = DataCollectionExplorer(
            grid.template, default_catalog(), reqs
        )
        cost_opt = explorer.solve("cost")
        energy_opt = explorer.solve("energy")
        assert cost_opt.feasible and energy_opt.feasible
        report_cost = validate(cost_opt.architecture, reqs)
        report_energy = validate(energy_opt.architecture, reqs)
        assert (report_energy.total_charge_ma_ms
                <= report_cost.total_charge_ma_ms + 1e-6)
        assert (energy_opt.architecture.dollar_cost
                >= cost_opt.architecture.dollar_cost - 1e-9)

    def test_sink_exempt_from_lifetime(self, grid):
        reqs = make_requirements(grid)
        result = DataCollectionExplorer(
            grid.template, default_catalog(), reqs
        ).solve("cost")
        report = validate(result.architecture, reqs)
        assert grid.sink_id not in report.lifetimes_years

    def test_slot_demand_counted_per_route_use(self, grid):
        """Node slot counts in the MILP equal the decoded route uses."""
        reqs = make_requirements(grid)
        explorer = DataCollectionExplorer(
            grid.template, default_catalog(), reqs,
        )
        built = explorer.build("cost")
        solution = HighsSolver().solve(built.model)
        from repro.core.explorer import decode_architecture

        arch = decode_architecture(
            solution, built, grid.template, default_catalog()
        )
        for node_id, k_expr in built.energy.slot_count.items():
            if node_id not in arch.sizing:
                continue
            expected = len(arch.tx_uses(node_id)) + len(arch.rx_uses(node_id))
            assert solution.value(k_expr) == pytest.approx(expected)
