"""Property-based tests of the expression algebra against direct evaluation.

Random expression trees built from +, -, and scalar * must evaluate, under
random assignments, to the same value as the equivalent plain-Python
computation — the algebra layer may never silently drop or double terms.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.milp import LinExpr, Model, lin_sum
from repro.milp.solution import Solution, SolveStatus

N_VARS = 5
scalars = st.floats(-5.0, 5.0, allow_nan=False)
assignments = st.lists(
    st.floats(-3.0, 3.0, allow_nan=False), min_size=N_VARS, max_size=N_VARS,
)


def make_model():
    m = Model()
    xs = [m.continuous(f"x{i}", -10, 10) for i in range(N_VARS)]
    return m, xs


def evaluate(expr: LinExpr, values: list[float]) -> float:
    total = expr.constant
    for idx, coeff in expr.coeffs.items():
        total += coeff * values[idx]
    return total


@st.composite
def expr_programs(draw):
    """A random sequence of algebra operations as (op, operand) steps."""
    steps = draw(
        st.lists(
            st.tuples(
                st.sampled_from(["add_var", "sub_var", "add_const", "scale",
                                 "neg", "radd_const", "rsub_const"]),
                st.integers(0, N_VARS - 1),
                scalars,
            ),
            min_size=1, max_size=12,
        )
    )
    return steps


def run_program(steps, xs):
    """Build (expr, reference_fn) by applying the steps."""
    expr = LinExpr()
    ops = []
    for op, var_idx, value in steps:
        if op == "add_var":
            expr = expr + xs[var_idx]
            ops.append(lambda vals, i=var_idx: vals[i])
        elif op == "sub_var":
            expr = expr - xs[var_idx]
            ops.append(lambda vals, i=var_idx: -vals[i])
        elif op == "add_const":
            expr = expr + value
            ops.append(lambda vals, c=value: c)
        elif op == "radd_const":
            expr = value + expr
            ops.append(lambda vals, c=value: c)
        elif op == "scale":
            # Scaling applies to everything accumulated so far.
            expr = expr * value
            prior = ops
            ops = [lambda vals, fs=tuple(prior), c=value: c * sum(
                f(vals) for f in fs
            )]
        elif op == "neg":
            expr = -expr
            prior = ops
            ops = [lambda vals, fs=tuple(prior): -sum(f(vals) for f in fs)]
        elif op == "rsub_const":
            expr = value - expr
            prior = ops
            ops = [lambda vals, fs=tuple(prior), c=value: c - sum(
                f(vals) for f in fs
            )]
    return expr, (lambda vals: sum(f(vals) for f in ops))


@settings(max_examples=200, deadline=None)
@given(expr_programs(), assignments)
def test_algebra_matches_reference(steps, values):
    _, xs = make_model()
    expr, reference = run_program(steps, xs)
    assert evaluate(expr, values) == pytest.approx(
        reference(values), rel=1e-9, abs=1e-9
    )


@settings(max_examples=100, deadline=None)
@given(expr_programs(), assignments)
def test_solution_value_matches_manual_evaluation(steps, values):
    _, xs = make_model()
    expr, _ = run_program(steps, xs)
    solution = Solution(
        status=SolveStatus.OPTIMAL, objective=0.0,
        x=np.array(values, dtype=float),
    )
    assert solution.value(expr) == pytest.approx(
        evaluate(expr, values), rel=1e-9, abs=1e-9
    )


@settings(max_examples=100, deadline=None)
@given(
    st.lists(st.tuples(st.integers(0, N_VARS - 1), scalars),
             min_size=0, max_size=20)
)
def test_lin_sum_equals_sequential_addition(terms):
    _, xs = make_model()
    sequential = LinExpr()
    items = []
    for var_idx, coeff in terms:
        term = coeff * xs[var_idx]
        sequential = sequential + term
        items.append(term)
    fast = lin_sum(items)
    values = list(np.linspace(-2, 2, N_VARS))
    assert evaluate(fast, values) == pytest.approx(
        evaluate(sequential, values), rel=1e-9, abs=1e-9
    )
