"""The verification sweep: verdicts, checkpoints, kill/resume.

Verdict correctness is pinned on a hand-built design (so the expected
survivors are known by construction), and the checkpoint path is driven
through the ``failures.drop`` fault site — the same mechanism CI uses to
kill a sweep mid-flight and assert the resume replays completed
patterns without re-verifying them.
"""

import pytest

from repro.failures import (
    FailurePattern,
    PatternResult,
    SurvivabilityReport,
    k_link_patterns,
    sweep_checkpoint,
    verify_pattern,
    verify_patterns,
)
from repro.library import default_catalog
from repro.network import (
    Architecture,
    LinkQualityRequirement,
    RequirementSet,
    Route,
)
from repro.resilience import CheckpointError, FaultError, injected_faults


@pytest.fixture()
def design(grid_instance):
    """Two link-disjoint replicas of one pair, both via relay 5."""
    arch = Architecture(template=grid_instance.template,
                        library=default_catalog())
    s = grid_instance.sensor_ids[0]
    d = grid_instance.sink_id
    arch.routes = [
        Route(s, d, 0, (s, 5, d)),
        Route(s, d, 1, (s, 1, 5, 6, d)),
    ]
    arch.active_edges = {e for r in arch.routes for e in r.edges}
    arch.sizing = {
        node: "relay-std"
        if grid_instance.template.node(node).role == "relay"
        else ("sensor-std"
              if grid_instance.template.node(node).role == "sensor"
              else "sink-std")
        for route in arch.routes for node in route.nodes
    }
    reqs = RequirementSet()
    reqs.require_route(s, d, replicas=2, disjoint=True)
    return arch, reqs, s, d


class TestVerifyPattern:
    def test_shared_relay_failure_disconnects(self, design):
        arch, reqs, s, d = design
        result = verify_pattern(arch, reqs, FailurePattern(
            "node1", "5", nodes=frozenset({5}),
        ))
        assert not result.survived
        assert result.coverage == 0.0
        assert result.disconnected_pairs == [(s, d)]
        assert any("loses node 5" in v for v in result.violations)

    def test_single_link_failure_survives(self, design):
        arch, reqs, s, _ = design
        result = verify_pattern(arch, reqs, FailurePattern(
            "link1", "s-5", links=frozenset({(s, 5), (5, s)}),
        ))
        assert result.survived
        assert result.coverage == 1.0
        # Notes about the dead replica of a still-served pair are noise.
        assert result.violations == []

    def test_link_quality_margins_re_checked(self, design):
        arch, reqs, _, _ = design
        reqs.link_quality = LinkQualityRequirement(min_snr_db=1000.0)
        # The pattern touches nothing in the design; the surviving
        # replicas still have to clear the (impossible) margin.
        result = verify_pattern(arch, reqs, FailurePattern(
            "node1", "11", nodes=frozenset({11}),
        ))
        assert not result.survived
        assert any("SNR" in v for v in result.violations)

    def test_unsized_node_is_a_violation(self, design):
        arch, reqs, _, _ = design
        reqs.link_quality = LinkQualityRequirement(min_snr_db=1.0)
        del arch.sizing[5]  # shared relay: both replicas hit the check
        result = verify_pattern(arch, reqs, FailurePattern(
            "node1", "11", nodes=frozenset({11}),
        ))
        assert not result.survived
        assert any("unsized" in v for v in result.violations)

    def test_unrealized_pair_counts_disconnected(self, design):
        arch, reqs, _, _ = design
        reqs.require_route(8, 7, replicas=1)
        result = verify_pattern(arch, reqs, FailurePattern(
            "node1", "11", nodes=frozenset({11}),
        ))
        assert not result.survived
        assert (8, 7) in result.disconnected_pairs
        assert result.coverage == 0.5

    def test_result_round_trips(self, design):
        arch, reqs, _, _ = design
        result = verify_pattern(arch, reqs, FailurePattern(
            "node1", "5", nodes=frozenset({5}),
        ))
        clone = PatternResult.from_dict(result.to_dict())
        assert clone.pattern_id == result.pattern_id
        assert clone.survived == result.survived
        assert clone.disconnected_pairs == result.disconnected_pairs


class TestSweep:
    def test_sweep_orders_results_like_input(self, design):
        arch, reqs, _, _ = design
        patterns = k_link_patterns(arch.template, 1)
        report = verify_patterns(arch, reqs, patterns, parallel=2)
        assert [r.pattern_id for r in report.results] == \
            [p.pattern_id for p in patterns]
        assert report.survived_all  # disjoint replicas beat any 1 link
        assert report.score == 1.0

    def test_aggregates(self, design):
        arch, reqs, s, d = design
        patterns = [
            FailurePattern("node1", "5", nodes=frozenset({5})),
            FailurePattern("node1", "11", nodes=frozenset({11})),
        ]
        report = verify_patterns(arch, reqs, patterns)
        assert not report.survived_all
        assert report.worst_coverage == 0.0
        assert report.mean_coverage == 0.5
        assert [r.family for r in report.critical_patterns] == ["node1"]
        payload = report.to_dict()
        assert payload["patterns"] == 2
        assert payload["violated"] == 1
        restored = SurvivabilityReport.from_dict(payload)
        assert restored.critical_patterns[0].pattern_id == \
            report.critical_patterns[0].pattern_id

    def test_resume_replays_completed_patterns(self, design, tmp_path):
        arch, reqs, _, _ = design
        patterns = k_link_patterns(arch.template, 1)
        ckpt = tmp_path / "sweep.ckpt"
        first = verify_patterns(arch, reqs, patterns,
                                checkpoint=ckpt, problem="fp")
        assert first.restored_count == 0
        again = verify_patterns(arch, reqs, patterns, checkpoint=ckpt,
                                resume=True, problem="fp")
        assert again.restored_count == len(patterns)
        assert again.total_seconds == 0.0
        assert [r.survived for r in again.results] == \
            [r.survived for r in first.results]

    def test_stage_namespaces_records(self, design, tmp_path):
        arch, reqs, _, _ = design
        patterns = k_link_patterns(arch.template, 1)
        ckpt = tmp_path / "sweep.ckpt"
        verify_patterns(arch, reqs, patterns, checkpoint=ckpt, stage=1)
        other = verify_patterns(arch, reqs, patterns, checkpoint=ckpt,
                                resume=True, stage=2)
        assert other.restored_count == 0
        same = verify_patterns(arch, reqs, patterns, checkpoint=ckpt,
                               resume=True, stage=1)
        assert same.restored_count == len(patterns)

    def test_checkpoint_refuses_other_pattern_set(self, design, tmp_path):
        arch, reqs, _, _ = design
        patterns = k_link_patterns(arch.template, 1)
        ckpt = tmp_path / "sweep.ckpt"
        verify_patterns(arch, reqs, patterns, checkpoint=ckpt)
        with pytest.raises(CheckpointError):
            verify_patterns(arch, reqs, patterns[:3], checkpoint=ckpt,
                            resume=True)

    def test_injected_drop_kills_after_durable_record(
        self, design, tmp_path
    ):
        arch, reqs, _, _ = design
        patterns = k_link_patterns(arch.template, 1)
        ckpt = tmp_path / "sweep.ckpt"
        with injected_faults({"failures.drop": 1}):
            with pytest.raises(FaultError):
                verify_patterns(arch, reqs, patterns, checkpoint=ckpt)
        # The kill landed after the record was durable.
        store = sweep_checkpoint(ckpt, patterns)
        assert len(store.load()) == 1
        report = verify_patterns(arch, reqs, patterns, checkpoint=ckpt,
                                 resume=True)
        assert report.restored_count == 1
        assert len(report.results) == len(patterns)
        assert report.survived_all


class TestShim:
    def test_validation_resiliency_reexports(self):
        from repro.failures.resiliency import (
            analyze_resiliency as canonical,
        )
        from repro.validation.resiliency import analyze_resiliency
        assert analyze_resiliency is canonical

    def test_single_fault_impacts_are_sorted(self, design):
        arch, _, s, d = design
        arch.routes = [Route(s, d, 0, (s, 5, d)),
                       Route(d, s, 0, (d, 5, s))]
        arch.active_edges = {e for r in arch.routes for e in r.edges}
        from repro.validation import analyze_resiliency
        report = analyze_resiliency(arch)
        pairs = report.node_faults[5].disconnected_pairs
        assert pairs == sorted(pairs)
        assert len(pairs) == 2
