"""CSR graph kernels: structure, caching, and parity with the reference.

The contract under test: on graphs with distinct path costs, the
array-backed kernels (:mod:`repro.graph.kernels`) return *exactly* the
same paths and (to float tolerance) the same costs as the pure-Python
reference implementations.  The property suites below use continuous
random weights so cost ties are measure-zero and exact path-sequence
comparison is meaningful.
"""

import random

import numpy as np
import pytest

from repro.graph import (
    BACKEND_ENV_VAR,
    GRAPH_BACKENDS,
    DiGraph,
    NoPathError,
    k_shortest_paths,
    resolve_backend,
    shortest_path,
)
from repro.graph.dijkstra import shortest_path as ref_shortest_path
from repro.graph.kernels import (
    CSRGraph,
    csr_k_shortest_paths,
    csr_of,
    csr_shortest_path,
)
from repro.graph.yen import k_shortest_paths as ref_k_shortest_paths


def diamond():
    """s -> {a, b} -> t with a cheap top route."""
    g = DiGraph()
    g.add_edge("s", "a", 1.0)
    g.add_edge("a", "t", 1.0)
    g.add_edge("s", "b", 2.0)
    g.add_edge("b", "t", 2.0)
    return g


def random_graph(seed: int, n_lo: int = 4, n_hi: int = 16) -> tuple[DiGraph, int]:
    """A random digraph with continuous weights (ties measure-zero)."""
    rng = random.Random(seed)
    n = rng.randint(n_lo, n_hi)
    g = DiGraph()
    for i in range(n):
        g.add_node(i)
    for u in range(n):
        for v in range(n):
            if u != v and rng.random() < 0.35:
                g.add_edge(u, v, rng.random() * 10.0)
    return g, n


class TestCSRStructure:
    def test_interning_follows_insertion_order(self):
        g = diamond()
        csr = CSRGraph.from_digraph(g)
        assert csr.nodes == ["s", "a", "t", "b"]
        assert csr.index == {"s": 0, "a": 1, "t": 2, "b": 3}
        assert csr.node_count == 4
        assert csr.edge_count == 4

    def test_rows_partition_edges(self):
        g = diamond()
        csr = CSRGraph.from_digraph(g)
        edges = set()
        for u in range(csr.node_count):
            for slot in range(csr.indptr[u], csr.indptr[u + 1]):
                v = int(csr.indices[slot])
                edges.add((csr.nodes[u], csr.nodes[v], float(csr.weights[slot])))
                assert csr.edge_slot[(u, v)] == slot
        assert edges == set(g.edges())

    def test_masked_edges_are_compiled_with_true_weights(self):
        g = diamond()
        g.mask_edge("s", "a")
        csr = CSRGraph.from_digraph(g)
        slot = csr.edge_slot[(csr.index["s"], csr.index["a"])]
        assert csr.weights[slot] == 1.0

    def test_node_mask_ignores_absent_nodes(self):
        csr = CSRGraph.from_digraph(diamond())
        assert csr.node_mask([]) is None
        assert csr.node_mask(["nope"]) is None
        mask = csr.node_mask(["a", "nope"])
        assert mask is not None and mask[csr.index["a"]]
        assert mask.sum() == 1

    def test_edge_mask_ignores_absent_edges(self):
        csr = CSRGraph.from_digraph(diamond())
        assert csr.edge_mask(None, frozenset()) is None
        assert csr.edge_mask({("t", "s")}) is None  # not an edge
        mask = csr.edge_mask({("s", "a"), ("t", "s")})
        assert mask is not None and mask.sum() == 1


class TestCSRCache:
    def test_repeated_compilation_is_cached(self):
        g = diamond()
        assert csr_of(g) is csr_of(g)

    def test_masking_does_not_invalidate(self):
        g = diamond()
        before = csr_of(g)
        g.mask_edge("s", "a")
        assert csr_of(g) is before
        g.clear_masks()
        assert csr_of(g) is before

    def test_structural_mutation_invalidates(self):
        g = diamond()
        before = csr_of(g)
        g.add_edge("a", "b", 9.0)
        assert csr_of(g) is not before

    def test_weight_change_invalidates(self):
        g = diamond()
        before = csr_of(g)
        g.set_weight("s", "a", 5.0)
        after = csr_of(g)
        assert after is not before
        slot = after.edge_slot[(after.index["s"], after.index["a"])]
        assert after.weights[slot] == 5.0

    def test_copy_shares_the_compiled_view(self):
        g = diamond()
        view = csr_of(g)
        assert csr_of(g.copy()) is view

    def test_copy_diverges_after_mutation(self):
        g = diamond()
        view = csr_of(g)
        h = g.copy()
        h.add_edge("a", "b", 1.0)
        assert csr_of(h) is not view
        assert csr_of(g) is view  # the original is untouched


class TestCSRDijkstraBehaviour:
    """The behaviour pins of tests/test_graph_dijkstra.py, on the kernel."""

    def test_min_path_on_diamond(self):
        assert csr_shortest_path(diamond(), "s", "t") == (["s", "a", "t"], 2.0)

    def test_source_equals_target(self):
        assert csr_shortest_path(diamond(), "s", "s") == (["s"], 0.0)

    def test_missing_endpoints_raise_keyerror(self):
        with pytest.raises(KeyError):
            csr_shortest_path(diamond(), "nope", "t")
        with pytest.raises(KeyError):
            csr_shortest_path(diamond(), "s", "nope")

    def test_banned_endpoint_raises(self):
        with pytest.raises(NoPathError):
            csr_shortest_path(diamond(), "s", "t", banned_nodes={"t"})

    def test_banned_node_reroutes(self):
        path, cost = csr_shortest_path(diamond(), "s", "t", banned_nodes={"a"})
        assert path == ["s", "b", "t"] and cost == 4.0

    def test_banned_edge_reroutes(self):
        path, _ = csr_shortest_path(
            diamond(), "s", "t", banned_edges={("s", "a")}
        )
        assert path == ["s", "b", "t"]

    def test_masked_edges_ignored(self):
        g = diamond()
        g.mask_edge("a", "t")
        path, _ = csr_shortest_path(g, "s", "t")
        assert path == ["s", "b", "t"]

    def test_unreachable_raises(self):
        g = diamond()
        g.add_node("island")
        with pytest.raises(NoPathError):
            csr_shortest_path(g, "s", "island")

    def test_zero_weight_edges(self):
        g = DiGraph()
        g.add_edge("s", "a", 0.0)
        g.add_edge("a", "t", 0.0)
        assert csr_shortest_path(g, "s", "t") == (["s", "a", "t"], 0.0)


class TestCSRYenBehaviour:
    def test_k_must_be_positive(self):
        with pytest.raises(ValueError):
            csr_k_shortest_paths(diamond(), "s", "t", 0)

    def test_unreachable_returns_empty(self):
        g = diamond()
        g.add_node("island")
        assert csr_k_shortest_paths(g, "s", "island", 3) == []

    def test_source_equals_target(self):
        assert csr_k_shortest_paths(diamond(), "s", "s", 3) == [(["s"], 0.0)]

    def test_costs_nondecreasing_and_paths_simple(self):
        g, n = random_graph(99, 8, 12)
        paths = csr_k_shortest_paths(g, 0, n - 1, 12)
        costs = [c for _, c in paths]
        assert costs == sorted(costs)
        keys = {tuple(p) for p, _ in paths}
        assert len(keys) == len(paths)
        for p, _ in paths:
            assert len(set(p)) == len(p)

    def test_masked_edges_respected(self):
        g = diamond()
        g.mask_edge("s", "a")
        paths = csr_k_shortest_paths(g, "s", "t", 4)
        assert [p for p, _ in paths] == [["s", "b", "t"]]


class TestBackendDispatch:
    def test_backend_names(self):
        assert GRAPH_BACKENDS == ("auto", "csr", "reference")

    def test_auto_resolves_to_csr_with_numpy(self):
        assert resolve_backend("auto") == "csr"
        assert resolve_backend("csr") == "csr"
        assert resolve_backend("reference") == "reference"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            resolve_backend("gpu")
        with pytest.raises(ValueError):
            shortest_path(diamond(), "s", "t", backend="gpu")

    def test_env_var_consulted(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "reference")
        assert resolve_backend() == "reference"
        monkeypatch.setenv(BACKEND_ENV_VAR, "csr")
        assert resolve_backend() == "csr"

    def test_explicit_argument_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "reference")
        assert resolve_backend("csr") == "csr"

    def test_reference_backend_is_the_reference_functions(self):
        g = diamond()
        assert shortest_path(g, "s", "t", backend="reference") == \
            ref_shortest_path(g, "s", "t")
        assert k_shortest_paths(g, "s", "t", 4, backend="reference") == \
            ref_k_shortest_paths(g, "s", "t", 4)

    def test_csr_backend_is_the_kernel(self):
        g = diamond()
        assert shortest_path(g, "s", "t", backend="csr") == \
            csr_shortest_path(g, "s", "t")


class TestDijkstraParity:
    """CSR vs reference on random graphs: identical outcomes."""

    @pytest.mark.parametrize("seed", range(40))
    def test_plain_queries_agree(self, seed):
        g, n = random_graph(seed)
        for target in (n - 1, n // 2):
            try:
                ref = ref_shortest_path(g, 0, target)
            except NoPathError:
                with pytest.raises(NoPathError):
                    csr_shortest_path(g, 0, target)
                continue
            got = csr_shortest_path(g, 0, target)
            assert got[0] == ref[0]
            assert got[1] == pytest.approx(ref[1], abs=1e-9)

    @pytest.mark.parametrize("seed", range(40))
    def test_banned_and_masked_queries_agree(self, seed):
        g, n = random_graph(seed, 6, 14)
        rng = random.Random(seed + 1000)
        edges = [(u, v) for u, v, _ in g.edges()]
        for u, v in rng.sample(edges, len(edges) // 5):
            g.mask_edge(u, v)
        banned_nodes = set(rng.sample(range(1, n - 1), min(2, n - 2)))
        banned_edges = set(rng.sample(edges, min(3, len(edges))))
        try:
            ref = ref_shortest_path(
                g, 0, n - 1, banned_nodes=banned_nodes, banned_edges=banned_edges
            )
        except NoPathError:
            with pytest.raises(NoPathError):
                csr_shortest_path(
                    g, 0, n - 1,
                    banned_nodes=banned_nodes, banned_edges=banned_edges,
                )
            return
        got = csr_shortest_path(
            g, 0, n - 1, banned_nodes=banned_nodes, banned_edges=banned_edges
        )
        assert got[0] == ref[0]
        assert got[1] == pytest.approx(ref[1], abs=1e-9)


class TestYenParity:
    """CSR Lawler-Yen vs reference Yen: identical path sets and order."""

    @pytest.mark.parametrize("seed", range(30))
    @pytest.mark.parametrize("k", [1, 4, 9])
    def test_path_sequences_agree(self, seed, k):
        g, n = random_graph(seed)
        ref = ref_k_shortest_paths(g, 0, n - 1, k)
        got = csr_k_shortest_paths(g, 0, n - 1, k)
        assert [p for p, _ in got] == [p for p, _ in ref]
        assert [c for _, c in got] == pytest.approx(
            [c for _, c in ref], abs=1e-9
        )

    @pytest.mark.parametrize("seed", range(15))
    def test_masked_graphs_agree(self, seed):
        g, n = random_graph(seed, 6, 14)
        rng = random.Random(seed + 2000)
        edges = [(u, v) for u, v, _ in g.edges()]
        for u, v in rng.sample(edges, len(edges) // 4):
            g.mask_edge(u, v)
        ref = ref_k_shortest_paths(g, 0, n - 1, 6)
        got = csr_k_shortest_paths(g, 0, n - 1, 6)
        assert [p for p, _ in got] == [p for p, _ in ref]

    def test_exhausts_like_the_reference(self):
        g = DiGraph()
        g.add_edge("s", "a", 1.0)
        g.add_edge("a", "t", 1.5)
        g.add_edge("s", "t", 3.1)
        ref = ref_k_shortest_paths(g, "s", "t", 50)
        got = csr_k_shortest_paths(g, "s", "t", 50)
        assert [p for p, _ in got] == [p for p, _ in ref]
        assert [c for _, c in got] == pytest.approx([c for _, c in ref])
        assert len(got) == 2


try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover
    HAVE_HYPOTHESIS = False


if HAVE_HYPOTHESIS:

    @st.composite
    def weighted_digraphs(draw):
        n = draw(st.integers(min_value=3, max_value=10))
        seed = draw(st.integers(min_value=0, max_value=2**31))
        rng = random.Random(seed)
        g = DiGraph()
        for i in range(n):
            g.add_node(i)
        for u in range(n):
            for v in range(n):
                if u != v and rng.random() < 0.4:
                    g.add_edge(u, v, rng.random() * 5.0)
        return g, n

    class TestHypothesisParity:
        @given(weighted_digraphs())
        @settings(max_examples=60, deadline=None)
        def test_dijkstra_matches_reference(self, graph_n):
            g, n = graph_n
            try:
                ref = ref_shortest_path(g, 0, n - 1)
            except NoPathError:
                with pytest.raises(NoPathError):
                    csr_shortest_path(g, 0, n - 1)
                return
            got = csr_shortest_path(g, 0, n - 1)
            assert got[0] == ref[0]
            assert got[1] == pytest.approx(ref[1], abs=1e-9)

        @given(weighted_digraphs(), st.integers(min_value=1, max_value=8))
        @settings(max_examples=40, deadline=None)
        def test_yen_matches_reference(self, graph_n, k):
            g, n = graph_n
            ref = ref_k_shortest_paths(g, 0, n - 1, k)
            got = csr_k_shortest_paths(g, 0, n - 1, k)
            assert [p for p, _ in got] == [p for p, _ in ref]
            assert [c for _, c in got] == pytest.approx(
                [c for _, c in ref], abs=1e-9
            )


class TestKernelScratchState:
    """The reused scratch masks must not leak between queries."""

    def test_repeated_yen_queries_are_stable(self):
        g, n = random_graph(5)
        first = csr_k_shortest_paths(g, 0, n - 1, 5)
        second = csr_k_shortest_paths(g, 0, n - 1, 5)
        assert first == second

    def test_yen_then_dijkstra_unaffected(self):
        g, n = random_graph(6)
        try:
            before = csr_shortest_path(g, 0, n - 1)
        except NoPathError:
            before = None
        csr_k_shortest_paths(g, 0, n - 1, 6)
        if before is None:
            with pytest.raises(NoPathError):
                csr_shortest_path(g, 0, n - 1)
        else:
            assert csr_shortest_path(g, 0, n - 1) == before

    def test_dispatcher_default_matches_forced_backends(self):
        g, n = random_graph(7)
        auto = k_shortest_paths(g, 0, n - 1, 5)
        forced = k_shortest_paths(g, 0, n - 1, 5, backend="csr")
        assert auto == forced
        assert np.isfinite([c for _, c in auto]).all()
