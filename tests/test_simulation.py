"""Tests for the event engine and the data-collection simulator."""

import pytest

from repro.core import DataCollectionExplorer
from repro.simulation import DataCollectionSimulator, EventQueue
from repro.validation import lifetime_years, node_charge_ma_ms


class TestEventQueue:
    def test_time_ordering(self):
        queue = EventQueue()
        fired = []
        queue.schedule(2.0, lambda: fired.append("b"))
        queue.schedule(1.0, lambda: fired.append("a"))
        queue.schedule(3.0, lambda: fired.append("c"))
        queue.run_until(10.0)
        assert fired == ["a", "b", "c"]

    def test_fifo_at_equal_times(self):
        queue = EventQueue()
        fired = []
        for tag in "abc":
            queue.schedule(1.0, lambda t=tag: fired.append(t))
        queue.run_until(1.0)
        assert fired == ["a", "b", "c"]

    def test_run_until_respects_horizon(self):
        queue = EventQueue()
        fired = []
        queue.schedule(5.0, lambda: fired.append("late"))
        executed = queue.run_until(4.0)
        assert executed == 0 and fired == []
        assert queue.pending == 1
        queue.run_until(5.0)
        assert fired == ["late"]

    def test_cancel(self):
        queue = EventQueue()
        fired = []
        handle = queue.schedule(1.0, lambda: fired.append("x"))
        queue.cancel(handle)
        queue.run_until(2.0)
        assert fired == []

    def test_events_scheduling_events(self):
        queue = EventQueue()
        fired = []

        def first():
            fired.append(queue.now)
            queue.schedule(1.0, lambda: fired.append(queue.now))

        queue.schedule(1.0, first)
        queue.run_until(5.0)
        assert fired == [1.0, 2.0]

    def test_past_scheduling_rejected(self):
        queue = EventQueue()
        with pytest.raises(ValueError):
            queue.schedule(-1.0, lambda: None)


@pytest.fixture(scope="module")
def synthesized(grid_instance, library):
    from repro.network import (
        LifetimeRequirement,
        LinkQualityRequirement,
        RequirementSet,
    )

    reqs = RequirementSet()
    for s in grid_instance.sensor_ids:
        reqs.require_route(s, grid_instance.sink_id, replicas=2,
                           disjoint=True)
    reqs.link_quality = LinkQualityRequirement(min_snr_db=20.0)
    reqs.lifetime = LifetimeRequirement(years=5.0)
    result = DataCollectionExplorer(
        grid_instance.template, library, reqs
    ).solve("cost")
    assert result.feasible
    return result.architecture, reqs


class TestDataCollectionSimulator:
    def test_high_snr_network_delivers_everything(self, synthesized):
        arch, reqs = synthesized
        sim = DataCollectionSimulator(arch, reqs, seed=0)
        result = sim.run(reports=50)
        assert result.packets_injected == 50 * len(arch.routes)
        assert result.delivery_ratio == 1.0
        assert result.packets_dropped == 0

    def test_deterministic_given_seed(self, synthesized):
        arch, reqs = synthesized
        a = DataCollectionSimulator(arch, reqs, seed=3).run(reports=20)
        b = DataCollectionSimulator(arch, reqs, seed=3).run(reports=20)
        assert a.packets_delivered == b.packets_delivered
        for node_id in a.ledgers:
            assert a.ledgers[node_id].charge_ma_ms == pytest.approx(
                b.ledgers[node_id].charge_ma_ms
            )

    def test_simulated_charge_matches_analytic(self, synthesized):
        """On a loss-free network the simulator's measured burn rate must
        equal the validator's analytic model almost exactly (ETX ~ 1)."""
        arch, reqs = synthesized
        sim = DataCollectionSimulator(arch, reqs, seed=1)
        result = sim.run(reports=100)
        for node_id in arch.used_nodes:
            if arch.template.node(node_id).role == "sink":
                continue
            analytic = node_charge_ma_ms(arch, reqs, node_id)
            simulated = result.charge_per_report(node_id)
            assert simulated == pytest.approx(analytic, rel=0.02)

    def test_lifetime_extrapolation_close_to_analytic(self, synthesized):
        arch, reqs = synthesized
        result = DataCollectionSimulator(arch, reqs, seed=1).run(reports=100)
        for node_id in arch.used_nodes:
            if arch.template.node(node_id).role == "sink":
                continue
            analytic = lifetime_years(arch, reqs, node_id)
            simulated = result.lifetime_years(node_id, reqs.power, reqs.tdma)
            assert simulated == pytest.approx(analytic, rel=0.05)

    def test_lossy_network_retransmits_or_drops(self, grid_instance, library):
        """Force marginal links by relaxing quality bounds: the simulator
        must observe retransmissions and/or drops."""
        from repro.network import LinkQualityRequirement, RequirementSet
        from repro.channel import snr_for_etx

        reqs = RequirementSet()
        for s in grid_instance.sensor_ids:
            reqs.require_route(s, grid_instance.sink_id, replicas=1,
                               disjoint=False)
        # Permit links right at ETX ~ 2 (PER ~ 0.5).
        marginal_snr = snr_for_etx(2.0, reqs.power.packet_bytes)
        reqs.link_quality = LinkQualityRequirement(min_snr_db=marginal_snr)
        result = DataCollectionExplorer(
            grid_instance.template, library, reqs
        ).solve("cost")
        assert result.feasible
        arch = result.architecture
        # Degrade every used link artificially to the marginal SNR by
        # simulating with a noise-raised link type is not possible here;
        # instead check the mechanism: per-link PER drives retries.
        sim = DataCollectionSimulator(arch, reqs, seed=5)
        sim._per_cache = {
            edge: 0.5 for route in arch.routes for edge in route.edges
        }
        outcome = sim.run(reports=50)
        total_retx = sum(
            ledger.retransmissions for ledger in outcome.ledgers.values()
        )
        assert total_retx > 0
        assert outcome.delivery_ratio < 1.0 or total_retx > 0
