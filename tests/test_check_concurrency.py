"""Tests for the repo-local concurrency lint (tools/check_concurrency.py).

The checker is a standalone script (not part of the ``repro`` package),
so it is imported by file path here.
"""

import importlib.util
import subprocess
import sys
import textwrap
from pathlib import Path

REPO_ROOT = Path(__file__).parent.parent
TOOL = REPO_ROOT / "tools" / "check_concurrency.py"

spec = importlib.util.spec_from_file_location("check_concurrency", TOOL)
check_concurrency = importlib.util.module_from_spec(spec)
sys.modules["check_concurrency"] = check_concurrency
spec.loader.exec_module(check_concurrency)


def lint(tmp_path: Path, source: str):
    file = tmp_path / "sample.py"
    file.write_text(textwrap.dedent(source))
    return check_concurrency.check_file(file)


class TestLockRule:
    def test_bare_acquire_is_flagged(self, tmp_path):
        findings = lint(tmp_path, """
            def f(lock):
                lock.acquire()
                work()
                lock.release()
        """)
        assert [f.rule for f in findings] == ["lock-no-with"]
        assert "lock.acquire()" in findings[0].message

    def test_with_statement_is_clean(self, tmp_path):
        assert not lint(tmp_path, """
            def f(lock):
                with lock:
                    work()
        """)

    def test_try_finally_release_is_clean(self, tmp_path):
        assert not lint(tmp_path, """
            def f(self):
                self._lock.acquire()
                try:
                    work()
                finally:
                    self._lock.release()
        """)

    def test_finally_releasing_a_different_lock_still_fires(self, tmp_path):
        findings = lint(tmp_path, """
            def f(a, b):
                a.acquire()
                try:
                    work()
                finally:
                    b.release()
        """)
        assert [f.rule for f in findings] == ["lock-no-with"]

    def test_suppression_comment_silences_the_line(self, tmp_path):
        assert not lint(tmp_path, """
            def f(lock):
                lock.acquire(timeout=1)  # concurrency: ok
        """)


class TestSpanRule:
    def test_unentered_span_is_flagged(self, tmp_path):
        findings = lint(tmp_path, """
            from repro.telemetry import span

            def f():
                span("phase.one", k=3)
        """)
        assert [f.rule for f in findings] == ["span-no-with"]

    def test_with_span_is_clean(self, tmp_path):
        assert not lint(tmp_path, """
            from repro.telemetry import span

            def f():
                with span("phase.one") as handle:
                    handle.set_attribute("k", 3)
        """)

    def test_enter_context_is_clean(self, tmp_path):
        assert not lint(tmp_path, """
            from repro.telemetry import span

            def f(stack):
                handle = stack.enter_context(span("phase.one"))
        """)

    def test_attribute_form_is_checked_too(self, tmp_path):
        findings = lint(tmp_path, """
            from repro import telemetry

            def f():
                telemetry.span("phase.two")
        """)
        assert [f.rule for f in findings] == ["span-no-with"]


class TestWholeRepo:
    def test_audited_trees_are_clean(self):
        """The trees CI lints must stay free of findings."""
        findings = check_concurrency.check_paths(
            list(check_concurrency.DEFAULT_PATHS)
        )
        assert findings == [], "\n".join(f.format() for f in findings)

    def test_cli_exit_codes(self, tmp_path):
        ok = subprocess.run(
            [sys.executable, str(TOOL)], capture_output=True, text=True
        )
        assert ok.returncode == 0, ok.stdout + ok.stderr
        bad = tmp_path / "bad.py"
        bad.write_text("def f(lock):\n    lock.acquire()\n")
        res = subprocess.run(
            [sys.executable, str(TOOL), str(bad)],
            capture_output=True, text=True,
        )
        assert res.returncode == 1
        assert "lock-no-with" in res.stdout
