"""Unit tests for the spec-level analyzer rules.

Each rule gets a positive case (the finding fires) and a negative case
(a healthy spec stays silent), on tiny hand-built templates.
"""

from repro.analysis import Severity, analyze_problem
from repro.analysis.rules import SpecContext, spec_rules
from repro.analysis.spec_rules import (
    HopBoundsRule,
    LibraryCoverageRule,
    QualityPrunedConnectivityRule,
    RouteConnectivityRule,
    RouteMinCutRule,
    UnitConsistencyRule,
    UnreachableNodesRule,
)
from repro.geometry.primitives import Point
from repro.library.catalog import Library, default_catalog
from repro.library.components import device
from repro.library.links import LinkType
from repro.network.requirements import (
    LinkQualityRequirement,
    ReachabilityRequirement,
    RequirementSet,
)
from repro.network.template import NetworkNode, Template


def chain_template(*roles: str, link_type: LinkType | None = None) -> Template:
    """A directed line ``0 -> 1 -> ... -> n-1`` with 40 dB per link."""
    nodes = [
        NetworkNode(i, Point(8.0 * i, 0.0), role, fixed=(role != "relay"))
        for i, role in enumerate(roles)
    ]
    kwargs = {} if link_type is None else {"link_type": link_type}
    template = Template(nodes, name="chain", **kwargs)
    for i in range(len(roles) - 1):
        template.set_link(i, i + 1, 40.0)
    return template


def ctx_for(
    template: Template,
    requirements: RequirementSet | ReachabilityRequirement | None = None,
    library: Library | None = None,
) -> SpecContext:
    return SpecContext.build(template, requirements, library)


class TestRouteConnectivity:
    def test_fires_on_reversed_route(self):
        template = chain_template("sensor", "relay", "sink")
        reqs = RequirementSet()
        reqs.require_route(2, 0)  # nothing leaves the sink
        finds = list(RouteConnectivityRule().check(ctx_for(template, reqs)))
        assert len(finds) == 1
        assert finds[0].severity is Severity.ERROR
        assert finds[0].data["route"] == 0

    def test_fires_on_out_of_range_endpoint(self):
        template = chain_template("sensor", "sink")
        reqs = RequirementSet()
        reqs.require_route(0, 99)
        finds = list(RouteConnectivityRule().check(ctx_for(template, reqs)))
        assert len(finds) == 1
        assert "out of range" in finds[0].message

    def test_silent_on_connected_route(self):
        template = chain_template("sensor", "relay", "sink")
        reqs = RequirementSet()
        reqs.require_route(0, 2)
        assert not list(RouteConnectivityRule().check(ctx_for(template, reqs)))


class TestRouteMinCut:
    def test_fires_when_replicas_exceed_cut(self):
        template = chain_template("sensor", "relay", "sink")
        reqs = RequirementSet()
        reqs.require_route(0, 2, replicas=2, disjoint=True)
        finds = list(RouteMinCutRule().check(ctx_for(template, reqs)))
        assert len(finds) == 1
        assert finds[0].data["min_cut"] == 1

    def test_silent_with_enough_disjoint_paths(self):
        template = chain_template("sensor", "relay", "sink")
        template.set_link(0, 2, 40.0)  # direct sensor->sink shortcut
        reqs = RequirementSet()
        reqs.require_route(0, 2, replicas=2, disjoint=True)
        assert not list(RouteMinCutRule().check(ctx_for(template, reqs)))

    def test_silent_without_disjointness(self):
        template = chain_template("sensor", "relay", "sink")
        reqs = RequirementSet()
        reqs.require_route(0, 2, replicas=2, disjoint=False)
        assert not list(RouteMinCutRule().check(ctx_for(template, reqs)))


class TestHopBounds:
    def test_min_hops_beyond_longest_simple_path(self):
        template = chain_template("sensor", "relay", "sink")
        reqs = RequirementSet()
        reqs.require_route(0, 2, min_hops=10)
        finds = list(HopBoundsRule().check(ctx_for(template, reqs)))
        assert len(finds) == 1
        assert "min_hops=10" in finds[0].message

    def test_max_hops_below_shortest_route(self):
        template = chain_template("sensor", "relay", "sink")
        reqs = RequirementSet()
        reqs.require_route(0, 2, max_hops=1)
        finds = list(HopBoundsRule().check(ctx_for(template, reqs)))
        assert len(finds) == 1
        assert finds[0].data["shortest"] == 2

    def test_silent_on_achievable_bounds(self):
        template = chain_template("sensor", "relay", "sink")
        reqs = RequirementSet()
        reqs.require_route(0, 2, min_hops=1, max_hops=2)
        assert not list(HopBoundsRule().check(ctx_for(template, reqs)))


class TestUnreachableNodes:
    def test_fires_on_stranded_candidate(self):
        template = chain_template("sensor", "relay", "sink", "relay")
        # node 3 is a relay candidate with no link onto the 0->2 corridor
        reqs = RequirementSet()
        reqs.require_route(0, 2)
        finds = list(UnreachableNodesRule().check(ctx_for(template, reqs)))
        assert len(finds) == 1
        assert finds[0].severity is Severity.WARNING
        assert finds[0].data["nodes"] == [3]

    def test_silent_when_all_candidates_serve_a_route(self):
        template = chain_template("sensor", "relay", "sink")
        reqs = RequirementSet()
        reqs.require_route(0, 2)
        assert not list(UnreachableNodesRule().check(ctx_for(template, reqs)))


class TestLibraryCoverage:
    def test_fixed_role_without_device_is_error(self):
        template = chain_template("sensor", "sink")
        lib = Library(devices=[device("s", ("sensor",), cost=10.0)])
        finds = list(LibraryCoverageRule().check(ctx_for(template, None, lib)))
        assert len(finds) == 1
        assert finds[0].severity is Severity.ERROR
        assert finds[0].data["role"] == "sink"

    def test_optional_role_without_device_is_warning(self):
        template = chain_template("sensor", "relay", "sink")
        lib = Library(devices=[
            device("s", ("sensor",), cost=10.0),
            device("b", ("sink",), cost=50.0),
        ])
        finds = list(LibraryCoverageRule().check(ctx_for(template, None, lib)))
        assert len(finds) == 1
        assert finds[0].severity is Severity.WARNING
        assert finds[0].data["role"] == "relay"

    def test_missing_anchor_role_for_reachability(self):
        template = chain_template("sensor", "sink")
        reach = ReachabilityRequirement(
            test_points=(Point(0.0, 0.0),), min_anchors=1, min_rss_dbm=-80.0
        )
        lib = Library(devices=[
            device("s", ("sensor",), cost=10.0),
            device("b", ("sink",), cost=50.0),
        ])
        finds = list(
            LibraryCoverageRule().check(ctx_for(template, reach, lib))
        )
        assert len(finds) == 1
        assert "anchor" in finds[0].message

    def test_silent_on_full_coverage(self):
        template = chain_template("sensor", "relay", "sink")
        finds = list(LibraryCoverageRule().check(
            ctx_for(template, None, default_catalog())
        ))
        assert not finds


class TestUnitConsistency:
    def test_positive_rss_floor_fires(self):
        template = chain_template("sensor", "sink")
        reqs = RequirementSet()
        reqs.link_quality = LinkQualityRequirement(min_rss_dbm=10.0)
        finds = list(UnitConsistencyRule().check(ctx_for(template, reqs)))
        assert len(finds) == 1
        assert "positive" in finds[0].message

    def test_sub_decibel_snr_fires(self):
        template = chain_template("sensor", "sink")
        reqs = RequirementSet()
        reqs.link_quality = LinkQualityRequirement(min_snr_db=0.5)
        finds = list(UnitConsistencyRule().check(ctx_for(template, reqs)))
        assert len(finds) == 1
        assert "linear ratio" in finds[0].message

    def test_non_negative_noise_floor_fires(self):
        lt = LinkType(name="weird", noise_dbm=3.0)
        template = chain_template("sensor", "sink", link_type=lt)
        finds = list(UnitConsistencyRule().check(ctx_for(template)))
        assert len(finds) == 1
        assert "noise floor" in finds[0].message

    def test_silent_on_plausible_numbers(self):
        template = chain_template("sensor", "sink")
        reqs = RequirementSet()
        reqs.link_quality = LinkQualityRequirement(
            min_rss_dbm=-80.0, min_snr_db=20.0
        )
        assert not list(UnitConsistencyRule().check(ctx_for(template, reqs)))


class TestQualityPrunedConnectivity:
    @staticmethod
    def _library() -> Library:
        # effective TX 0 dBm, RX gain 0 dBi: max tolerable path loss is
        # exactly -threshold.
        return Library(devices=[device("d", ("sensor", "relay", "sink"),
                                       cost=1.0)])

    def test_fires_when_bound_prunes_the_route(self):
        template = chain_template("sensor", "relay", "sink")  # 40 dB links
        reqs = RequirementSet()
        reqs.require_route(0, 2)
        reqs.link_quality = LinkQualityRequirement(min_rss_dbm=-30.0)
        finds = list(QualityPrunedConnectivityRule().check(
            ctx_for(template, reqs, self._library())
        ))
        assert len(finds) == 1
        assert finds[0].severity is Severity.WARNING
        assert finds[0].data["max_path_loss_db"] == 30.0

    def test_silent_when_links_survive(self):
        template = chain_template("sensor", "relay", "sink")
        reqs = RequirementSet()
        reqs.require_route(0, 2)
        reqs.link_quality = LinkQualityRequirement(min_rss_dbm=-50.0)
        assert not list(QualityPrunedConnectivityRule().check(
            ctx_for(template, reqs, self._library())
        ))


class TestAnalyzeProblem:
    def test_registry_has_every_rule(self):
        ids = {rule.rule_id for rule in spec_rules()}
        assert {
            "spec.route-connectivity", "spec.route-min-cut",
            "spec.hop-bounds", "spec.unreachable-nodes",
            "spec.library-coverage", "spec.unit-consistency",
            "spec.quality-pruned-connectivity",
        } <= ids

    def test_healthy_grid_spec_is_clean(self, grid_instance,
                                        grid_requirements, library):
        report = analyze_problem(
            grid_instance.template, grid_requirements, library
        )
        assert report.ok
        assert not report.warnings

    def test_doomed_spec_aggregates_multiple_rules(self):
        template = chain_template("sensor", "relay", "sink")
        reqs = RequirementSet()
        reqs.require_route(2, 0)                      # disconnected
        reqs.require_route(0, 2, replicas=9, disjoint=True)  # over min-cut
        reqs.link_quality = LinkQualityRequirement(min_rss_dbm=5.0)
        report = analyze_problem(template, reqs, default_catalog())
        assert not report.ok
        assert {"spec.route-connectivity", "spec.route-min-cut",
                "spec.unit-consistency"} <= set(report.rule_ids)
        assert report.seconds > 0.0
