"""Fuzz tests: the spec parser must reject garbage gracefully.

Whatever text arrives, `parse_spec`/`compile_spec` must either succeed or
raise :class:`SpecError` with a line-numbered message — never crash with
an arbitrary exception (the spec file is user input to the CLI).
"""

import pytest
from hypothesis import example, given, settings
from hypothesis import strategies as st

from repro.spec import SpecError, compile_spec, parse_spec

spec_chars = st.text(
    alphabet=st.characters(
        whitelist_categories=("L", "N", "P", "S", "Z"),
        whitelist_characters="\n\t #(),=*+-[]_",
    ),
    max_size=300,
)


@settings(max_examples=300, deadline=None)
@given(spec_chars)
@example("has_path(")
@example("p = ")
@example("objective()")
@example("min_rss(--80)")
@example("has_paths(sensors, sink, replicas=x)")
@example("max_hops(p, 1.5, 2)")
@example("= min_rss(-80)")
def test_parser_never_crashes(text):
    try:
        parse_spec(text)
    except SpecError:
        pass  # the designed failure mode


@settings(max_examples=100, deadline=None)
@given(spec_chars)
def test_compile_never_crashes(text):
    from repro.network import small_grid_template

    template = small_grid_template().template
    try:
        compile_spec(text, template)
    except SpecError:
        pass


class TestErrorMessages:
    def test_line_numbers_reported(self):
        with pytest.raises(SpecError, match="line 3"):
            parse_spec("min_rss(-80)\n\n???")

    def test_wrong_arity_reported(self):
        with pytest.raises(SpecError, match="two node references"):
            parse_spec("p = has_path(a)")

    def test_valid_tokens_wrong_types(self):
        from repro.network import small_grid_template

        template = small_grid_template().template
        with pytest.raises(SpecError):
            compile_spec("p = has_path(1.5, sink)", template)
