"""Tests for the resilient solver watchdog (scripted backends, no sleeps)."""

import threading

import pytest

from repro.milp.model import Model
from repro.milp.solution import Solution, SolveStatus
from repro.resilience import (
    DeadlineBudget,
    ResilientSolver,
    RetryPolicy,
    SolveAttempt,
    SolveFailure,
)
from repro.resilience.policy import NO_RETRY
from repro.resilience.watchdog import attempt_counters


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class ScriptedSolver:
    """Replays a fixed sequence of outcomes.

    Each script entry is a Solution, an Exception to raise, or a float:
    seconds to advance the fake clock before returning OPTIMAL.
    """

    name = "scripted"

    def __init__(self, script, clock=None, time_limit=None):
        self.script = list(script)
        self.calls = 0
        self.clock = clock
        self.time_limit = time_limit
        self.seen_limits = []

    def with_time_limit(self, seconds):
        clone = ScriptedSolver(self.script, self.clock, seconds)
        # Share mutable state so assertions see every call.
        clone.script = self.script
        clone.seen_limits = self.seen_limits
        return clone

    def solve(self, model):
        self.seen_limits.append(self.time_limit)
        self.calls += 1
        step = self.script.pop(0)
        if isinstance(step, tuple):  # (seconds_to_burn, outcome)
            burn, step = step
            if self.clock is not None:
                self.clock.advance(burn)
        if isinstance(step, BaseException):
            raise step
        if isinstance(step, (int, float)):
            if self.clock is not None:
                self.clock.advance(step)
            return Solution(status=SolveStatus.OPTIMAL, objective=1.0)
        return step


def model():
    m = Model(name="watchdog-test")
    m.binary("x")
    return m


def make_solver(script, clock, **kwargs):
    kwargs.setdefault("fallbacks", ())
    kwargs.setdefault("retry", RetryPolicy(max_retries=2, base_delay_s=0.01))
    backend = ScriptedSolver(script, clock)
    solver = ResilientSolver(
        backend, clock=clock, sleep=lambda s: clock.advance(s), **kwargs
    )
    return solver, backend


class TestRetryAndFallback:
    def test_error_then_optimal_retries(self):
        clock = FakeClock()
        solver, backend = make_solver(
            [Solution(status=SolveStatus.ERROR, message="boom"), 0.5], clock
        )
        solution = solver.solve(model())
        assert solution.status is SolveStatus.OPTIMAL
        assert backend.calls == 2
        log = solution.extra["solve_attempts"]
        assert [a.status for a in log] == ["error", "optimal"]
        assert log[0].attempt == 1 and log[1].attempt == 2

    def test_crash_then_optimal_retries(self):
        clock = FakeClock()
        solver, backend = make_solver([RuntimeError("segv"), 0.1], clock)
        solution = solver.solve(model())
        assert solution.status is SolveStatus.OPTIMAL
        log = solution.extra["solve_attempts"]
        assert log[0].status == "crash"
        assert "segv" in log[0].message

    def test_hang_recorded_and_retried(self):
        clock = FakeClock()
        solver, _ = make_solver([TimeoutError("stuck"), 0.1], clock)
        solution = solver.solve(model())
        assert solution.status is SolveStatus.OPTIMAL
        assert solution.extra["solve_attempts"][0].status == "hang"

    def test_fallback_chain_engaged(self):
        clock = FakeClock()
        primary = ScriptedSolver([RuntimeError("a"), RuntimeError("b")], clock)
        backup = ScriptedSolver([0.2], clock)
        backup.name = "backup"
        solver = ResilientSolver(
            primary, fallbacks=(backup,),
            retry=RetryPolicy(max_retries=1, base_delay_s=0.01),
            clock=clock, sleep=lambda s: clock.advance(s),
        )
        solution = solver.solve(model())
        assert solution.status is SolveStatus.OPTIMAL
        log = solution.extra["solve_attempts"]
        assert [a.solver for a in log] == ["scripted", "scripted", "backup"]
        assert [a.fallback for a in log] == [False, False, True]
        counters = attempt_counters(log)
        assert counters["retries"] == 1
        assert counters["fallbacks"] == 1

    def test_feasible_incumbent_accepted_as_degraded(self):
        clock = FakeClock()
        solver, _ = make_solver(
            [Solution(status=SolveStatus.FEASIBLE, objective=9.0)], clock
        )
        solution = solver.solve(model())
        assert solution.status is SolveStatus.FEASIBLE
        log = solution.extra["solve_attempts"]
        assert log[0].degraded
        assert attempt_counters(log)["degraded"]

    def test_infeasible_is_definitive_no_retry(self):
        clock = FakeClock()
        solver, backend = make_solver(
            [Solution(status=SolveStatus.INFEASIBLE), 1.0], clock
        )
        solution = solver.solve(model())
        assert solution.status is SolveStatus.INFEASIBLE
        assert backend.calls == 1

    def test_timeout_without_incumbent_moves_down_chain(self):
        clock = FakeClock()
        primary = ScriptedSolver([Solution(status=SolveStatus.TIMEOUT)], clock)
        backup = ScriptedSolver([0.2], clock)
        solver = ResilientSolver(
            primary, fallbacks=(backup,), retry=RetryPolicy(max_retries=2),
            clock=clock, sleep=lambda s: clock.advance(s),
        )
        solution = solver.solve(model())
        assert solution.status is SolveStatus.OPTIMAL
        # No second attempt on the primary: its deterministic timeout
        # would just repeat.
        assert primary.calls == 1 and backup.calls == 1


class TestFailureAndDeadline:
    def test_all_backends_fail_returns_error(self):
        clock = FakeClock()
        solver, _ = make_solver(
            [RuntimeError("1"), RuntimeError("2"), RuntimeError("3")], clock,
            retry=RetryPolicy(max_retries=2, base_delay_s=0.01),
        )
        solution = solver.solve(model())
        assert solution.status is SolveStatus.ERROR
        assert len(solution.extra["solve_attempts"]) == 3

    def test_raise_on_failure(self):
        clock = FakeClock()
        solver, _ = make_solver(
            [RuntimeError("x")], clock, retry=NO_RETRY, raise_on_failure=True
        )
        with pytest.raises(SolveFailure) as excinfo:
            solver.solve(model())
        assert len(excinfo.value.attempts) == 1

    def test_deadline_expiry_returns_timeout(self):
        clock = FakeClock()
        budget = DeadlineBudget(1.0, clock=clock)
        # The first attempt burns 2 s before crashing, so the second
        # attempt starts expired and the watchdog gives up.
        solver, backend = make_solver(
            [(2.0, RuntimeError("slow")), (2.0, RuntimeError("slow")), 0.1],
            clock, budget=budget,
        )
        solution = solver.solve(model())
        assert solution.status is SolveStatus.TIMEOUT
        assert len(backend.seen_limits) == 1
        assert "deadline" in solution.message

    def test_backoff_clipped_to_remaining_budget(self):
        clock = FakeClock()
        budget = DeadlineBudget(10.0, clock=clock)
        slept = []
        backend = ScriptedSolver([RuntimeError("x"), 0.1], clock)
        solver = ResilientSolver(
            backend, fallbacks=(), budget=budget,
            retry=RetryPolicy(max_retries=1, base_delay_s=0.25),
            clock=clock, sleep=lambda s: (slept.append(s), clock.advance(s)),
        )
        solution = solver.solve(model())
        assert solution.status is SolveStatus.OPTIMAL
        assert slept == [pytest.approx(0.25)]

    def test_per_attempt_limit_clipped_to_budget(self):
        clock = FakeClock()
        budget = DeadlineBudget(5.0, clock=clock)
        backend = ScriptedSolver([0.1], clock, time_limit=300.0)
        solver = ResilientSolver(
            backend, fallbacks=(), budget=budget, retry=NO_RETRY,
            clock=clock, sleep=lambda s: clock.advance(s),
        )
        solver.solve(model())
        assert backend.seen_limits == [pytest.approx(5.0)]

    def test_deadline_s_builds_fresh_budget_per_solve(self):
        clock = FakeClock()
        backend = ScriptedSolver([0.1, 0.1], clock, time_limit=None)
        solver = ResilientSolver(
            backend, fallbacks=(), deadline_s=4.0, retry=NO_RETRY,
            clock=clock, sleep=lambda s: clock.advance(s),
        )
        solver.solve(model())
        clock.advance(100.0)  # a stale shared budget would be expired now
        solution = solver.solve(model())
        assert solution.status is SolveStatus.OPTIMAL
        assert backend.seen_limits == [pytest.approx(4.0)] * 2

    def test_with_time_limit_copy(self):
        solver = ResilientSolver(ScriptedSolver([]), fallbacks=())
        clone = solver.with_time_limit(7.0)
        assert clone is not solver
        assert clone.deadline_s == 7.0
        assert solver.deadline_s is None


class TestHangGuard:
    def test_hung_backend_abandoned(self):
        release = threading.Event()

        class Hanger:
            name = "hanger"

            def solve(self, m):
                release.wait(5.0)
                return Solution(status=SolveStatus.OPTIMAL)

        quick = ScriptedSolver([Solution(status=SolveStatus.OPTIMAL,
                                         objective=2.0)])
        solver = ResilientSolver(
            Hanger(), fallbacks=(quick,), retry=NO_RETRY,
            hang_timeout_s=0.05,
        )
        try:
            solution = solver.solve(model())
        finally:
            release.set()
        assert solution.status is SolveStatus.OPTIMAL
        log = solution.extra["solve_attempts"]
        assert log[0].status == "hang"
        assert log[0].solver == "hanger"
        assert log[1].solver == "scripted"


class TestIntegration:
    def test_wraps_real_solver_end_to_end(self, grid_instance, library,
                                          grid_requirements):
        import repro

        result = repro.explore(
            grid_instance.template, library, grid_requirements,
            objective="cost",
            options=repro.SolveOptions(deadline_s=120.0, max_retries=1),
        )
        assert result.feasible
        assert len(result.solve_attempts) == 1
        assert isinstance(result.solve_attempts[0], SolveAttempt)
        payload = result.stats_dict()["resilience"]
        assert payload["attempts"] == 1
        assert payload["retries"] == 0
        assert payload["attempt_log"][0]["solver"] == "highs"


class TestWarmStartDegradation:
    def _hinted_model(self):
        m = Model(name="degrade-test")
        x = m.binary("x")
        m.add(x >= 1, "pin")
        m.minimize(2 * x)
        m.hints["warm_start"] = {
            "x": [1.0], "objective": 2.0, "source": "greedy",
        }
        return m

    def test_exhausted_chain_degrades_to_the_warm_start(self):
        clock = FakeClock()
        solver, _ = make_solver(
            [RuntimeError("1")], clock, retry=NO_RETRY,
        )
        solution = solver.solve(self._hinted_model())
        assert solution.status is SolveStatus.FEASIBLE
        assert solution.objective == pytest.approx(2.0)
        assert solution.extra["degraded_to_warm_start"] is True
        assert "greedy" in solution.message
        assert solution.extra["solve_attempts"][-1].degraded

    def test_stale_hint_never_degrades_to_a_wrong_answer(self):
        clock = FakeClock()
        solver, _ = make_solver(
            [RuntimeError("1")], clock, retry=NO_RETRY,
        )
        m = self._hinted_model()
        m.hints["warm_start"]["x"] = [0.0]  # violates the pinned row
        solution = solver.solve(m)
        assert solution.status is SolveStatus.ERROR

    def test_no_hint_keeps_the_statusonly_failure(self):
        clock = FakeClock()
        solver, _ = make_solver(
            [RuntimeError("1")], clock, retry=NO_RETRY,
        )
        solution = solver.solve(model())
        assert solution.status is SolveStatus.ERROR
