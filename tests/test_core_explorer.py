"""Tests for the explorers (end-to-end build/solve/decode)."""

import pytest

from repro.core import DataCollectionExplorer, AnchorPlacementExplorer
from repro.encoding import ApproximatePathEncoder, FullPathEncoder
from repro.milp import BranchAndBoundSolver, HighsSolver, SolveStatus
from repro.network import RequirementSet
from repro.validation import validate


class TestDataCollectionExplorer:
    def test_solve_returns_validated_architecture(
        self, grid_instance, library, grid_requirements
    ):
        result = DataCollectionExplorer(
            grid_instance.template, library, grid_requirements
        ).solve("cost")
        assert result.status == SolveStatus.OPTIMAL
        assert result.feasible
        report = validate(result.architecture, grid_requirements)
        assert report.ok, report.violations

    def test_objective_terms_recorded(
        self, grid_instance, library, grid_requirements
    ):
        result = DataCollectionExplorer(
            grid_instance.template, library, grid_requirements
        ).solve("cost")
        assert result.objective_terms["cost"] == pytest.approx(
            result.architecture.dollar_cost
        )
        assert "energy" in result.objective_terms  # lifetime active

    def test_energy_model_skipped_when_unneeded(
        self, grid_instance, library
    ):
        reqs = RequirementSet()
        for s in grid_instance.sensor_ids:
            reqs.require_route(s, grid_instance.sink_id)
        built = DataCollectionExplorer(
            grid_instance.template, library, reqs
        ).build("cost")
        assert built.energy is None
        assert "energy" not in built.objective_exprs

    def test_energy_objective_requires_energy_model(
        self, grid_instance, library
    ):
        reqs = RequirementSet()
        for s in grid_instance.sensor_ids:
            reqs.require_route(s, grid_instance.sink_id)
        built = DataCollectionExplorer(
            grid_instance.template, library, reqs
        ).build("energy")
        assert built.energy is not None

    def test_custom_solver_used(self, grid_instance, library):
        reqs = RequirementSet()
        reqs.require_route(grid_instance.sensor_ids[0], grid_instance.sink_id)
        result = DataCollectionExplorer(
            grid_instance.template, library, reqs,
            encoder=ApproximatePathEncoder(k_star=3),
            solver=BranchAndBoundSolver(node_limit=50_000),
        ).solve("cost")
        assert result.feasible

    def test_full_and_approx_agree_on_small_problem(
        self, grid_instance, library
    ):
        reqs = RequirementSet()
        for s in grid_instance.sensor_ids[:2]:
            reqs.require_route(s, grid_instance.sink_id, replicas=2,
                               disjoint=True)
        full = DataCollectionExplorer(
            grid_instance.template, library, reqs, encoder=FullPathEncoder()
        ).solve("cost")
        approx = DataCollectionExplorer(
            grid_instance.template, library, reqs,
            encoder=ApproximatePathEncoder(k_star=30),
        ).solve("cost")
        assert full.objective_value == pytest.approx(approx.objective_value)

    def test_model_stats_reported(self, grid_instance, library,
                                  grid_requirements):
        result = DataCollectionExplorer(
            grid_instance.template, library, grid_requirements
        ).solve("cost")
        assert result.model_stats.num_vars > 0
        assert result.model_stats.num_constraints > 0
        assert result.encode_seconds >= 0
        assert result.solve_seconds > 0

    def test_infeasible_reported_without_architecture(
        self, grid_instance, library
    ):
        reqs = RequirementSet()
        reqs.require_route(grid_instance.sensor_ids[0], grid_instance.sink_id,
                           replicas=1, disjoint=False, exact_hops=1)
        from repro.network import LinkQualityRequirement

        reqs.link_quality = LinkQualityRequirement(min_snr_db=90.0)
        result = DataCollectionExplorer(
            grid_instance.template, library, reqs
        ).solve("cost")
        assert not result.feasible
        assert result.architecture is None
        assert "infeasible" in result.summary()

    def test_combined_objective_between_extremes(
        self, grid_instance, library, grid_requirements
    ):
        explorer = DataCollectionExplorer(
            grid_instance.template, library, grid_requirements
        )
        cost_r = explorer.solve("cost")
        energy_r = explorer.solve("energy")
        from repro.core import ObjectiveSpec

        combined = explorer.solve(
            ObjectiveSpec.combine(
                {"cost": 0.5, "energy": 0.5},
                scales={
                    "cost": max(cost_r.objective_terms["cost"], 1e-9),
                    "energy": max(energy_r.objective_terms["energy"], 1e-9),
                },
            )
        )
        assert combined.feasible
        assert (cost_r.objective_terms["cost"] - 1e-6
                <= combined.objective_terms["cost"])
        assert (energy_r.objective_terms["energy"] - 1e-3
                <= combined.objective_terms["energy"])


class TestLinkCosts:
    def test_per_link_costs_enter_objective_and_total(self):
        """"We associate every node and every edge in T with a cost
        value" — nonzero link costs must be paid and minimized."""
        from dataclasses import replace

        from repro.library import ZIGBEE_2_4GHZ, default_catalog
        from repro.network import RequirementSet, small_grid_template
        from repro.network.template import Template

        instance = small_grid_template(nx=4, ny=3)
        priced_link = replace(ZIGBEE_2_4GHZ, cost=5.0)
        template = Template(
            [n for n in instance.template.nodes], priced_link, name="priced"
        )
        for u, v, pl in instance.template.edges():
            template.set_link(u, v, pl)
        reqs = RequirementSet()
        for s in instance.sensor_ids:
            reqs.require_route(s, instance.sink_id)
        library = default_catalog()
        result = DataCollectionExplorer(template, library, reqs).solve("cost")
        assert result.feasible
        arch = result.architecture
        node_cost = sum(
            library.by_name(name).cost for name in arch.sizing.values()
        )
        assert arch.dollar_cost == pytest.approx(
            node_cost + 5.0 * len(arch.active_edges)
        )
        assert result.objective_terms["cost"] == pytest.approx(
            arch.dollar_cost
        )
        # With per-link pricing, shared links beat per-sensor direct ones
        # whenever geometry permits; at minimum no redundant links exist.
        assert len(arch.active_edges) <= sum(r.hops for r in arch.routes)


class TestAnchorPlacementExplorerEnd2End:
    def test_solve_and_summary(self, loc_instance, loc_requirement,
                               loc_library):
        result = AnchorPlacementExplorer(
            loc_instance.template, loc_library, loc_requirement,
            loc_instance.channel, k_star=10,
        ).solve("cost")
        assert result.feasible
        assert result.architecture.routes == []
        assert result.architecture.active_edges == set()
        assert "nodes" in result.summary()
