"""Tests for the JSONL sink, Prometheus exposition and tree rendering."""

import json

import pytest

from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.schema import check_tree, validate_file, validate_record
from repro.telemetry.sinks import (
    JsonlSink,
    prometheus_text,
    read_jsonl,
    render_span_tree,
)
from repro.telemetry.trace import TRACE_SCHEMA_VERSION, configure, span, shutdown


def _span_record(**overrides):
    record = {
        "schema": TRACE_SCHEMA_VERSION,
        "type": "span",
        "trace": "t" * 32,
        "span": "a" * 16,
        "parent": None,
        "name": "root",
        "t": 1000.0,
        "duration_s": 0.5,
        "status": "ok",
        "message": "",
        "attrs": {},
        "pid": 1,
        "thread": 1,
    }
    record.update(overrides)
    return record


class TestJsonlSink:
    def test_appends_one_line_per_record(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path)
        sink.emit({"a": 1})
        sink.emit({"b": 2})
        sink.close()
        lines = path.read_text().splitlines()
        assert [json.loads(l) for l in lines] == [{"a": 1}, {"b": 2}]

    def test_appends_never_truncates(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"old": true}\n')
        sink = JsonlSink(path)
        sink.emit({"new": True})
        sink.close()
        assert len(path.read_text().splitlines()) == 2

    def test_lazy_open_creates_parents(self, tmp_path):
        path = tmp_path / "deep" / "dir" / "trace.jsonl"
        sink = JsonlSink(path)
        assert not path.parent.exists()  # nothing until first emit
        sink.emit({"x": 1})
        sink.close()
        assert path.exists()

    def test_emit_after_close_raises(self, tmp_path):
        sink = JsonlSink(tmp_path / "t.jsonl")
        sink.emit({"x": 1})
        sink.close()
        with pytest.raises(ValueError, match="closed"):
            sink.emit({"x": 2})

    def test_read_jsonl_salvages_clipped_final_line(self, tmp_path):
        path = tmp_path / "clipped.jsonl"
        path.write_text('{"a": 1}\n{"b": 2}\n{"c": tru')
        assert read_jsonl(path) == [{"a": 1}, {"b": 2}]

    def test_read_jsonl_raises_on_mid_file_corruption(self, tmp_path):
        path = tmp_path / "corrupt.jsonl"
        path.write_text('{"a": 1}\nnot json\n{"b": 2}\n')
        with pytest.raises(json.JSONDecodeError):
            read_jsonl(path)


class TestPrometheusText:
    def test_counter_gauge_histogram_exposition(self):
        registry = MetricsRegistry()
        registry.counter("cache.lookups", region="yen", result="hit").inc(3)
        registry.gauge("rung.size").set(4)
        registry.histogram("lat", buckets=(0.1, 1.0)).observe(0.05)
        text = prometheus_text(registry)
        assert "# TYPE cache_lookups counter" in text
        assert 'cache_lookups{region="yen",result="hit"} 3' in text
        assert "rung_size 4" in text
        assert 'lat_bucket{le="0.1"} 1' in text
        assert 'lat_bucket{le="+Inf"} 1' in text
        assert "lat_sum 0.05" in text
        assert "lat_count 1" in text
        assert text.endswith("\n")

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c", path='a"b\\c\nd').inc()
        text = prometheus_text(registry)
        assert r'path="a\"b\\c\nd"' in text

    def test_empty_registry_renders_empty(self):
        assert prometheus_text(MetricsRegistry()) == ""


class TestRenderSpanTree:
    def test_indentation_follows_parentage(self):
        records = [
            _span_record(span="c" * 16, parent="a" * 16, name="child",
                         attrs={"k": 2}),
            _span_record(name="root"),
        ]
        text = render_span_tree(records)
        lines = text.splitlines()
        assert lines[0].startswith("root")
        assert lines[1].startswith("  child")
        assert "k=2" in lines[1]

    def test_orphans_promoted_and_flagged(self):
        records = [_span_record(parent="f" * 16, name="lost")]
        text = render_span_tree(records)
        assert "lost" in text and "(orphan)" in text

    def test_events_render_under_their_span(self):
        records = [
            _span_record(),
            {"schema": TRACE_SCHEMA_VERSION, "type": "event",
             "trace": "t" * 32, "span": "a" * 16,
             "name": "solve.incumbent", "t": 1000.5,
             "attrs": {"incumbent": 42.0}},
        ]
        text = render_span_tree(records)
        assert "* solve.incumbent" in text and "incumbent=42.0" in text
        assert "solve.incumbent" not in render_span_tree(
            records, events=False
        )


class TestSchemaValidation:
    def test_valid_span_and_event_pass(self):
        assert validate_record(_span_record()) == []
        event = {"schema": TRACE_SCHEMA_VERSION, "type": "event",
                 "trace": "t" * 32, "span": "a" * 16, "name": "e",
                 "t": 1.0, "attrs": {}}
        assert validate_record(event) == []

    @pytest.mark.parametrize("mutation, fragment", [
        ({"schema": 99}, "schema"),
        ({"type": "blob"}, "type"),
        ({"status": "weird"}, "status"),
        ({"duration_s": -1.0}, "duration_s"),
        ({"parent": 7}, "parent"),
        ({"name": ""}, "name"),
        ({"t": "yesterday"}, "t"),
    ])
    def test_bad_fields_rejected(self, mutation, fragment):
        errors = validate_record(_span_record(**mutation))
        assert errors, mutation
        assert any(fragment in e for e in errors), errors

    def test_missing_field_rejected(self):
        record = _span_record()
        del record["trace"]
        assert validate_record(record)

    def test_check_tree_happy_path(self):
        records = [
            _span_record(),
            _span_record(span="b" * 16, parent="a" * 16, name="child"),
        ]
        assert check_tree(records) == []

    def test_check_tree_flags_multiple_roots(self):
        records = [
            _span_record(),
            _span_record(span="b" * 16, name="second-root"),
        ]
        errors = check_tree(records)
        assert any("root" in e for e in errors)

    def test_check_tree_flags_orphan_parent_and_unknown_event_span(self):
        records = [
            _span_record(parent="f" * 16),
            {"schema": TRACE_SCHEMA_VERSION, "type": "event",
             "trace": "t" * 32, "span": "9" * 16, "name": "e",
             "t": 1.0, "attrs": {}},
        ]
        errors = check_tree(records)
        assert any("orphan" in e or "parent" in e for e in errors)
        assert any("event" in e for e in errors)

    def test_validate_file_end_to_end(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        configure([JsonlSink(path)])
        try:
            with span("root"):
                with span("child"):
                    pass
        finally:
            shutdown()
        records, errors = validate_file(path)
        assert errors == []
        assert len(records) == 2

    def test_schema_cli_exit_codes(self, tmp_path, capsys):
        from repro.telemetry.schema import main

        good = tmp_path / "good.jsonl"
        good.write_text(json.dumps(_span_record()) + "\n")
        bad = tmp_path / "bad.jsonl"
        bad.write_text(json.dumps(_span_record(status="weird")) + "\n")
        assert main([str(good)]) == 0
        assert main([str(bad)]) == 1
        assert main([]) == 2
        out = capsys.readouterr().out
        assert "ok" in out and "INVALID" in out
