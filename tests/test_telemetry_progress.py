"""Tests for solver progress trajectories and the attempt cross-links."""

import pytest

from repro.milp import (
    BranchAndBoundSolver,
    HighsSolver,
    Model,
    SolveStatus,
    lin_sum,
)
from repro.milp.solution import Solution
from repro.resilience.watchdog import ResilientSolver
from repro.telemetry.metrics import counter
from repro.telemetry.progress import ProgressEvent, SolveProgress
from repro.telemetry.sinks import CollectorSink
from repro.telemetry.trace import configure, span


def knapsack_model():
    m = Model("knapsack")
    values = [6, 5, 4, 3]
    weights = [4, 3, 2, 1.5]
    xs = [m.binary(f"x{i}") for i in range(4)]
    m.add(lin_sum([w * x for w, x in zip(weights, xs)]) <= 6)
    m.maximize(lin_sum([v * x for v, x in zip(values, xs)]))
    return m


class TestSolveProgress:
    def test_records_in_order(self):
        progress = SolveProgress("test-solver")
        progress.incumbent(3, 10.0, bound=8.0)
        progress.incumbent(7, 9.0, bound=8.5)
        progress.done(12, 9.0, 9.0)
        kinds = [e.kind for e in progress.events]
        assert kinds == ["incumbent", "incumbent", "done"]
        assert len(progress) == 3
        assert progress.events[0] == ProgressEvent(
            "incumbent", 3, 10.0, 8.0, progress.events[0].elapsed_s
        )

    def test_trajectory_is_json_ready(self):
        progress = SolveProgress("s")
        progress.bound(1, 5.0)
        (entry,) = progress.trajectory()
        assert entry == {
            "kind": "bound", "nodes": 1, "incumbent": None,
            "bound": 5.0, "elapsed_s": entry["elapsed_s"],
        }

    def test_incumbent_increments_metric(self):
        base = counter("solver.incumbent_updates", solver="s").value
        SolveProgress("s").incumbent(1, 2.0)
        assert (
            counter("solver.incumbent_updates", solver="s").value == base + 1
        )

    def test_events_mirrored_onto_enclosing_span(self):
        sink = CollectorSink()
        configure([sink])
        with span("solver.solve", solver="s") as solve_span:
            progress = SolveProgress("s")
            progress.incumbent(4, 2.5, bound=2.0)
        events = [r for r in sink.records if r["type"] == "event"]
        (event,) = events
        assert event["name"] == "solve.incumbent"
        assert event["span"] == solve_span.span_id
        assert event["attrs"]["incumbent"] == 2.5
        assert event["attrs"]["nodes"] == 4


class TestBranchAndBoundTrajectory:
    def test_solution_carries_incumbent_trajectory(self):
        solution = BranchAndBoundSolver().solve(knapsack_model())
        assert solution.status == SolveStatus.OPTIMAL
        trajectory = solution.incumbent_trajectory
        kinds = [e["kind"] for e in trajectory]
        assert kinds.count("incumbent") >= 1
        assert kinds[-1] == "done"
        incumbents = [
            e["incumbent"] for e in trajectory if e["kind"] == "incumbent"
        ]
        # Minimization: each new incumbent improves on the last.
        assert incumbents == sorted(incumbents, reverse=True)
        # The trajectory reports user-space objectives: the final
        # incumbent is exactly the solution objective.
        assert incumbents[-1] == pytest.approx(solution.objective)
        assert trajectory[-1]["incumbent"] == pytest.approx(
            solution.objective
        )

    def test_integer_infeasible_trajectory_is_terminal_only(self):
        # LP-feasible (x = 0.5) but integer-infeasible: the search runs
        # and the trajectory records a terminal summary with no incumbent.
        m = Model()
        x = m.binary("x")
        m.add(2 * x >= 1)
        m.add(2 * x <= 1)
        m.minimize(x)
        solution = BranchAndBoundSolver().solve(m)
        assert solution.status == SolveStatus.INFEASIBLE
        assert [e["kind"] for e in solution.incumbent_trajectory] == ["done"]
        assert solution.incumbent_trajectory[-1]["incumbent"] is None

    def test_root_infeasible_has_no_trajectory(self):
        # Root-LP infeasibility is detected before the search starts;
        # the property degrades to an empty list.
        m = Model()
        x = m.binary("x")
        m.add(x >= 1)
        m.add(x <= 0)
        m.minimize(x)
        solution = BranchAndBoundSolver().solve(m)
        assert solution.status == SolveStatus.INFEASIBLE
        assert solution.incumbent_trajectory == []

    def test_traced_solve_emits_incumbent_events_under_solver_span(self):
        sink = CollectorSink()
        configure([sink])
        BranchAndBoundSolver().solve(knapsack_model())
        spans = [r for r in sink.records if r["type"] == "span"]
        (solver_span,) = [s for s in spans if s["name"] == "solver.solve"]
        assert solver_span["attrs"]["solver"] == "branch-and-bound"
        assert solver_span["attrs"]["status"] == "OPTIMAL"
        events = [r for r in sink.records if r["type"] == "event"]
        assert all(e["span"] == solver_span["span"] for e in events)
        names = [e["name"] for e in events]
        assert "solve.incumbent" in names
        assert names[-1] == "solve.done"

    def test_plain_solution_has_empty_trajectory(self):
        assert Solution(SolveStatus.ERROR).incumbent_trajectory == []


class TestHighsSpan:
    def test_solve_wrapped_in_span_without_trajectory(self):
        sink = CollectorSink()
        configure([sink])
        solution = HighsSolver().solve(knapsack_model())
        assert solution.status == SolveStatus.OPTIMAL
        # scipy's milp has no progress callback: span yes, trajectory no.
        assert solution.incumbent_trajectory == []
        (record,) = [r for r in sink.records if r["type"] == "span"]
        assert record["name"] == "solver.solve"
        assert record["attrs"] == {
            "solver": "highs", "status": "OPTIMAL",
            "nodes": solution.node_count,
        }


class TestSolveAttemptCrossLink:
    def test_attempt_span_id_links_stats_to_trace(self):
        sink = CollectorSink()
        configure([sink])
        solver = ResilientSolver(HighsSolver())
        solution = solver.solve(knapsack_model())
        attempts = solution.extra["solve_attempts"]
        assert len(attempts) == 1
        attempt_spans = {
            r["span"]: r for r in sink.records
            if r["type"] == "span" and r["name"] == "solve.attempt"
        }
        assert attempts[0].span_id in attempt_spans
        linked = attempt_spans[attempts[0].span_id]
        assert linked["attrs"]["solver"] == "highs"
        assert linked["attrs"]["outcome"] == "optimal"
        assert linked["attrs"]["fallback"] is False
        # The backend's solver.solve span nests inside the attempt span.
        nested = [
            r for r in sink.records
            if r["type"] == "span" and r["name"] == "solver.solve"
        ]
        assert nested[0]["parent"] == attempts[0].span_id

    def test_untraced_attempts_have_empty_span_id(self):
        solution = ResilientSolver(HighsSolver()).solve(knapsack_model())
        assert solution.extra["solve_attempts"][0].span_id == ""

    def test_retry_increments_counter_and_spans_every_attempt(self):
        class FlakySolver:
            name = "flaky"
            calls = 0

            def solve(self, model):
                type(self).calls += 1
                if type(self).calls == 1:
                    raise RuntimeError("transient")
                return HighsSolver().solve(model)

        sink = CollectorSink()
        configure([sink])
        base = counter("solver.retries", solver="flaky").value
        solver = ResilientSolver(FlakySolver(), fallbacks=(), sleep=lambda s: None)
        solution = solver.solve(knapsack_model())
        assert solution.status == SolveStatus.OPTIMAL
        assert counter("solver.retries", solver="flaky").value == base + 1
        attempt_spans = [
            r for r in sink.records
            if r["type"] == "span" and r["name"] == "solve.attempt"
        ]
        assert [s["attrs"]["attempt"] for s in attempt_spans] == [1, 2]
        assert attempt_spans[0]["attrs"]["outcome"] == "crash"
        assert attempt_spans[1]["attrs"]["outcome"] == "optimal"
