"""Tests for the contention-based (CSMA) energy model."""

import math

import pytest

from repro.core import DataCollectionExplorer
from repro.protocols import (
    CsmaConfig,
    collision_probability,
    csma_energy,
    csma_lifetime_years,
)
from repro.validation import node_charge_ma_ms


@pytest.fixture(scope="module")
def design(grid_instance, library):
    from repro.network import (
        LifetimeRequirement,
        LinkQualityRequirement,
        RequirementSet,
    )

    reqs = RequirementSet()
    for s in grid_instance.sensor_ids:
        reqs.require_route(s, grid_instance.sink_id, replicas=2,
                           disjoint=True)
    reqs.link_quality = LinkQualityRequirement(min_snr_db=20.0)
    reqs.lifetime = LifetimeRequirement(years=5.0)
    result = DataCollectionExplorer(
        grid_instance.template, library, reqs
    ).solve("cost")
    assert result.feasible
    return result.architecture, reqs


class TestCollisionProbability:
    def test_no_contenders_no_collisions(self):
        assert collision_probability(0, 1.6, 30000.0, 1.0) == 0.0

    def test_grows_with_contenders(self):
        few = collision_probability(2, 1.6, 30000.0, 1.0)
        many = collision_probability(20, 1.6, 30000.0, 1.0)
        assert 0.0 < few < many < 1.0

    def test_grows_with_airtime(self):
        short = collision_probability(5, 0.5, 30000.0, 1.0)
        long = collision_probability(5, 5.0, 30000.0, 1.0)
        assert short < long

    def test_poisson_form(self):
        p = collision_probability(3, 2.0, 10000.0, 2.0)
        rate = 3 * 2.0 / 10000.0
        assert p == pytest.approx(1.0 - math.exp(-rate * 4.0))


class TestCsmaConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            CsmaConfig(max_attempts=0)
        with pytest.raises(ValueError):
            CsmaConfig(rx_duty_cycle=0.0)


class TestCsmaEnergy:
    def test_every_used_node_charged(self, design):
        arch, reqs = design
        report = csma_energy(arch, reqs)
        assert set(report.node_charge_ma_ms) == set(arch.used_nodes)
        assert all(c > 0 for c in report.node_charge_ma_ms.values())

    def test_collision_probabilities_bounded(self, design):
        arch, reqs = design
        report = csma_energy(arch, reqs)
        for route in arch.routes:
            for edge in route.edges:
                assert 0.0 <= report.collision_probability[edge] < 1.0

    def test_duty_cycled_listening_dominates_vs_tdma(self, design):
        """CSMA's idle listening makes it strictly more expensive than
        the TDMA model on the same design — the reason the paper's
        networks use TDMA."""
        arch, reqs = design
        report = csma_energy(arch, reqs)
        for node_id in arch.used_nodes:
            if arch.template.node(node_id).role == "sink":
                continue
            tdma_charge = node_charge_ma_ms(arch, reqs, node_id)
            assert report.node_charge_ma_ms[node_id] > tdma_charge

    def test_higher_duty_cycle_costs_more(self, design):
        arch, reqs = design
        low = csma_energy(arch, reqs, CsmaConfig(rx_duty_cycle=0.005))
        high = csma_energy(arch, reqs, CsmaConfig(rx_duty_cycle=0.05))
        assert high.total_charge_ma_ms > low.total_charge_ma_ms

    def test_lifetime_shorter_than_tdma(self, design):
        from repro.validation import lifetime_years

        arch, reqs = design
        node = next(
            n for n in arch.used_nodes
            if arch.template.node(n).role != "sink"
        )
        assert csma_lifetime_years(arch, reqs, node) < lifetime_years(
            arch, reqs, node
        )
