"""End-to-end integration tests across every subsystem.

Each test exercises a full pipeline: spec text -> compiled requirements ->
encoded MILP -> solver -> decoded architecture -> independent validation ->
TDMA schedule -> discrete-event simulation (for data collection), or ->
ranging/trilateration evaluation (for localization).
"""

import pytest

from repro import (
    ApproximatePathEncoder,
    BranchAndBoundSolver,
    DataCollectionSimulator,
    FullPathEncoder,
    ReachabilityRequirement,
    default_catalog,
    localization_catalog,
    localization_template,
    small_grid_template,
    synthetic_template,
    validate,
)
from repro.core import DataCollectionExplorer, AnchorPlacementExplorer
from repro.localization import evaluate_localization
from repro.network import RequirementSet
from repro.protocols import build_schedule
from repro.spec import compile_spec

DC_SPEC = """
has_paths(sensors, sink, replicas=2, disjoint=true)
min_signal_to_noise(20)
min_network_lifetime(5)
tdma(slots=16, slot_ms=1, report_s=30)
battery(mah=3000, packet_bytes=50)
objective(cost)
"""


class TestDataCollectionPipeline:
    @pytest.fixture(scope="class")
    def pipeline(self):
        instance = small_grid_template(nx=5, ny=4, spacing=9.0)
        compiled = compile_spec(DC_SPEC, instance.template)
        result = DataCollectionExplorer(
            instance.template, default_catalog(), compiled.requirements
        ).solve(compiled.objective)
        assert result.feasible
        return instance, compiled, result

    def test_design_validates(self, pipeline):
        _, compiled, result = pipeline
        report = validate(result.architecture, compiled.requirements)
        assert report.ok, report.violations
        assert report.min_lifetime_years >= 5.0

    def test_schedule_exists_and_fits(self, pipeline):
        _, compiled, result = pipeline
        schedule = build_schedule(result.architecture,
                                  compiled.requirements.tdma)
        assert schedule.span_superframes >= 1
        assert len(schedule.assignments) == sum(
            r.hops for r in result.architecture.routes
        )

    def test_simulation_confirms_design(self, pipeline):
        _, compiled, result = pipeline
        sim = DataCollectionSimulator(
            result.architecture, compiled.requirements, seed=42
        )
        outcome = sim.run(reports=50)
        assert outcome.delivery_ratio >= 0.999
        # Measured lifetimes respect the requirement too.
        for node_id in result.architecture.used_nodes:
            if result.architecture.template.node(node_id).role == "sink":
                continue
            years = outcome.lifetime_years(
                node_id, compiled.requirements.power,
                compiled.requirements.tdma,
            )
            assert years >= 5.0 * 0.95

    def test_all_sensors_have_two_disjoint_routes(self, pipeline):
        instance, _, result = pipeline
        for sensor in instance.sensor_ids:
            replicas = result.architecture.routes_for(sensor,
                                                      instance.sink_id)
            assert len(replicas) == 2
            assert not set(replicas[0].edges) & set(replicas[1].edges)


class TestSolverCross_Check:
    """The from-scratch branch and bound agrees with HiGHS end to end."""

    def test_same_optimal_cost(self):
        instance = small_grid_template(nx=4, ny=2)
        reqs = RequirementSet()
        for s in instance.sensor_ids:
            reqs.require_route(s, instance.sink_id)
        lib = default_catalog()
        highs = DataCollectionExplorer(
            instance.template, lib, reqs,
            encoder=ApproximatePathEncoder(k_star=4),
        ).solve("cost")
        bnb = DataCollectionExplorer(
            instance.template, lib, reqs,
            encoder=ApproximatePathEncoder(k_star=4),
            solver=BranchAndBoundSolver(node_limit=200_000),
        ).solve("cost")
        assert highs.feasible and bnb.feasible
        assert bnb.objective_value == pytest.approx(
            highs.objective_value, abs=1e-5
        )


class TestEncoderCross_Check:
    """Both encodings synthesize valid designs on a synthetic template."""

    @pytest.mark.parametrize("encoder", [
        ApproximatePathEncoder(k_star=8), FullPathEncoder(),
    ], ids=["approx", "full"])
    def test_synthetic_template_end_to_end(self, encoder):
        instance = synthetic_template(30, 8, seed=5)
        reqs = RequirementSet()
        for s in instance.sensor_ids:
            reqs.require_route(s, instance.sink_id, replicas=2,
                               disjoint=True)
        result = DataCollectionExplorer(
            instance.template, default_catalog(), reqs, encoder=encoder
        ).solve("cost")
        assert result.feasible
        report = validate(result.architecture, reqs)
        assert report.ok, report.violations


class TestLocalizationPipeline:
    @pytest.fixture(scope="class")
    def pipeline(self):
        instance = localization_template(60, 40)
        requirement = ReachabilityRequirement(
            test_points=instance.test_points, min_anchors=3,
            min_rss_dbm=-80.0,
        )
        result = AnchorPlacementExplorer(
            instance.template, localization_catalog(), requirement,
            instance.channel, k_star=15,
        ).solve("cost")
        assert result.feasible
        return instance, requirement, result

    def test_design_validates(self, pipeline):
        instance, requirement, result = pipeline
        reqs = RequirementSet(reachability=requirement)
        report = validate(result.architecture, reqs, instance.channel)
        assert report.ok, report.violations
        assert report.average_reachable >= 3.0

    def test_positions_recoverable_everywhere(self, pipeline):
        instance, requirement, result = pipeline
        evaluation = evaluate_localization(
            result.architecture, requirement, instance.channel, seed=9
        )
        # A cost-minimal placement can leave a few points with (nearly)
        # collinear anchor geometry where trilateration degenerates —
        # precisely what the DSOD objective improves on.
        assert evaluation.coverage >= 0.9
        assert evaluation.mean_error_m < 12.0

    def test_spec_language_drives_localization(self, pipeline):
        instance, requirement, reference = pipeline
        compiled = compile_spec(
            "min_reachable_devices(3, -80)",
            instance.template,
            test_points=instance.test_points,
        )
        result = AnchorPlacementExplorer(
            instance.template, localization_catalog(),
            compiled.requirements.reachability, instance.channel, k_star=15,
        ).solve(compiled.objective)
        assert result.feasible
        assert result.architecture.dollar_cost == pytest.approx(
            reference.architecture.dollar_cost
        )
