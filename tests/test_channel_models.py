"""Tests for the channel models."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.channel import (
    FSPL_1M_2_4GHZ,
    LogDistanceModel,
    MeasuredChannel,
    MultiWallModel,
    free_space_reference_db,
)
from repro.geometry import FloorPlan, Point, Rectangle, office_floorplan

coords = st.floats(0.1, 80.0, allow_nan=False)
pts = st.builds(Point, coords, coords)


class TestLogDistance:
    def test_reference_at_1m(self):
        model = LogDistanceModel(exponent=2.0)
        assert model.path_loss_db(Point(0, 0), Point(1, 0)) == pytest.approx(
            FSPL_1M_2_4GHZ
        )

    def test_decade_slope(self):
        model = LogDistanceModel(exponent=3.0)
        pl_10 = model.path_loss_db(Point(0, 0), Point(10, 0))
        pl_100 = model.path_loss_db(Point(0, 0), Point(100, 0))
        assert pl_100 - pl_10 == pytest.approx(30.0)

    def test_clamped_below_reference_distance(self):
        model = LogDistanceModel(exponent=2.0)
        assert model.path_loss_db(Point(0, 0), Point(0.01, 0)) == pytest.approx(
            FSPL_1M_2_4GHZ
        )

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            LogDistanceModel(exponent=0.0)
        with pytest.raises(ValueError):
            LogDistanceModel(reference_distance=0.0)

    @given(pts, pts)
    def test_symmetric(self, a, b):
        model = LogDistanceModel(exponent=2.5)
        assert model.path_loss_db(a, b) == pytest.approx(
            model.path_loss_db(b, a)
        )

    @settings(max_examples=40)
    @given(st.floats(1.0, 50.0), st.floats(1.5, 4.0))
    def test_monotone_in_distance(self, d, n):
        model = LogDistanceModel(exponent=n)
        nearer = model.path_loss_db(Point(0, 0), Point(d, 0))
        farther = model.path_loss_db(Point(0, 0), Point(d + 1.0, 0))
        assert farther > nearer


class TestFreeSpaceReference:
    def test_2_4ghz_value(self):
        assert free_space_reference_db(2.4) == pytest.approx(40.05, abs=0.1)

    def test_higher_frequency_higher_loss(self):
        assert free_space_reference_db(5.8) > free_space_reference_db(2.4)

    def test_invalid_frequency(self):
        with pytest.raises(ValueError):
            free_space_reference_db(0.0)


class TestMultiWall:
    @pytest.fixture()
    def plan(self):
        p = FloorPlan(Rectangle(0, 0, 20, 10))
        p.add_wall(Point(10, 0), Point(10, 10), material="concrete")
        return p

    def test_adds_wall_loss(self, plan):
        model = MultiWallModel(plan, exponent=2.0)
        clear = model.path_loss_db(Point(1, 5), Point(9, 5))
        blocked = model.path_loss_db(Point(1, 5), Point(19, 5))
        base = LogDistanceModel(exponent=2.0)
        expected_extra = 12.0  # concrete
        assert blocked - base.path_loss_db(Point(1, 5), Point(19, 5)) == (
            pytest.approx(expected_extra)
        )
        assert clear == pytest.approx(
            base.path_loss_db(Point(1, 5), Point(9, 5))
        )

    def test_wall_count(self, plan):
        model = MultiWallModel(plan)
        assert model.wall_count(Point(1, 5), Point(19, 5)) == 1
        assert model.wall_count(Point(1, 5), Point(9, 5)) == 0

    def test_wall_loss_cap(self):
        plan = office_floorplan()
        capped = MultiWallModel(plan, max_wall_loss_db=10.0)
        uncapped = MultiWallModel(plan)
        a, b = Point(1, 1), Point(79, 44)
        assert capped.path_loss_db(a, b) <= uncapped.path_loss_db(a, b)
        base = LogDistanceModel(exponent=2.0).path_loss_db(a, b)
        assert capped.path_loss_db(a, b) - base == pytest.approx(10.0)

    def test_symmetry_flag(self, plan):
        assert MultiWallModel(plan).is_symmetric()


class TestMeasuredChannel:
    def test_lookup_and_reverse(self):
        table = {(Point(0, 0), Point(1, 0)): 55.0}
        ch = MeasuredChannel(table)
        assert ch.path_loss_db(Point(0, 0), Point(1, 0)) == 55.0
        assert ch.path_loss_db(Point(1, 0), Point(0, 0)) == 55.0

    def test_missing_raises(self):
        ch = MeasuredChannel({})
        with pytest.raises(KeyError):
            ch.path_loss_db(Point(0, 0), Point(1, 0))

    def test_asymmetric_table_detected(self):
        a, b = Point(0, 0), Point(1, 0)
        ch = MeasuredChannel({(a, b): 50.0, (b, a): 60.0})
        assert not ch.is_symmetric()
        assert ch.path_loss_db(b, a) == 60.0
