"""Exhaustive correctness checks of the linearization gadgets.

Each gadget is verified by enumerating every assignment of its binary
inputs, fixing them via bounds, and solving — the gadget is correct iff
the auxiliary variable takes the nonlinear product/logic value in every
case.
"""

import itertools

import pytest

from repro.milp import (
    HighsSolver,
    Model,
    indicator_ge,
    indicator_le,
    or_binary,
    product_binary,
    product_binary_continuous,
    product_binary_many,
)


def _fix(var, value):
    var.lower = var.upper = float(value)


def _solve_min(model, expr):
    model.minimize(expr)
    sol = HighsSolver().solve(model)
    assert sol.status.has_solution, sol.status
    return sol


class TestProductBinary:
    @pytest.mark.parametrize("a,b", list(itertools.product([0, 1], [0, 1])))
    def test_equals_and(self, a, b):
        m = Model()
        x, y = m.binary("x"), m.binary("y")
        z = product_binary(m, x, y, "z")
        _fix(x, a)
        _fix(y, b)
        # Both pushing z down and up must give the AND value.
        down = _solve_min(m, z + 0.0).value(z)
        up = _solve_min(m, -1.0 * z).value(z)
        assert down == pytest.approx(a * b)
        assert up == pytest.approx(a * b)

    def test_requires_binaries(self):
        m = Model()
        x = m.continuous("x", 0, 1)
        y = m.binary("y")
        with pytest.raises(ValueError):
            product_binary(m, x, y, "z")


class TestProductBinaryMany:
    @pytest.mark.parametrize(
        "bits", list(itertools.product([0, 1], repeat=3))
    )
    def test_equals_and3(self, bits):
        m = Model()
        vars_ = [m.binary(f"x{i}") for i in range(3)]
        z = product_binary_many(m, vars_, "z")
        for var, bit in zip(vars_, bits):
            _fix(var, bit)
        expected = int(all(bits))
        assert _solve_min(m, z + 0.0).value(z) == pytest.approx(expected)
        assert _solve_min(m, -1.0 * z).value(z) == pytest.approx(expected)

    def test_single_factor_passthrough(self):
        m = Model()
        x = m.binary("x")
        assert product_binary_many(m, [x], "z") is x

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            product_binary_many(Model(), [], "z")


class TestOrBinary:
    @pytest.mark.parametrize(
        "bits", list(itertools.product([0, 1], repeat=3))
    )
    def test_equals_or3(self, bits):
        m = Model()
        vars_ = [m.binary(f"x{i}") for i in range(3)]
        z = or_binary(m, vars_, "z")
        for var, bit in zip(vars_, bits):
            _fix(var, bit)
        expected = int(any(bits))
        assert _solve_min(m, z + 0.0).value(z) == pytest.approx(expected)
        assert _solve_min(m, -1.0 * z).value(z) == pytest.approx(expected)


class TestProductBinaryContinuous:
    @pytest.mark.parametrize("b", [0, 1])
    @pytest.mark.parametrize("y_val", [-2.0, 0.0, 3.5])
    def test_equals_product(self, b, y_val):
        m = Model()
        bvar = m.binary("b")
        y = m.continuous("y", -4.0, 4.0)
        w = product_binary_continuous(m, bvar, y, -4.0, 4.0, "w")
        _fix(bvar, b)
        _fix(y, y_val)
        expected = b * y_val
        assert _solve_min(m, w + 0.0).value(w) == pytest.approx(expected)
        assert _solve_min(m, -1.0 * w).value(w) == pytest.approx(expected)

    def test_crossed_bounds_rejected(self):
        m = Model()
        b = m.binary("b")
        y = m.continuous("y", 0, 1)
        with pytest.raises(ValueError):
            product_binary_continuous(m, b, y, 2.0, 1.0, "w")


class TestIndicators:
    def test_indicator_ge_active(self):
        m = Model()
        b = m.binary("b")
        x = m.continuous("x", -10.0, 10.0)
        indicator_ge(m, b, x + 0.0, 3.0, -10.0, "ind")
        _fix(b, 1)
        assert _solve_min(m, x + 0.0).value(x) >= 3.0 - 1e-6

    def test_indicator_ge_inactive_relaxed(self):
        m = Model()
        b = m.binary("b")
        x = m.continuous("x", -10.0, 10.0)
        indicator_ge(m, b, x + 0.0, 3.0, -10.0, "ind")
        _fix(b, 0)
        assert _solve_min(m, x + 0.0).value(x) == pytest.approx(-10.0)

    def test_indicator_ge_vacuous_adds_nothing(self):
        m = Model()
        b = m.binary("b")
        x = m.continuous("x", 5.0, 10.0)
        indicator_ge(m, b, x + 0.0, 3.0, 5.0, "ind")
        assert len(m.constraints) == 0

    def test_indicator_le_active(self):
        m = Model()
        b = m.binary("b")
        x = m.continuous("x", -10.0, 10.0)
        indicator_le(m, b, x + 0.0, -3.0, 10.0, "ind")
        _fix(b, 1)
        assert _solve_min(m, -1.0 * x).value(x) <= -3.0 + 1e-6

    def test_indicator_le_inactive_relaxed(self):
        m = Model()
        b = m.binary("b")
        x = m.continuous("x", -10.0, 10.0)
        indicator_le(m, b, x + 0.0, -3.0, 10.0, "ind")
        _fix(b, 0)
        assert _solve_min(m, -1.0 * x).value(x) == pytest.approx(10.0)
