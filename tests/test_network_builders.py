"""Tests for the template builders (experiment workload generators)."""

import pytest

from repro.graph import shortest_path_tree
from repro.network import (
    data_collection_template,
    localization_template,
    small_grid_template,
    synthetic_template,
)


class TestDataCollection:
    @pytest.fixture(scope="class")
    def instance(self):
        return data_collection_template(n_sensors=12, n_relay_candidates=30)

    def test_node_counts(self, instance):
        template = instance.template
        assert len(template.sensors) == 12
        assert len(template.sinks) == 1
        assert len(template.relays) == 30
        assert template.node_count == 43

    def test_paper_default_size(self):
        instance = data_collection_template()
        assert instance.template.node_count == 136  # 35 + 1 + 100

    def test_fixed_flags(self, instance):
        for node in instance.template.nodes:
            assert node.fixed == (node.role in ("sensor", "sink"))

    def test_all_sensors_can_reach_sink(self, instance):
        reachable = set()
        for sensor in instance.sensor_ids:
            dist = shortest_path_tree(instance.template.graph, sensor)
            if instance.sink_id in dist:
                reachable.add(sensor)
        assert reachable == set(instance.sensor_ids)

    def test_nodes_inside_floor(self, instance):
        for node in instance.template.nodes:
            assert instance.plan.contains(node.location)


class TestSynthetic:
    def test_deterministic(self):
        a = synthetic_template(40, 10, seed=7)
        b = synthetic_template(40, 10, seed=7)
        assert [n.location for n in a.template.nodes] == [
            n.location for n in b.template.nodes
        ]

    def test_counts(self):
        instance = synthetic_template(60, 25, seed=1)
        template = instance.template
        assert len(template.sensors) == 25
        assert len(template.sinks) == 1
        assert template.node_count == 60

    def test_density_roughly_constant(self):
        small = synthetic_template(50, 10, seed=0)
        large = synthetic_template(200, 10, seed=0)
        density_small = 50 / small.plan.bounds.area
        density_large = 200 / large.plan.bounds.area
        assert density_small == pytest.approx(density_large, rel=0.01)

    def test_too_many_end_devices_rejected(self):
        with pytest.raises(ValueError):
            synthetic_template(10, 10)

    def test_sensors_connected(self):
        instance = synthetic_template(80, 20, seed=2)
        for sensor in instance.sensor_ids:
            dist = shortest_path_tree(instance.template.graph, sensor)
            assert instance.sink_id in dist


class TestLocalization:
    def test_counts(self):
        instance = localization_template(
            n_anchor_candidates=40, n_test_points=25
        )
        assert len(instance.template.anchors) == 40
        assert len(instance.test_points) == 25

    def test_paper_default_size(self):
        instance = localization_template()
        assert len(instance.template.anchors) == 150
        assert len(instance.test_points) == 135

    def test_star_topology_has_no_links(self):
        instance = localization_template(30, 10)
        assert instance.template.edge_count == 0

    def test_anchors_optional(self):
        instance = localization_template(30, 10)
        assert all(not n.fixed for n in instance.template.nodes)


class TestSmallGrid:
    def test_layout(self):
        instance = small_grid_template(nx=4, ny=3)
        assert len(instance.sensor_ids) == 3
        assert instance.sink_id >= 0
        assert instance.template.node_count == 12

    def test_sensor_column_on_left(self):
        instance = small_grid_template(nx=4, ny=3, spacing=8.0)
        for sensor in instance.sensor_ids:
            assert instance.template.node(sensor).location.x == 8.0
