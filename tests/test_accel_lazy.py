"""The lazy-constraint resolve loop (exactness and annotations)."""

import pytest

from repro.accel import LazyCutSolver
from repro.core.explorer import DataCollectionExplorer
from repro.encoding.approximate import ApproximatePathEncoder
from repro.library import default_catalog
from repro.milp import HighsSolver, Model, SolveStatus, lin_sum
from repro.network import (
    LinkQualityRequirement,
    RequirementSet,
    small_grid_template,
)


def conflict_model(n=6, demand=3):
    """Cover ``demand`` of ``n`` binaries; ``lq[..]`` rows forbid
    adjacent pairs, so the relaxation's cheap picks get separated."""
    m = Model("lazy-test")
    xs = [m.binary(f"x{i}") for i in range(n)]
    m.add(lin_sum(xs) >= demand, "pick:count")
    for i in range(n - 1):
        m.add(xs[i] + xs[i + 1] <= 1, f"lq[{i},{i + 1}]:snr")
    m.minimize(lin_sum([(i + 1) * x for i, x in enumerate(xs)]))
    return m


class TestResolveLoop:
    def test_matches_the_cold_solve_exactly(self):
        cold = HighsSolver().solve(conflict_model())
        lazy = LazyCutSolver(HighsSolver()).solve(conflict_model())
        assert lazy.status is SolveStatus.OPTIMAL
        assert lazy.objective == pytest.approx(cold.objective)

    def test_annotation_records_the_rounds(self):
        sol = LazyCutSolver(HighsSolver()).solve(conflict_model())
        info = sol.extra["lazy_cuts"]
        assert info["families"] == ["lq["]
        assert len(info["rounds"]) >= 1
        # The adjacency rows do bind here, so at least one separation
        # round must have added cuts.
        assert info["cuts_added"] >= 1
        # The last round's incumbent is clean: nothing left violated.
        assert info["rounds"][-1]["violated"] == 0

    def test_no_deferred_rows_is_a_plain_solve(self):
        m = Model()
        x = m.binary("x")
        m.add(x >= 1, "pin")
        m.minimize(x)
        sol = LazyCutSolver(HighsSolver()).solve(m)
        assert sol.status is SolveStatus.OPTIMAL
        assert "lazy_cuts" not in sol.extra

    def test_infeasibility_detected_through_the_loop(self):
        # Relaxation feasible, full model not: the loop must keep
        # separating until the added rows prove infeasibility.
        m = conflict_model(n=4, demand=3)  # 3 of 4 with no adjacency: no
        sol = LazyCutSolver(HighsSolver()).solve(m)
        assert sol.status is SolveStatus.INFEASIBLE

    def test_round_cap_backstop_stays_exact(self):
        cold = HighsSolver().solve(conflict_model())
        capped = LazyCutSolver(HighsSolver(), max_rounds=1)
        sol = capped.solve(conflict_model())
        assert sol.status is SolveStatus.OPTIMAL
        assert sol.objective == pytest.approx(cold.objective)
        # The backstop round re-adds everything still deferred.
        assert sol.extra["lazy_cuts"]["still_deferred"] == 0

    def test_with_time_limit_returns_a_configured_copy(self):
        solver = LazyCutSolver(HighsSolver(), max_rounds=3, tol=1e-5,
                               min_deferred_fraction=0.25)
        clipped = solver.with_time_limit(1.5)
        assert clipped is not solver
        assert clipped.max_rounds == 3
        assert clipped.tol == 1e-5
        assert clipped.min_deferred_fraction == 0.25
        assert clipped.solver.time_limit == 1.5

    def test_sliver_of_deferrable_rows_skips_the_loop(self):
        # One lq row among many others: each separation round would cost
        # nearly a full solve, so the loop solves intact and says so.
        m = Model()
        xs = [m.binary(f"x{i}") for i in range(8)]
        m.add(lin_sum(xs) >= 4, "pick:count")
        for i in range(20):
            m.add(xs[i % 8] + xs[(i + 1) % 8] <= 2, f"pad{i}")
        m.add(xs[0] + xs[1] <= 1, "lq[0,1]:snr")
        m.minimize(lin_sum([(i + 1) * x for i, x in enumerate(xs)]))
        cold = HighsSolver().solve(m)
        sol = LazyCutSolver(HighsSolver()).solve(m)
        assert sol.status is SolveStatus.OPTIMAL
        assert sol.objective == pytest.approx(cold.objective)
        info = sol.extra["lazy_cuts"]
        assert "skipped" in info
        assert info["rounds"] == []
        assert info["cuts_added"] == 0


class TestExplorerIntegration:
    def test_lazy_cuts_preserve_the_objective(self):
        instance = small_grid_template(nx=4, ny=3, spacing=8.0)
        reqs = RequirementSet()
        for sensor in instance.sensor_ids:
            reqs.require_route(sensor, instance.sink_id, replicas=2)
        reqs.link_quality = LinkQualityRequirement(min_snr_db=20.0)
        cold = DataCollectionExplorer(
            instance.template, default_catalog(), reqs,
            encoder=ApproximatePathEncoder(k_star=5),
        ).solve("cost")
        lazy = DataCollectionExplorer(
            instance.template, default_catalog(), reqs,
            encoder=ApproximatePathEncoder(k_star=5), lazy_cuts=True,
        ).solve("cost")
        assert lazy.feasible
        assert lazy.objective_value == pytest.approx(cold.objective_value)
        assert "lazy_cuts" in lazy.solution.extra
