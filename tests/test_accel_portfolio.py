"""The portfolio racer and the merged incumbent trajectory."""

import threading
import time

import numpy as np
import pytest

from repro.accel import merge_trajectories, race_portfolio
from repro.accel.tabu import TabuResult
from repro.core.explorer import DataCollectionExplorer
from repro.encoding.approximate import ApproximatePathEncoder
from repro.library import default_catalog
from repro.milp.solution import Solution, SolveStatus
from repro.network import (
    LinkQualityRequirement,
    RequirementSet,
    small_grid_template,
)


def event(elapsed_s, incumbent, **extra):
    return {
        "kind": "incumbent", "nodes": 0, "incumbent": incumbent,
        "bound": None, "elapsed_s": elapsed_s, **extra,
    }


class TestMergeTrajectories:
    def test_two_racing_solvers_merge_monotone_with_sources(self):
        # The satellite contract: when two solvers race, the merged
        # curve is monotone non-increasing and every event carries the
        # label of the solver that actually produced it.
        merged = merge_trajectories({
            "tabu": [event(0.001, 140.0), event(0.004, 120.0),
                     event(0.030, 118.0)],
            "exact": [event(0.010, 125.0), event(0.020, 100.0)],
        })
        incumbents = [e["incumbent"] for e in merged]
        assert incumbents == [140.0, 120.0, 100.0]
        assert [e["source"] for e in merged] == ["tabu", "tabu", "exact"]
        elapsed = [e["elapsed_s"] for e in merged]
        assert elapsed == sorted(elapsed)

    def test_non_improving_events_are_dropped(self):
        merged = merge_trajectories({
            "a": [event(0.1, 10.0), event(0.2, 10.0), event(0.3, 12.0)],
        })
        assert [e["incumbent"] for e in merged] == [10.0]

    def test_pre_existing_source_label_wins(self):
        merged = merge_trajectories({
            "outer": [event(0.1, 5.0, source="inner")],
        })
        assert merged[0]["source"] == "inner"

    def test_non_incumbent_and_empty_events_ignored(self):
        merged = merge_trajectories({
            "a": [{"kind": "done", "elapsed_s": 0.5},
                  event(0.1, None), event(0.2, 3.0)],
        })
        assert [e["incumbent"] for e in merged] == [3.0]


class FakeSynthesizer:
    name = "tabu"

    def __init__(self, result, wait_for_stop=False):
        self.result = result
        self.wait_for_stop = wait_for_stop
        self.stop_seen = threading.Event()

    def synthesize(self, *, stop=None, progress=None):
        if self.wait_for_stop and stop is not None:
            while not stop():
                pass
            self.stop_seen.set()
        return self.result


def tabu_result(objective=120.0, feasible=True):
    return TabuResult(
        architecture=object() if feasible else None,
        objective=objective if feasible else float("inf"),
        feasible=feasible,
        iterations=10,
        trajectory=[event(0.001, objective, source="tabu")] if feasible
        else [],
        first_incumbent_s=0.001 if feasible else None,
    )


class TestRacePortfolio:
    def test_exact_wins_when_at_least_as_good(self):
        exact_solution = Solution(
            status=SolveStatus.OPTIMAL, objective=100.0,
            x=np.zeros(1), solve_time=0.01,
        )

        def slow_exact():
            # Slower than the tabu incumbent at 1 ms, so time-to-first-
            # incumbent is the tabu side's.
            time.sleep(0.05)
            return exact_solution

        synth = FakeSynthesizer(tabu_result(120.0), wait_for_stop=True)
        sol = race_portfolio(slow_exact, synth)
        assert synth.stop_seen.is_set()  # the stop signal reached tabu
        assert sol.objective == pytest.approx(100.0)
        meta = sol.extra["portfolio"]
        assert meta["winner"] == "exact"
        assert meta["first_incumbent_source"] == "tabu"
        assert meta["first_incumbent_s"] == pytest.approx(0.001)

    def test_exact_crash_degrades_to_the_tabu_incumbent(self):
        def exploding():
            raise RuntimeError("backend died")

        sol = race_portfolio(
            exploding, FakeSynthesizer(tabu_result(120.0))
        )
        assert sol.status is SolveStatus.FEASIBLE
        assert sol.objective == pytest.approx(120.0)
        assert sol.extra["portfolio"]["winner"] == "tabu"
        assert sol.extra["portfolio"]["exact_status"] == "error"
        assert "tabu_architecture" in sol.extra

    def test_tabu_win_lifted_into_an_assignment(self):
        lifted = Solution(
            status=SolveStatus.FEASIBLE, objective=120.0, x=np.ones(3),
        )
        sol = race_portfolio(
            lambda: Solution(status=SolveStatus.TIMEOUT),
            FakeSynthesizer(tabu_result(120.0)),
            assignment_of=lambda arch: lifted,
        )
        assert sol is lifted
        assert sol.x is not None
        assert sol.extra["portfolio"]["winner"] == "tabu"

    def test_both_sides_empty_is_the_exact_status(self):
        sol = race_portfolio(
            lambda: Solution(status=SolveStatus.INFEASIBLE),
            FakeSynthesizer(tabu_result(feasible=False)),
        )
        assert sol.status is SolveStatus.INFEASIBLE
        assert sol.extra["portfolio"]["winner"] == "none"

    def test_terminal_incumbent_synthesized_for_quiet_backends(self):
        # A backend without progress callbacks still contributes one
        # terminal event, so the merged curve always ends at the final
        # objective.
        exact_solution = Solution(
            status=SolveStatus.OPTIMAL, objective=90.0, x=np.zeros(1),
        )
        sol = race_portfolio(
            lambda: exact_solution, FakeSynthesizer(tabu_result(120.0))
        )
        trajectory = sol.extra["incumbent_trajectory"]
        assert trajectory[-1]["incumbent"] == pytest.approx(90.0)
        assert trajectory[-1]["source"] == "exact"


class TestExplorerIntegration:
    def test_portfolio_returns_a_feasible_design(self):
        instance = small_grid_template(nx=4, ny=3, spacing=8.0)
        reqs = RequirementSet()
        for sensor in instance.sensor_ids:
            reqs.require_route(sensor, instance.sink_id, replicas=2)
        reqs.link_quality = LinkQualityRequirement(min_snr_db=20.0)
        result = DataCollectionExplorer(
            instance.template, default_catalog(), reqs,
            encoder=ApproximatePathEncoder(k_star=5), portfolio=True,
        ).solve("cost")
        assert result.feasible
        meta = result.solution.extra["portfolio"]
        assert meta["winner"] in ("exact", "tabu")
        trajectory = result.solution.extra["incumbent_trajectory"]
        incumbents = [e["incumbent"] for e in trajectory]
        assert incumbents == sorted(incumbents, reverse=True)
        assert {e["source"] for e in trajectory} <= {"tabu", "exact"}
