"""Tests for the pattern-language parser."""

import pytest

from repro.spec import SpecError, parse_spec
from repro.spec.patterns import (
    Battery,
    DisjointLinks,
    HasPath,
    HasPaths,
    HopBound,
    MinLifetime,
    MinReachable,
    MinRss,
    MinSnr,
    Objective,
    Tdma,
)


class TestParseBasics:
    def test_comments_and_blanks_ignored(self):
        text = """
        # a comment
        min_rss(-80)   # trailing comment

        """
        (stmt,) = parse_spec(text)
        assert stmt == MinRss(-80.0)

    def test_named_has_path(self):
        (stmt,) = parse_spec("p1 = has_path(sensor[0], sink)")
        assert stmt == HasPath("p1", "sensor[0]", "sink")

    def test_has_path_without_name_rejected(self):
        with pytest.raises(SpecError, match="needs a name"):
            parse_spec("has_path(a, b)")

    def test_name_on_other_pattern_rejected(self):
        with pytest.raises(SpecError, match="does not take a name"):
            parse_spec("x = min_rss(-80)")

    def test_unparseable_line_reports_number(self):
        with pytest.raises(SpecError, match="line 2"):
            parse_spec("min_rss(-80)\nthis is not a pattern")

    def test_unknown_pattern(self):
        with pytest.raises(SpecError, match="unknown pattern"):
            parse_spec("frobnicate(1)")


class TestPatternArguments:
    def test_has_paths_kwargs(self):
        (stmt,) = parse_spec("has_paths(sensors, sink, replicas=2, disjoint=true)")
        assert stmt == HasPaths("sensors", "sink", replicas=2, disjoint=True)

    def test_has_paths_defaults(self):
        (stmt,) = parse_spec("has_paths(sensors, sink)")
        assert stmt.replicas == 1 and stmt.disjoint is True

    def test_disjoint_links(self):
        (stmt,) = parse_spec("disjoint_links(p1, p2, p3)")
        assert stmt == DisjointLinks(("p1", "p2", "p3"))

    def test_disjoint_links_needs_two(self):
        with pytest.raises(SpecError):
            parse_spec("disjoint_links(p1)")

    def test_hop_bounds(self):
        stmts = parse_spec("max_hops(p, 4)\nmin_hops(q, 2)\nexact_hops(r, 3)")
        assert stmts[0] == HopBound("max", "p", 4)
        assert stmts[1] == HopBound("min", "q", 2)
        assert stmts[2] == HopBound("exact", "r", 3)

    def test_quality_patterns(self):
        stmts = parse_spec("min_signal_to_noise(20)\nmin_rss(-75.5)")
        assert stmts[0] == MinSnr(20.0)
        assert stmts[1] == MinRss(-75.5)

    def test_lifetime(self):
        (stmt,) = parse_spec("min_network_lifetime(5)")
        assert stmt == MinLifetime(5.0)

    def test_reachable_positional_rss(self):
        (stmt,) = parse_spec("min_reachable_devices(3, -80)")
        assert stmt == MinReachable(3, -80.0)

    def test_reachable_kwarg_rss(self):
        (stmt,) = parse_spec("min_reachable_devices(4, rss=-75)")
        assert stmt == MinReachable(4, -75.0)

    def test_tdma_and_battery(self):
        stmts = parse_spec(
            "tdma(slots=32, slot_ms=2, report_s=60)\n"
            "battery(mah=1500, packet_bytes=100)"
        )
        assert stmts[0] == Tdma(slots=32, slot_ms=2.0, report_s=60.0)
        assert stmts[1] == Battery(mah=1500.0, packet_bytes=100.0)

    def test_positional_after_keyword_rejected(self):
        with pytest.raises(SpecError, match="positional"):
            parse_spec("has_paths(sensors, sink, replicas=2, extra)")


class TestObjective:
    def test_single_term(self):
        (stmt,) = parse_spec("objective(cost)")
        assert stmt == Objective((("cost", 1.0),))

    def test_weighted_sum(self):
        (stmt,) = parse_spec("objective(0.5*cost + 0.5*energy)")
        assert stmt == Objective((("cost", 0.5), ("energy", 0.5)))

    def test_mixed_weights(self):
        (stmt,) = parse_spec("objective(cost + 2*energy)")
        assert stmt == Objective((("cost", 1.0), ("energy", 2.0)))

    def test_bad_term_rejected(self):
        with pytest.raises(SpecError, match="objective term"):
            parse_spec("objective(cost * energy)")
