"""Checkpoint/resume and deadline behaviour of the K* ladder search.

Uses scripted fake explorers (no MILP solves), so an interrupted ladder
can be replayed exactly and the resumed run compared rung for rung.
"""

import pytest

from repro.milp.solution import Solution, SolveStatus
from repro.resilience import DeadlineBudget, injected_faults
from repro.resilience.faults import InjectedFault
from repro.core.kstar_search import kstar_search
from repro.core.options import SolveOptions

#: K* -> (objective, seconds); chosen so K=5 wins and K=10 stops the scan.
OBJECTIVES = {1: 120.0, 3: 100.0, 5: 80.0, 10: 80.0, 20: 80.0}


class FakeResult:
    """Quacks like a SynthesisResult as far as the ladder scan needs."""

    def __init__(self, objective, seconds=0.5):
        self.status = SolveStatus.OPTIMAL
        self.feasible = True
        self.objective_value = objective
        self.total_seconds = seconds
        self.objective_terms = {"cost": objective}
        self.solution = Solution(
            status=SolveStatus.OPTIMAL, objective=objective
        )

    def stats_dict(self):
        return {"status": "optimal", "objective": self.objective_value}


class FakeExplorer:
    def __init__(self, k, log=None):
        self.k = k
        self.cache = None
        self.solver = None
        self.log = log if log is not None else []

    def solve(self, objective):
        self.log.append(self.k)
        return FakeResult(OBJECTIVES[self.k])


def make_factory(log):
    return lambda k: FakeExplorer(k, log)


class TestCheckpointResume:
    def test_uninterrupted_run_with_checkpoint(self, tmp_path):
        path = tmp_path / "ladder.jsonl"
        log = []
        search = kstar_search(
            make_factory(log), ladder=(1, 3, 5, 10),
            options=SolveOptions(checkpoint=path),
        )
        assert search.best.k_star == 5
        assert search.restored_ks == ()
        assert path.exists()

    def test_killed_ladder_resumes_and_selects_same_rung(self, tmp_path):
        path = tmp_path / "ladder.jsonl"
        baseline = kstar_search(make_factory([]), ladder=(1, 3, 5, 10))

        # Kill the run right after the second rung checkpoints.
        with injected_faults({"kstar.abort": [1]}):
            with pytest.raises(InjectedFault):
                kstar_search(
                    make_factory([]), ladder=(1, 3, 5, 10),
                    options=SolveOptions(checkpoint=path),
                )

        log = []
        resumed = kstar_search(
            make_factory(log), ladder=(1, 3, 5, 10),
            options=SolveOptions(checkpoint=path, resume=True),
        )
        # Completed rungs were replayed, not re-solved.
        assert resumed.restored_ks == (1, 3)
        assert log == [5, 10]
        # Identical selection and identical recorded numbers.
        assert resumed.best.k_star == baseline.best.k_star
        assert resumed.best.objective == baseline.best.objective
        assert resumed.stop_reason == baseline.stop_reason
        assert [t.k_star for t in resumed.trials] == [
            t.k_star for t in baseline.trials
        ]
        assert [t.objective for t in resumed.trials] == [
            t.objective for t in baseline.trials
        ]

    def test_fully_checkpointed_run_resolves_nothing(self, tmp_path):
        path = tmp_path / "ladder.jsonl"
        kstar_search(make_factory([]), ladder=(1, 3, 5, 10),
                     options=SolveOptions(checkpoint=path))
        log = []
        resumed = kstar_search(
            make_factory(log), ladder=(1, 3, 5, 10),
            options=SolveOptions(checkpoint=path, resume=True),
        )
        assert log == []
        assert resumed.best.k_star == 5
        assert set(resumed.restored_ks) == {1, 3, 5, 10}

    def test_without_resume_flag_checkpoint_is_overwritten(self, tmp_path):
        path = tmp_path / "ladder.jsonl"
        kstar_search(make_factory([]), ladder=(1, 3),
                     options=SolveOptions(checkpoint=path))
        log = []
        kstar_search(make_factory(log), ladder=(1, 3),
                     options=SolveOptions(checkpoint=path))
        assert log == [1, 3]  # solved fresh, no replay

    def test_mismatched_ladder_refused(self, tmp_path):
        from repro.resilience import CheckpointError

        path = tmp_path / "ladder.jsonl"
        kstar_search(make_factory([]), ladder=(1, 3),
                     options=SolveOptions(checkpoint=path))
        with pytest.raises(CheckpointError):
            kstar_search(
                make_factory([]), ladder=(1, 3, 5),
                options=SolveOptions(checkpoint=path, resume=True),
            )

    def test_parallel_resume_matches_sequential(self, tmp_path):
        path = tmp_path / "ladder.jsonl"
        with injected_faults({"kstar.abort": [0]}):
            with pytest.raises(InjectedFault):
                kstar_search(
                    make_factory([]), ladder=(1, 3, 5, 10),
                    options=SolveOptions(checkpoint=path),
                )
        resumed = kstar_search(
            make_factory([]), ladder=(1, 3, 5, 10),
            options=SolveOptions(checkpoint=path, resume=True, parallel=2),
        )
        assert resumed.restored_ks == (1,)
        assert resumed.best.k_star == 5


class TestDeadline:
    def test_expired_budget_stops_ladder(self):
        clock_now = [0.0]
        budget = DeadlineBudget(1.0, clock=lambda: clock_now[0])
        solved = []

        def factory(k):
            explorer = FakeExplorer(k, solved)
            original = explorer.solve

            def timed_solve(objective):
                clock_now[0] += 0.6  # each rung burns 0.6 s
                return original(objective)

            explorer.solve = timed_solve
            return explorer

        search = kstar_search(factory, ladder=(1, 3, 5, 10), budget=budget)
        # Rung 1 (0.6 s) and rung 3 (1.2 s total) run; rung 5 starts
        # after expiry and is skipped.
        assert solved == [1, 3]
        assert search.stop_reason == "deadline exhausted"
        assert search.best.k_star == 3

    def test_deadline_does_not_mask_improvement_stop(self):
        budget = DeadlineBudget(1e9)
        search = kstar_search(
            make_factory([]), ladder=(1, 3, 5, 10), budget=budget
        )
        assert search.stop_reason == "no further improvement"


class TestResilientWiring:
    def test_retry_wraps_rung_solver(self):
        from repro.resilience import ResilientSolver, RetryPolicy

        seen = []

        def factory(k):
            explorer = FakeExplorer(k)
            explorer.solver = object()
            original = explorer.solve

            def check_solve(objective):
                seen.append(type(explorer.solver))
                return original(objective)

            explorer.solve = check_solve
            return explorer

        kstar_search(factory, ladder=(1, 3), retry=RetryPolicy(max_retries=1))
        assert all(cls is ResilientSolver for cls in seen)


class TestParallelDeadline:
    def test_parallel_deadline_degrades_gracefully(self):
        """A budget spent mid-ladder must yield 'deadline exhausted', not
        an uncaught TimeoutError from outcome.unwrap()."""
        clock_now = [0.0]
        budget = DeadlineBudget(1.0, clock=lambda: clock_now[0])
        solved = []

        def factory(k):
            explorer = FakeExplorer(k, solved)
            original = explorer.solve

            def timed_solve(objective):
                clock_now[0] += 0.6  # each rung burns 0.6 s
                return original(objective)

            explorer.solve = timed_solve
            return explorer

        from repro.runtime import BatchRunner

        # Two sequential inline workers would be nondeterministic under a
        # real pool; a workers=1 runner drives the *parallel* code path
        # deterministically (runner is not None => parallel branch).
        runner = BatchRunner(workers=1, budget=budget)
        search = kstar_search(
            factory, ladder=(1, 3, 5, 10), budget=budget, runner=runner
        )
        assert solved == [1, 3]  # rung 5 started after expiry
        assert search.stop_reason == "deadline exhausted"
        assert search.best.k_star == 3

    def test_parallel_checkpoint_streams_per_rung(self, tmp_path):
        """Each rung's record lands on disk as its solve completes, so a
        kill mid-batch keeps the finished rungs (not just the extremes)."""
        import json

        from repro.runtime import BatchRunner

        path = tmp_path / "ladder.jsonl"
        kstar_search(
            make_factory([]), ladder=(1, 3, 5, 10),
            options=SolveOptions(checkpoint=path),
            runner=BatchRunner(workers=1),
        )
        # All consumed rungs are recorded...
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        header, records = lines[0], lines[1:]
        assert header["meta"]["ladder"] == [1, 3, 5, 10]
        assert [r["k_star"] for r in records] == [1, 3, 5, 10]
        # ...and a crash on rung 3 of a fresh run still persists rung 1.
        path2 = tmp_path / "killed.jsonl"

        def crashing_factory(k):
            explorer = FakeExplorer(k)
            if k == 5:
                def boom(objective):
                    raise RuntimeError("worker died")
                explorer.solve = boom
            return explorer

        with pytest.raises(RuntimeError):
            kstar_search(
                crashing_factory, ladder=(1, 3, 5, 10),
                options=SolveOptions(checkpoint=path2),
                runner=BatchRunner(workers=1, retries=0),
            )
        recorded = [
            json.loads(l)["k_star"]
            for l in path2.read_text().splitlines()[1:]
        ]
        # Every *completed* rung persisted — including 10, which finished
        # after the crash of rung 5; only the crashed rung is missing.
        assert recorded == [1, 3, 10]
        log = []
        resumed = kstar_search(
            make_factory(log), ladder=(1, 3, 5, 10),
            options=SolveOptions(checkpoint=path2, resume=True),
        )
        assert log == [5]  # only the crashed rung is re-solved
        assert resumed.best.k_star == 5
