"""Failure-pattern generators: determinism, stable ids, containment.

The properties a checkpoint/telemetry consumer relies on: generation is
a pure function of (template, spec) — same seed, same patterns; pattern
ids are content-addressed and order-independent; and no generator ever
invents an element the template does not contain.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import small_grid_template, synthetic_template
from repro.failures import (
    DEFAULT_MAX_PATTERNS,
    FailurePattern,
    FailuresSpec,
    generate_patterns,
    k_link_patterns,
    k_node_patterns,
    parse_failures_spec,
    patterns_fingerprint,
    quadrant_regions,
    region_outage_patterns,
    wall_outage_patterns,
)
from repro.geometry.floorplan import FloorPlan, Wall
from repro.geometry.primitives import Point, Rectangle, Segment

GRID = small_grid_template(nx=4, ny=3, spacing=8.0)

FAST = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def walled_plan():
    """A vertical brick wall between grid columns x=16 and x=24."""
    return FloorPlan(
        bounds=Rectangle(0.0, 0.0, 40.0, 32.0),
        walls=[Wall(Segment(Point(20.0, 4.0), Point(20.0, 20.0)),
                    "brick", 10.0)],
        name="walled-grid",
    )


class TestPatternIds:
    def test_id_is_content_addressed(self):
        a = FailurePattern("node1", "a-label", nodes=frozenset({5}))
        b = FailurePattern("node1", "another-label", nodes=frozenset({5}))
        assert a.pattern_id == b.pattern_id
        assert a.pattern_id.startswith("node1-")

    def test_id_distinguishes_families_and_elements(self):
        node = FailurePattern("node1", "5", nodes=frozenset({5}))
        link = FailurePattern("link1", "4-5",
                              links=frozenset({(4, 5), (5, 4)}))
        other = FailurePattern("node1", "6", nodes=frozenset({6}))
        assert len({node.pattern_id, link.pattern_id,
                    other.pattern_id}) == 3

    def test_empty_pattern_rejected(self):
        with pytest.raises(ValueError):
            FailurePattern("node1", "nothing")

    def test_kills_route(self):
        pattern = FailurePattern(
            "mixed", "m", nodes=frozenset({9}),
            links=frozenset({(0, 3)}),
        )
        assert pattern.kills_route((5, 9, 7))        # node loss
        assert pattern.kills_route((0, 3, 7))        # directed link loss
        assert not pattern.kills_route((3, 0, 7))    # other direction
        assert not pattern.kills_route((0, 4, 7))

    def test_fingerprint_is_order_independent(self):
        patterns = k_link_patterns(GRID.template, 1)
        shuffled = list(patterns)
        random.Random(3).shuffle(shuffled)
        assert patterns_fingerprint(shuffled) == \
            patterns_fingerprint(patterns)
        assert patterns_fingerprint(patterns) != \
            patterns_fingerprint(patterns[1:])


class TestGeneratorProperties:
    @FAST
    @given(seed=st.integers(0, 500), k=st.integers(1, 2),
           cap=st.integers(1, 40))
    def test_seed_determinism(self, seed, k, cap):
        first = k_link_patterns(GRID.template, k, seed=seed,
                                max_patterns=cap)
        again = k_link_patterns(GRID.template, k, seed=seed,
                                max_patterns=cap)
        assert [p.pattern_id for p in first] == \
            [p.pattern_id for p in again]
        assert len(first) <= cap

    @FAST
    @given(seed=st.integers(0, 10), k=st.integers(1, 2))
    def test_elements_come_from_the_template(self, seed, k):
        instance = synthetic_template(18, 5, seed=seed)
        template = instance.template
        optional = {n.id for n in template.nodes if not n.fixed}
        edges = {(u, v) for u, v, _ in template.edges()}
        for pattern in k_node_patterns(template, k, seed=seed):
            assert pattern.nodes <= optional
        for pattern in k_link_patterns(template, k, seed=seed,
                                       max_patterns=64):
            assert pattern.links <= edges

    def test_sampling_is_a_subset_of_full_enumeration(self):
        full = {p.pattern_id
                for p in k_link_patterns(GRID.template, 2,
                                         max_patterns=None)}
        sampled = k_link_patterns(GRID.template, 2, seed=7,
                                  max_patterns=9)
        assert len(sampled) == 9
        assert {p.pattern_id for p in sampled} <= full

    def test_node_patterns_skip_fixed_and_excluded(self):
        fixed = {n.id for n in GRID.template.nodes if n.fixed}
        for pattern in k_node_patterns(GRID.template, 1, exclude=(5,)):
            assert not pattern.nodes & fixed
            assert 5 not in pattern.nodes

    def test_k_must_be_positive(self):
        with pytest.raises(ValueError):
            k_link_patterns(GRID.template, 0)
        with pytest.raises(ValueError):
            k_node_patterns(GRID.template, 0)


class TestGeometricFamilies:
    def test_wall_outage_kills_every_crossing_link(self):
        plan = walled_plan()
        patterns = wall_outage_patterns(GRID.template, plan)
        assert len(patterns) == 1
        (pattern,) = patterns
        assert pattern.family == "wall"
        wall = plan.walls[0].segment
        for u, v in pattern.links:
            link = Segment(GRID.template.node(u).location,
                           GRID.template.node(v).location)
            assert wall.intersects(link)
        # The straight-through route 0 -> 7 crosses the wall.
        assert pattern.kills_route((0, 7))

    def test_quadrants_tile_the_bounds(self):
        plan = walled_plan()
        quads = quadrant_regions(plan)
        assert len(quads) == 4
        for node in GRID.template.nodes:
            assert any(q.contains(node.location) for q in quads)

    def test_region_outages_only_fail_optional_nodes(self):
        patterns = region_outage_patterns(
            GRID.template, plan=walled_plan()
        )
        assert patterns
        fixed = {n.id for n in GRID.template.nodes if n.fixed}
        for pattern in patterns:
            assert pattern.family == "region"
            assert not pattern.nodes & fixed

    def test_regions_need_a_plan_or_rectangles(self):
        with pytest.raises(ValueError, match="floor plan"):
            region_outage_patterns(GRID.template)


class TestSpecGrammar:
    @FAST
    @given(
        k_link=st.none() | st.integers(1, 3),
        k_node=st.none() | st.integers(1, 3),
        walls=st.booleans(),
        regions=st.booleans(),
        seed=st.integers(0, 9),
        max_patterns=st.integers(1, 600),
        rounds=st.integers(1, 9),
        worst=st.integers(1, 9),
    )
    def test_describe_round_trips(self, k_link, k_node, walls, regions,
                                  seed, max_patterns, rounds, worst):
        spec = FailuresSpec(
            k_link=k_link, k_node=k_node, walls=walls, regions=regions,
            seed=seed, max_patterns=max_patterns, rounds=rounds,
            worst=worst,
        )
        if (k_link is None and k_node is None
                and not walls and not regions):
            return  # no family: describe() has nothing to round-trip
        assert parse_failures_spec(spec.describe()) == spec

    def test_parse_defaults(self):
        spec = parse_failures_spec("k-link:1")
        assert spec.k_link == 1 and spec.k_node is None
        assert spec.max_patterns == DEFAULT_MAX_PATTERNS
        assert spec.rounds == 4 and spec.worst == 3

    @pytest.mark.parametrize("bad", [
        "jitter:1",          # unknown term
        "k-link:zero",       # non-integer count
        "k-link:0",          # non-positive count
        "walls:2",           # flag with an argument
        "seed:4",            # no family at all
        "",                  # empty spec
    ])
    def test_parse_rejects(self, bad):
        with pytest.raises(ValueError):
            parse_failures_spec(bad)

    def test_generate_patterns_deduplicates(self):
        patterns = generate_patterns("k-link:1,k-node:1", GRID.template)
        ids = [p.pattern_id for p in patterns]
        assert len(ids) == len(set(ids))
        families = {p.family for p in patterns}
        assert families == {"link1", "node1"}

    def test_generate_requires_plan_for_geometry(self):
        with pytest.raises(ValueError, match="floor plan"):
            generate_patterns("walls", GRID.template)
        assert generate_patterns("walls", GRID.template, walled_plan())
