"""Tests for the localization constraints (4a)-(4b)."""

import pytest

from repro.constraints import build_localization, build_mapping
from repro.core import AnchorPlacementExplorer
from repro.library import localization_catalog
from repro.milp import Model
from repro.network import ReachabilityRequirement, RequirementSet
from repro.validation import validate


class TestBuildLocalization:
    def test_pruning_limits_variables(self, loc_instance, loc_requirement):
        model = Model()
        mapping = build_mapping(
            model, loc_instance.template, localization_catalog()
        )
        k_star = 8
        loc = build_localization(
            model, loc_instance.template, mapping, loc_requirement,
            loc_instance.channel, k_star=k_star,
        )
        assert len(loc.reach) == k_star * len(loc_requirement.test_points)

    def test_candidates_are_lowest_loss(self, loc_instance, loc_requirement):
        model = Model()
        mapping = build_mapping(
            model, loc_instance.template, localization_catalog()
        )
        k_star = 5
        loc = build_localization(
            model, loc_instance.template, mapping, loc_requirement,
            loc_instance.channel, k_star=k_star,
        )
        anchors = loc_instance.template.anchors
        for j, point in enumerate(loc_requirement.test_points):
            chosen = {a for (a, jj) in loc.reach if jj == j}
            losses = sorted(
                loc_instance.channel.path_loss_db(a.location, point)
                for a in anchors
            )
            cutoff = losses[k_star - 1]
            for anchor_id in chosen:
                anchor = loc_instance.template.node(anchor_id)
                pl = loc_instance.channel.path_loss_db(anchor.location, point)
                assert pl <= cutoff + 1e-9

    def test_k_star_below_min_anchors_rejected(
        self, loc_instance, loc_requirement
    ):
        model = Model()
        mapping = build_mapping(
            model, loc_instance.template, localization_catalog()
        )
        with pytest.raises(ValueError):
            build_localization(
                model, loc_instance.template, mapping, loc_requirement,
                loc_instance.channel, k_star=2,
            )

    def test_template_without_anchors_rejected(self, loc_requirement):
        from repro.library import default_catalog
        from repro.network import small_grid_template

        grid = small_grid_template()
        model = Model()
        mapping = build_mapping(model, grid.template, default_catalog())
        with pytest.raises(ValueError, match="no anchor"):
            build_localization(
                model, grid.template, mapping, loc_requirement,
                grid.channel, k_star=5,
            )


class TestAnchorPlacementExplorer:
    def test_coverage_satisfied(self, loc_instance, loc_requirement,
                                loc_library):
        result = AnchorPlacementExplorer(
            loc_instance.template, loc_library, loc_requirement,
            loc_instance.channel, k_star=10,
        ).solve("cost")
        assert result.feasible
        reqs = RequirementSet(reachability=loc_requirement)
        report = validate(result.architecture, reqs, loc_instance.channel)
        assert report.ok, report.violations[:3]
        assert report.average_reachable >= loc_requirement.min_anchors

    def test_dsod_objective_improves_distance(
        self, loc_instance, loc_requirement, loc_library
    ):
        explorer = AnchorPlacementExplorer(
            loc_instance.template, loc_library, loc_requirement,
            loc_instance.channel, k_star=10,
        )
        cost_r = explorer.solve("cost")
        dsod_r = explorer.solve("dsod")
        assert cost_r.feasible and dsod_r.feasible
        assert (dsod_r.objective_terms["dsod"]
                <= cost_r.objective_terms["dsod"] + 1e-6)
        assert (cost_r.objective_terms["cost"]
                <= dsod_r.objective_terms["cost"] + 1e-6)

    def test_impossible_coverage_infeasible(self, loc_instance, loc_library):
        requirement = ReachabilityRequirement(
            test_points=loc_instance.test_points,
            min_anchors=3,
            min_rss_dbm=-20.0,  # absurdly strong signal demanded
        )
        result = AnchorPlacementExplorer(
            loc_instance.template, loc_library, requirement,
            loc_instance.channel, k_star=10,
        ).solve("cost")
        assert not result.feasible

    def test_more_anchors_required_means_more_nodes(
        self, loc_instance, loc_library
    ):
        def run(n):
            requirement = ReachabilityRequirement(
                test_points=loc_instance.test_points,
                min_anchors=n, min_rss_dbm=-80.0,
            )
            return AnchorPlacementExplorer(
                loc_instance.template, loc_library, requirement,
                loc_instance.channel, k_star=12,
            ).solve("cost")

        few = run(2)
        many = run(4)
        assert few.feasible and many.feasible
        assert (many.architecture.node_count
                >= few.architecture.node_count)
