"""Tests for the HTTP front end, including the SIGKILL/resume story."""

import asyncio
import contextlib
import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.server.http import HttpFrontend
from repro.server.service import SynthesisService
from repro.telemetry.schema import check_tree, validate_record

REPO_ROOT = Path(__file__).resolve().parents[1]
SMALL_KSTAR = {"nodes": 12, "devices": 5, "ladder": [1, 2]}
#: A kstar instance slow enough (~3s, first rung ~0.2s) that a test can
#: reliably SIGKILL the server after the first rung checkpoints but well
#: before the sweep finishes.
SLOW_KSTAR = {
    "nodes": 140, "devices": 45, "ladder": [2, 6, 10, 14, 18],
    "min_relative_gain": -1.0,
}


def _request(method, url, payload=None, timeout=30.0):
    data = None if payload is None else json.dumps(payload).encode()
    req = urllib.request.Request(url, data=data, method=method)
    if data is not None:
        req.add_header("Content-Type", "application/json")
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read() or b"null")
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read() or b"null")


@contextlib.contextmanager
def http_service(**service_kwargs):
    """An in-process service + frontend on an ephemeral port."""
    svc = SynthesisService(**service_kwargs)
    frontend = HttpFrontend(svc, "127.0.0.1", 0)
    loop = asyncio.new_event_loop()
    started = threading.Event()
    task_box = {}

    async def _run():
        await frontend.start()
        started.set()
        try:
            await frontend.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await frontend.stop()

    def _thread():
        asyncio.set_event_loop(loop)
        task_box["task"] = loop.create_task(_run())
        try:
            loop.run_until_complete(task_box["task"])
        finally:
            loop.close()

    thread = threading.Thread(target=_thread, daemon=True)
    thread.start()
    assert started.wait(10.0), "frontend never bound"
    try:
        yield svc, f"http://127.0.0.1:{frontend.port}"
    finally:
        loop.call_soon_threadsafe(task_box["task"].cancel)
        thread.join(timeout=10.0)
        svc.shutdown(timeout=30.0)


class TestEndpoints:
    def test_full_round_trip(self):
        with http_service(workers=1) as (svc, base):
            status, body = _request("GET", f"{base}/healthz")
            assert (status, body) == (200, {"ok": True})

            status, job = _request(
                "POST", f"{base}/v1/jobs",
                {"kind": "kstar", "problem": dict(SMALL_KSTAR)},
            )
            assert status == 202
            assert job["state"] in ("queued", "running", "done")
            job_id = job["id"]

            # Tail the event stream until the job's root span lands;
            # urllib transparently decodes the chunked body.
            records = []
            with urllib.request.urlopen(
                f"{base}/v1/jobs/{job_id}/events", timeout=60.0
            ) as resp:
                assert resp.status == 200
                assert resp.headers["Content-Type"].startswith(
                    "application/x-ndjson"
                )
                for line in resp:
                    records.append(json.loads(line))
            assert records
            problems = []
            for i, record in enumerate(records):
                problems += validate_record(record, where=f"record {i}")
            problems += check_tree(records)
            assert problems == [], problems

            # The stream only ends once the job is terminal.
            status, view = _request("GET", f"{base}/v1/jobs/{job_id}")
            assert status == 200
            assert view["state"] == "done"
            assert view["result"]["ok"] is True
            assert view["result"]["result"]["kind"] == "kstar"

            status, listing = _request("GET", f"{base}/v1/jobs")
            assert status == 200
            assert [j["id"] for j in listing["jobs"]] == [job_id]

    def test_metrics_endpoint(self):
        with http_service(workers=1) as (svc, base):
            status, job = _request(
                "POST", f"{base}/v1/jobs",
                {"kind": "kstar", "problem": dict(SMALL_KSTAR)},
            )
            assert status == 202
            svc.wait(job["id"], timeout=60.0)
            req = urllib.request.Request(f"{base}/metrics")
            with urllib.request.urlopen(req, timeout=10.0) as resp:
                assert resp.status == 200
                assert resp.headers["Content-Type"].startswith("text/plain")
                text = resp.read().decode()
            assert "server_jobs_submitted" in text
            assert "server_jobs_completed" in text

    def test_error_paths(self):
        with http_service(workers=1) as (svc, base):
            status, body = _request("GET", f"{base}/v1/jobs/nope")
            assert status == 404 and "error" in body
            status, _ = _request("GET", f"{base}/v1/jobs/nope/events")
            assert status == 404
            status, _ = _request("GET", f"{base}/no/such/route")
            assert status == 404
            status, body = _request(
                "POST", f"{base}/v1/jobs", {"kind": "mystery"}
            )
            assert status == 400 and "unknown job kind" in body["error"]
            status, _ = _request("DELETE", f"{base}/v1/jobs/nope")
            assert status == 405

            # Raw non-JSON body.
            req = urllib.request.Request(
                f"{base}/v1/jobs", data=b"{not json", method="POST"
            )
            try:
                with urllib.request.urlopen(req, timeout=10.0):
                    raise AssertionError("expected 400")
            except urllib.error.HTTPError as exc:
                assert exc.code == 400


class _ServeProcess:
    """A ``repro serve`` child process with captured stdout."""

    def __init__(self, state_dir: Path) -> None:
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        env["PYTHONUNBUFFERED"] = "1"
        self.proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--port", "0", "--workers", "1",
                "--state-dir", str(state_dir),
            ],
            cwd=REPO_ROOT, env=env,
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        )
        self.lines: list[str] = []
        self._reader = threading.Thread(target=self._drain, daemon=True)
        self._reader.start()

    def _drain(self) -> None:
        assert self.proc.stdout is not None
        for line in self.proc.stdout:
            self.lines.append(line.rstrip("\n"))

    def base_url(self, timeout: float = 30.0) -> str:
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            for line in list(self.lines):
                if line.startswith("serving on "):
                    return line[len("serving on "):].strip()
            if self.proc.poll() is not None:
                raise RuntimeError(
                    "serve exited early:\n" + "\n".join(self.lines)
                )
            time.sleep(0.02)
        raise TimeoutError(
            "serve never reported its address:\n" + "\n".join(self.lines)
        )

    def kill9(self) -> None:
        if self.proc.poll() is None:
            os.kill(self.proc.pid, signal.SIGKILL)
        self.proc.wait(timeout=10.0)


class TestKillResume:
    def test_sigkill_midjob_then_resume(self, tmp_path):
        """The acceptance story: SIGKILL the server while a kstar sweep
        is mid-ladder; a restarted server on the same state dir resumes
        the sweep from its checkpoint and finishes it."""
        first = _ServeProcess(tmp_path)
        try:
            base = first.base_url()
            status, job = _request(
                "POST", f"{base}/v1/jobs",
                {"kind": "kstar", "problem": dict(SLOW_KSTAR)},
                timeout=10.0,
            )
            assert status == 202
            job_id = job["id"]

            # Wait for the first rung to land in the sweep checkpoint
            # (header line + at least one rung record), then pull the
            # plug with several rungs still to solve.
            sweep = tmp_path / f"job-{job_id}.sweep.jsonl"
            deadline = time.monotonic() + 60.0
            while True:
                assert time.monotonic() < deadline, "no rung checkpointed"
                if sweep.exists():
                    lines = sweep.read_text().splitlines()
                    if len(lines) >= 2 and '"k_star"' in lines[-1]:
                        break
                time.sleep(0.02)
            first.kill9()
            assert first.proc.poll() is not None
        finally:
            first.kill9()

        # The job must not have finished: its state file still says
        # queued/running, which is what recovery keys on.
        state = tmp_path / f"job-{job_id}.state.jsonl"
        last = json.loads(state.read_text().splitlines()[-1])
        assert last.get("state") in ("queued", "running")

        second = _ServeProcess(tmp_path)
        try:
            base = second.base_url()
            deadline = time.monotonic() + 180.0
            while True:
                status, view = _request(
                    "GET", f"{base}/v1/jobs/{job_id}", timeout=10.0
                )
                assert status == 200
                if view["state"] in ("done", "failed"):
                    break
                assert time.monotonic() < deadline, "resume never finished"
                time.sleep(0.25)
            assert any("recovered 1" in line for line in second.lines)
            assert view["state"] == "done"
            assert view["resumed"] is True
            assert view["result"]["ok"] is True
            payload = view["result"]["result"]
            assert payload["kind"] == "kstar"
            assert payload["resumed_rungs"] >= 1
            assert payload["selected_k_star"] is not None
        finally:
            second.kill9()
