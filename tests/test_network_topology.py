"""Tests for decoded architectures and candidate paths."""

import pytest

from repro.library import default_catalog
from repro.network import Architecture, CandidatePath, Route, small_grid_template


class TestCandidatePath:
    def test_properties(self):
        path = CandidatePath((1, 4, 7), loss_db=120.0)
        assert path.source == 1 and path.dest == 7
        assert path.hops == 2
        assert path.edges == ((1, 4), (4, 7))

    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            CandidatePath((1,), 0.0)

    def test_loops_rejected(self):
        with pytest.raises(ValueError):
            CandidatePath((1, 2, 1), 0.0)

    def test_shares_edge(self):
        a = CandidatePath((1, 2, 3), 0.0)
        b = CandidatePath((0, 2, 3), 0.0)
        c = CandidatePath((3, 2, 1), 0.0)
        assert a.shares_edge_with(b)
        assert not a.shares_edge_with(c)  # direction matters


class TestRoute:
    def test_edges_and_hops(self):
        route = Route(0, 7, 0, (0, 3, 7))
        assert route.edges == ((0, 3), (3, 7))
        assert route.hops == 2


@pytest.fixture()
def arch():
    instance = small_grid_template()
    a = Architecture(template=instance.template, library=default_catalog())
    a.sizing = {0: "sensor-std", 5: "relay-ant", 7: "sink-std"}
    a.active_edges = {(0, 5), (5, 7)}
    a.routes = [Route(0, 7, 0, (0, 5, 7)), Route(0, 7, 1, (0, 7))]
    return a


class TestArchitecture:
    def test_node_count_and_cost(self, arch):
        assert arch.node_count == 3
        # sensor-std 0 + relay-ant 34 + sink-std 80.
        assert arch.dollar_cost == pytest.approx(114.0)

    def test_device_of(self, arch):
        assert arch.device_of(5).name == "relay-ant"
        with pytest.raises(KeyError):
            arch.device_of(3)

    def test_routes_for(self, arch):
        assert len(arch.routes_for(0, 7)) == 2
        assert arch.routes_for(1, 7) == []

    def test_routes_through(self, arch):
        assert len(arch.routes_through(5)) == 1
        assert len(arch.routes_through(0)) == 2

    def test_tx_rx_uses(self, arch):
        assert arch.tx_uses(0) == [(0, 5), (0, 7)]
        assert arch.tx_uses(5) == [(5, 7)]
        assert arch.rx_uses(7) == [(5, 7), (0, 7)]
        assert arch.rx_uses(0) == []

    def test_duplicate_route_through_node_counts_twice(self, arch):
        arch.routes.append(Route(4, 7, 0, (4, 5, 7)))
        assert arch.tx_uses(5) == [(5, 7), (5, 7)]

    def test_summary_mentions_cost(self, arch):
        assert "$114" in arch.summary()
