"""The size estimator must match the actually-built full model exactly."""

import pytest

from repro.constraints import build_energy, build_link_quality, build_mapping
from repro.encoding import FullPathEncoder
from repro.encoding.sizing import estimate_full_encoding_stats
from repro.library import default_catalog
from repro.milp import Model
from repro.network import (
    LifetimeRequirement,
    LinkQualityRequirement,
    RequirementSet,
    small_grid_template,
)


def build_full(instance, requirements):
    library = default_catalog()
    model = Model()
    mapping = build_mapping(model, instance.template, library)
    encoding = FullPathEncoder().encode(
        model, instance.template, requirements.routes, mapping.node_used
    )
    lq = build_link_quality(
        model, instance.template, mapping, encoding, requirements.link_quality
    )
    if requirements.lifetime is not None:
        build_energy(
            model, instance.template, mapping, encoding, lq,
            requirements.tdma, requirements.power, requirements.lifetime,
        )
    return model


@pytest.mark.parametrize("with_lq", [False, True])
@pytest.mark.parametrize("with_lifetime", [False, True])
@pytest.mark.parametrize("replicas,disjoint", [(1, False), (2, True)])
def test_estimate_matches_built_model(with_lq, with_lifetime, replicas,
                                      disjoint):
    instance = small_grid_template(nx=4, ny=3)
    requirements = RequirementSet()
    for s in instance.sensor_ids:
        requirements.require_route(s, instance.sink_id, replicas=replicas,
                                   disjoint=disjoint)
    if with_lq:
        requirements.link_quality = LinkQualityRequirement(min_snr_db=20.0)
    if with_lifetime:
        requirements.lifetime = LifetimeRequirement(years=5.0)

    model = build_full(instance, requirements)
    stats = model.stats()
    estimate = estimate_full_encoding_stats(
        instance.template, requirements, default_catalog()
    )
    assert estimate.num_vars == stats.num_vars
    assert estimate.num_constraints == stats.num_constraints


def test_estimate_with_hop_bounds():
    instance = small_grid_template(nx=4, ny=3)
    requirements = RequirementSet()
    requirements.require_route(instance.sensor_ids[0], instance.sink_id,
                               replicas=1, disjoint=False, max_hops=3)
    requirements.require_route(instance.sensor_ids[1], instance.sink_id,
                               replicas=1, disjoint=False, exact_hops=2)
    model = build_full(instance, requirements)
    estimate = estimate_full_encoding_stats(
        instance.template, requirements, default_catalog()
    )
    assert estimate.num_constraints == model.stats().num_constraints
    assert estimate.num_vars == model.stats().num_vars


def test_estimate_scales_superlinearly_with_routes():
    instance = small_grid_template(nx=4, ny=3)
    one = RequirementSet()
    one.require_route(instance.sensor_ids[0], instance.sink_id)
    many = RequirementSet()
    for s in instance.sensor_ids:
        many.require_route(s, instance.sink_id, replicas=2, disjoint=True)
    lib = default_catalog()
    small = estimate_full_encoding_stats(instance.template, one, lib)
    large = estimate_full_encoding_stats(instance.template, many, lib)
    # 6x the replicas more than triples the row count (per-replica blocks
    # plus the quadratic disjointness rows).
    assert large.num_constraints > 3 * small.num_constraints
