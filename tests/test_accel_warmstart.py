"""The greedy primal warm start and both backends' hint contracts."""

import numpy as np
import pytest

from repro.accel import WarmStart, attach_warm_start, compute_warm_start
from repro.accel.warmstart import greedy_selection, selection_from_architecture
from repro.core.explorer import DataCollectionExplorer
from repro.encoding.approximate import ApproximatePathEncoder
from repro.encoding.base import SelectionBlock
from repro.library import default_catalog
from repro.milp import BranchAndBoundSolver, HighsSolver, Model, SolveStatus
from repro.network import (
    LinkQualityRequirement,
    RequirementSet,
    small_grid_template,
)
from repro.network.paths import CandidatePath
from repro.network.requirements import RouteRequirement
from repro.network.topology import Architecture, Route


@pytest.fixture(scope="module")
def problem():
    instance = small_grid_template(nx=4, ny=3, spacing=8.0)
    reqs = RequirementSet()
    for sensor in instance.sensor_ids:
        reqs.require_route(sensor, instance.sink_id, replicas=2,
                           disjoint=True)
    reqs.link_quality = LinkQualityRequirement(min_snr_db=20.0)
    return instance, reqs


@pytest.fixture(scope="module")
def built(problem):
    instance, reqs = problem
    explorer = DataCollectionExplorer(
        instance.template, default_catalog(), reqs,
        encoder=ApproximatePathEncoder(k_star=5),
    )
    return explorer.build("cost")


def block_of(req, *paths):
    pool = [CandidatePath(nodes=n, loss_db=loss) for n, loss in paths]
    return SelectionBlock(req=req, pool=pool, pick=[])


class TestGreedySelection:
    def test_cheapest_first(self):
        req = RouteRequirement(source=0, dest=9, replicas=1)
        block = block_of(
            req,
            ((0, 1, 2, 9), 10.0),
            ((0, 9), 50.0),        # fewest hops wins despite the loss
            ((0, 3, 9), 5.0),
        )
        assert greedy_selection(block) == [1]

    def test_disjoint_skips_conflicting_candidates(self):
        req = RouteRequirement(source=0, dest=9, replicas=2, disjoint=True)
        block = block_of(
            req,
            ((0, 9), 1.0),
            ((0, 1, 9), 2.0),
            ((0, 1, 2, 9), 3.0),   # shares (0,1) with the second path
        )
        chosen = greedy_selection(block)
        assert chosen is not None
        picked = [set(block.pool[k].edges) for k in chosen]
        assert not picked[0] & picked[1]

    def test_impossible_replicas_returns_none(self):
        req = RouteRequirement(source=0, dest=9, replicas=3)
        block = block_of(req, ((0, 9), 1.0), ((0, 1, 9), 2.0))
        assert greedy_selection(block) is None


class TestSelectionFromArchitecture:
    def _arch(self, template, routes):
        arch = Architecture(
            template=template, library=default_catalog(), sizing={}
        )
        arch.routes = routes
        return arch

    def test_replays_routes_by_node_tuple(self, problem):
        instance, _ = problem
        req = RouteRequirement(source=0, dest=9, replicas=1)
        block = block_of(req, ((0, 9), 1.0), ((0, 1, 9), 2.0))
        arch = self._arch(
            instance.template, [Route(0, 9, 0, (0, 1, 9))]
        )
        assert selection_from_architecture(block, arch) == [1]

    def test_route_not_in_pool_returns_none(self, problem):
        instance, _ = problem
        req = RouteRequirement(source=0, dest=9, replicas=1)
        block = block_of(req, ((0, 9), 1.0))
        arch = self._arch(
            instance.template, [Route(0, 9, 0, (0, 7, 9))]
        )
        assert selection_from_architecture(block, arch) is None


class TestComputeWarmStart:
    def test_produces_a_certified_feasible_start(self, built):
        warm = compute_warm_start(built)
        assert warm is not None
        assert warm.source == "greedy"
        # Certified: re-check against the standard form independently.
        from repro.milp.validate import check_assignment

        form = built.model.to_standard_form()
        check = check_assignment(form, warm.x)
        assert check.ok
        assert warm.objective == pytest.approx(
            check.objective + built.model.objective.constant
        )

    def test_start_is_no_better_than_the_optimum(self, built):
        warm = compute_warm_start(built)
        cold = HighsSolver().solve(built.model)
        assert cold.status is SolveStatus.OPTIMAL
        assert warm.objective >= cold.objective - 1e-6

    def test_attach_payload_shape(self, built):
        warm = compute_warm_start(built)
        attach_warm_start(built.model, warm)
        payload = built.model.hints["warm_start"]
        assert set(payload) == {"x", "objective", "source"}
        assert payload["objective"] == pytest.approx(warm.objective)
        built.model.hints.pop("warm_start")


class TestBranchAndBoundWarmStart:
    def test_accepted_and_objective_unchanged(self, built):
        warm = compute_warm_start(built)
        cold = BranchAndBoundSolver(time_limit=120).solve(built.model)
        attach_warm_start(built.model, warm)
        try:
            sol = BranchAndBoundSolver(time_limit=120).solve(built.model)
        finally:
            built.model.hints.pop("warm_start")
        info = sol.extra["warm_start"]
        assert info["status"] == "accepted"
        assert info["source"] == "greedy"
        assert info["objective"] == pytest.approx(warm.objective)
        assert sol.objective == pytest.approx(cold.objective)

    def test_infeasible_hint_is_rejected_not_adopted(self):
        m = Model()
        x = m.binary("x")
        y = m.binary("y")
        m.add(x + y >= 1, "cover")
        m.minimize(x + 2 * y)
        m.hints["warm_start"] = {
            "x": np.zeros(2), "objective": 0.0, "source": "bogus",
        }
        sol = BranchAndBoundSolver().solve(m)
        assert sol.extra["warm_start"]["status"] == "rejected"
        assert sol.status is SolveStatus.OPTIMAL
        assert sol.objective == pytest.approx(1.0)

    def test_malformed_hint_is_rejected(self):
        m = Model()
        x = m.binary("x")
        m.add(x >= 0, "noop")
        m.minimize(x)
        m.hints["warm_start"] = {"x": np.zeros(7)}  # wrong length
        sol = BranchAndBoundSolver().solve(m)
        assert sol.extra["warm_start"]["status"] == "rejected"
        assert sol.status is SolveStatus.OPTIMAL


class TestHighsWarmStart:
    def _model(self):
        m = Model()
        x = m.binary("x")
        y = m.binary("y")
        m.add(x + y >= 1, "cover")
        m.minimize(x + 2 * y)
        return m

    def test_valid_start_surfaces_acceptance_state(self):
        # A validated start is always consumed through one of the two
        # mechanisms — highspy's setSolution when installed, otherwise
        # an objective-cutoff row on the scipy path — and the verdict
        # says which; it never silently vanishes.
        m = self._model()
        m.hints["warm_start"] = {
            "x": np.array([1.0, 0.0]), "objective": 1.0, "source": "greedy",
        }
        sol = HighsSolver().solve(m)
        info = sol.extra["warm_start"]
        assert info["status"] == "accepted"
        assert info["mechanism"] in (
            "native_set_solution", "objective_cutoff"
        )
        assert info["source"] == "greedy"
        assert sol.objective == pytest.approx(1.0)

    def test_cutoff_at_the_exact_optimum_is_not_cut_away(self):
        # The tightest possible start — the optimum itself — must not
        # make the cutoff row infeasible through floating-point slack.
        m = self._model()
        m.hints["warm_start"] = {
            "x": np.array([1.0, 0.0]), "objective": 1.0, "source": "exact",
        }
        sol = HighsSolver().solve(m)
        assert sol.status is SolveStatus.OPTIMAL
        assert sol.objective == pytest.approx(1.0)

    def test_infeasible_start_is_rejected(self):
        m = self._model()
        m.hints["warm_start"] = {
            "x": np.zeros(2), "objective": 0.0, "source": "bogus",
        }
        sol = HighsSolver().solve(m)
        info = sol.extra["warm_start"]
        assert info["status"] == "rejected"
        assert info["max_violation"] > 0
        assert sol.objective == pytest.approx(1.0)

    def test_malformed_start_is_rejected(self):
        m = self._model()
        m.hints["warm_start"] = {"objective": 1.0}  # no assignment at all
        sol = HighsSolver().solve(m)
        assert sol.extra["warm_start"]["status"] == "rejected"


class TestExplorerIntegration:
    @pytest.mark.parametrize("presolve", ["off", "reduce"])
    def test_warm_start_preserves_the_objective(self, problem, presolve):
        instance, reqs = problem
        cold = DataCollectionExplorer(
            instance.template, default_catalog(), reqs,
            encoder=ApproximatePathEncoder(k_star=5),
        ).solve("cost")
        warm = DataCollectionExplorer(
            instance.template, default_catalog(), reqs,
            encoder=ApproximatePathEncoder(k_star=5),
            presolve=presolve, warm_start=True,
        ).solve("cost")
        assert warm.feasible
        assert warm.objective_value == pytest.approx(cold.objective_value)

    def test_warm_dataclass_is_frozen(self):
        warm = WarmStart(
            x=np.zeros(1), objective=0.0, source="greedy", seconds=0.0
        )
        with pytest.raises(AttributeError):
            warm.objective = 1.0
