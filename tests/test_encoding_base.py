"""Tests for the shared encoding interface and consistency wiring."""

import pytest

from repro.constraints.mapping import build_mapping
from repro.encoding import ApproximatePathEncoder
from repro.encoding.base import RoutingEncoding
from repro.library import default_catalog
from repro.milp import HighsSolver, Model
from repro.milp.solution import Solution, SolveStatus
from repro.network import RouteRequirement, small_grid_template


class TestRoutingEncoding:
    def test_empty_encoding_decodes_nothing(self):
        encoding = RoutingEncoding(edge_active={})
        solution = Solution(status=SolveStatus.OPTIMAL, objective=0.0)
        assert encoding.decode(solution) == []
        assert encoding.encoded_edges == []


class TestTopologyConsistency:
    @pytest.fixture()
    def solved(self):
        grid = small_grid_template(nx=4, ny=3)
        routes = [
            RouteRequirement(s, grid.sink_id, replicas=1, disjoint=False)
            for s in grid.sensor_ids
        ]
        model = Model()
        mapping = build_mapping(model, grid.template, default_catalog())
        encoding = ApproximatePathEncoder(k_star=5).encode(
            model, grid.template, routes, mapping.node_used
        )
        model.minimize(mapping.cost_expr())
        solution = HighsSolver().solve(model)
        assert solution.status.has_solution
        return grid, mapping, encoding, solution

    def test_active_edge_implies_used_endpoints(self, solved):
        grid, mapping, encoding, solution = solved
        for (u, v), var in encoding.edge_active.items():
            if solution.value_bool(var):
                assert solution.value_bool(mapping.node_used[u])
                assert solution.value_bool(mapping.node_used[v])

    def test_unused_optional_nodes_have_no_active_edges(self, solved):
        grid, mapping, encoding, solution = solved
        for node in grid.template.nodes:
            if node.fixed or solution.value_bool(mapping.node_used[node.id]):
                continue
            for (u, v), var in encoding.edge_active.items():
                if node.id in (u, v):
                    assert not solution.value_bool(var)

    def test_every_active_edge_has_a_use(self, solved):
        grid, mapping, encoding, solution = solved
        for edge, var in encoding.edge_active.items():
            if solution.value_bool(var):
                uses = encoding.edge_uses.get(edge, [])
                assert any(solution.value_bool(u) for u in uses)

    def test_no_free_floating_optional_nodes(self, solved):
        """Optional nodes marked used must have an incident active edge."""
        grid, mapping, encoding, solution = solved
        for node in grid.template.nodes:
            if node.fixed:
                continue
            if not solution.value_bool(mapping.node_used[node.id]):
                continue
            incident = [
                var for (u, v), var in encoding.edge_active.items()
                if node.id in (u, v)
            ]
            assert any(solution.value_bool(v) for v in incident)
