"""Tests for path-disjointness utilities."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import (
    are_link_disjoint,
    edges_shared,
    max_disjoint_subset,
    minimally_disjoint_path,
    path_edges,
)


class TestPathEdges:
    def test_edges(self):
        assert path_edges([1, 2, 3]) == [(1, 2), (2, 3)]

    def test_single_node_has_no_edges(self):
        assert path_edges([7]) == []


class TestSharedEdges:
    def test_counts_shared_directed_edges(self):
        assert edges_shared([1, 2, 3, 4], [0, 2, 3, 5]) == 1

    def test_direction_matters(self):
        assert edges_shared([1, 2], [2, 1]) == 0

    def test_disjointness(self):
        assert are_link_disjoint([1, 2, 3], [1, 4, 3])
        assert not are_link_disjoint([1, 2, 3], [5, 1, 2])


class TestMinimallyDisjoint:
    def test_picks_most_overlapping(self):
        pool = [
            [1, 2, 3, 9],   # shares (1,2) with p2, (2,3) with p3 -> overlap 2
            [1, 2, 5, 9],   # shares (1,2) -> overlap 1
            [0, 2, 3, 9],   # shares (2,3) -> overlap 1
        ]
        assert minimally_disjoint_path(pool) == 0

    def test_tie_breaks_to_earliest(self):
        pool = [[1, 2, 3], [1, 2, 4], [5, 6, 7]]
        assert minimally_disjoint_path(pool) == 0

    def test_empty_pool_raises(self):
        with pytest.raises(ValueError):
            minimally_disjoint_path([])

    def test_all_disjoint_returns_first(self):
        assert minimally_disjoint_path([[1, 2], [3, 4], [5, 6]]) == 0


class TestMaxDisjointSubset:
    def test_greedy_selection(self):
        pool = [[1, 2, 3], [1, 2, 4], [5, 2, 6], [7, 8, 9]]
        chosen = max_disjoint_subset(pool)
        assert 0 in chosen and 3 in chosen
        assert 1 not in chosen  # shares (1,2) with pool[0]

    def test_selected_are_pairwise_disjoint(self):
        pool = [[1, 2, 3], [3, 2, 1], [1, 4, 3], [1, 2, 5]]
        chosen = max_disjoint_subset(pool)
        for i_pos, i in enumerate(chosen):
            for j in chosen[i_pos + 1:]:
                assert are_link_disjoint(pool[i], pool[j])

    def test_empty_pool(self):
        assert max_disjoint_subset([]) == []


paths_strategy = st.lists(
    st.lists(st.integers(0, 8), min_size=2, max_size=5, unique=True),
    min_size=1, max_size=8,
)


@settings(max_examples=60, deadline=None)
@given(paths_strategy)
def test_max_disjoint_subset_invariants(pool):
    chosen = max_disjoint_subset(pool)
    # Indices valid and strictly increasing (greedy in order).
    assert chosen == sorted(set(chosen))
    for i_pos, i in enumerate(chosen):
        for j in chosen[i_pos + 1:]:
            assert are_link_disjoint(pool[i], pool[j])
    # Greedy always takes the first path.
    assert chosen and chosen[0] == 0


@settings(max_examples=60, deadline=None)
@given(paths_strategy)
def test_minimally_disjoint_is_argmax(pool):
    idx = minimally_disjoint_path(pool)
    overlaps = [
        sum(edges_shared(p, q) for j, q in enumerate(pool) if j != i)
        for i, p in enumerate(pool)
    ]
    assert overlaps[idx] == max(overlaps)
