"""Unit tests for the model-level analyzer rules.

Each rule gets a positive case (the finding fires) and a negative case
(a sound model stays silent), on tiny hand-built MILPs.
"""

from repro.analysis import Severity, analyze_model
from repro.analysis.model_rules import (
    DuplicateRowRule,
    ForeignVariableRule,
    LooseBigMRule,
    TrivialInfeasibilityRule,
    UnusedVariableRule,
    VacuousConstraintRule,
    VariableBoundsRule,
)
from repro.analysis.rules import model_rules
from repro.milp.expr import Constraint, LinExpr
from repro.milp.model import Model


def sound_model() -> Model:
    """A small healthy MILP no rule should complain about."""
    m = Model("sound")
    x = m.binary("x")
    y = m.binary("y")
    c = m.continuous("c", 0.0, 10.0)
    m.add(x + y >= 1, name="pick")
    m.add(c >= 5 - 5 * (1 - x), name="indicator")  # tight big-M
    m.minimize(c + x + y)
    return m


class TestVariableBounds:
    def test_fires_on_crossed_bounds(self):
        m = Model()
        var = m.continuous("bad", 0.0, 1.0)
        var.lower, var.upper = 2.0, 1.0  # corrupt post-construction
        finds = list(VariableBoundsRule().check(m))
        assert len(finds) == 1
        assert finds[0].severity is Severity.ERROR

    def test_fires_on_nan_bound(self):
        m = Model()
        var = m.continuous("nan", 0.0, 1.0)
        var.upper = float("nan")
        finds = list(VariableBoundsRule().check(m))
        assert len(finds) == 1
        assert "NaN" in finds[0].message

    def test_unbounded_general_integer_is_info(self):
        m = Model()
        m.integer("n")  # default upper is +inf
        finds = list(VariableBoundsRule().check(m))
        assert len(finds) == 1
        assert finds[0].severity is Severity.INFO

    def test_silent_on_sound_model(self):
        assert not list(VariableBoundsRule().check(sound_model()))


class TestForeignVariable:
    def test_fires_on_alien_row_and_objective(self):
        m = Model()
        m.binary("x")
        # Bypass Model.add's validation to simulate a pre-validation model.
        m._constraints.append(
            Constraint(LinExpr({7: 1.0}), 0.0, 1.0, "alien")
        )
        m._objective = LinExpr({9: 1.0})
        finds = list(ForeignVariableRule().check(m))
        assert len(finds) == 2
        assert {f.location for f in finds} == {"row 'alien'", "objective"}

    def test_silent_on_sound_model(self):
        assert not list(ForeignVariableRule().check(sound_model()))


class TestTrivialInfeasibility:
    def test_fires_when_activity_cannot_reach_bound(self):
        m = Model()
        x = m.binary("x")
        y = m.binary("y")
        m.add(x + y >= 3, name="impossible")
        finds = list(TrivialInfeasibilityRule().check(m))
        assert len(finds) == 1
        assert finds[0].severity is Severity.WARNING
        assert "cannot reach" in finds[0].message

    def test_fires_on_crossed_row_bounds(self):
        m = Model()
        x = m.binary("x")
        m._constraints.append(
            Constraint(x + 0.0, 2.0, 1.0, "crossed")
        )
        finds = list(TrivialInfeasibilityRule().check(m))
        assert len(finds) == 1
        assert "crossed" in finds[0].message

    def test_silent_on_sound_model(self):
        assert not list(TrivialInfeasibilityRule().check(sound_model()))


class TestVacuousConstraint:
    def test_fires_on_row_implied_by_bounds(self):
        m = Model()
        x = m.binary("x")
        y = m.binary("y")
        m.add(x + y >= 0, name="vacuous")
        finds = list(VacuousConstraintRule().check(m))
        assert len(finds) == 1
        assert finds[0].severity is Severity.INFO

    def test_silent_on_sound_model(self):
        assert not list(VacuousConstraintRule().check(sound_model()))


class TestUnusedVariable:
    def test_fires_once_with_aggregate_list(self):
        m = Model()
        x = m.binary("x")
        for i in range(3):
            m.binary(f"dead{i}")
        m.add(x >= 0.5, name="use-x")
        finds = list(UnusedVariableRule().check(m))
        assert len(finds) == 1
        assert finds[0].data["variables"] == ["dead0", "dead1", "dead2"]

    def test_silent_on_sound_model(self):
        assert not list(UnusedVariableRule().check(sound_model()))


class TestLooseBigM:
    def test_fires_with_tightest_value(self):
        m = Model()
        b = m.binary("b")
        c = m.continuous("c", 0.0, 10.0)
        # c >= 5 - 50*(1-b): M=50 where the bounds imply M=5 suffices.
        m.add(c >= 5 - 50 * (1 - b), name="loose")
        finds = list(LooseBigMRule().check(m))
        assert len(finds) == 1
        assert abs(finds[0].data["tightest"] - 5.0) < 1e-9

    def test_silent_when_tight(self):
        assert not list(LooseBigMRule().check(sound_model()))

    def test_skips_multi_binary_rows(self):
        m = Model()
        b1 = m.binary("b1")
        b2 = m.binary("b2")
        c = m.continuous("c", 0.0, 10.0)
        # The binaries couple elsewhere (e.g. b1 + b2 == 1), which
        # interval analysis cannot see; the rule must stay out.
        m.add(c >= 5 - 50 * (1 - b1) - 50 * (1 - b2), name="hull")
        assert not list(LooseBigMRule().check(m))


class TestDuplicateRow:
    def test_fires_on_shared_left_hand_side(self):
        m = Model()
        x = m.binary("x")
        y = m.binary("y")
        m.add(x + y <= 1, name="le")
        m.add(x + y >= 1, name="ge")
        m.minimize(x + y)
        finds = list(DuplicateRowRule().check(m))
        assert len(finds) == 1
        assert finds[0].data["rows"] == [0, 1]

    def test_silent_on_sound_model(self):
        assert not list(DuplicateRowRule().check(sound_model()))


class TestAnalyzeModel:
    def test_registry_has_every_rule(self):
        ids = {rule.rule_id for rule in model_rules()}
        assert {
            "model.variable-bounds", "model.foreign-variable",
            "model.trivial-infeasibility", "model.vacuous-constraint",
            "model.unused-variable", "model.loose-big-m",
            "model.duplicate-row",
        } <= ids

    def test_sound_model_is_clean(self):
        report = analyze_model(sound_model())
        assert report.ok
        assert not report.diagnostics
        assert report.seconds > 0.0

    def test_report_aggregates_all_findings(self):
        m = Model()
        x = m.binary("x")
        y = m.binary("y")
        m.binary("dead")
        m.add(x + y >= 3, name="impossible")
        m.add(x + y >= 0, name="vacuous")
        report = analyze_model(m)
        assert {"model.trivial-infeasibility", "model.vacuous-constraint",
                "model.unused-variable"} <= set(report.rule_ids)
        assert report.ok  # warnings and infos only: nothing blocking
