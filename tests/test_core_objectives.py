"""Tests for objective specifications."""

import pytest

from repro.core import ObjectiveSpec, parse_objective
from repro.milp import LinExpr, Model


class TestObjectiveSpec:
    def test_single(self):
        spec = ObjectiveSpec.single("cost")
        assert spec.weights == {"cost": 1.0}
        assert spec.terms == {"cost"}

    def test_combine_with_scales(self):
        spec = ObjectiveSpec.combine(
            {"cost": 0.5, "energy": 0.5}, scales={"energy": 1000.0}
        )
        assert spec.terms == {"cost", "energy"}

    def test_zero_weight_term_excluded(self):
        spec = ObjectiveSpec.combine({"cost": 1.0, "energy": 0.0})
        assert spec.terms == {"cost"}

    def test_validation(self):
        with pytest.raises(ValueError):
            ObjectiveSpec(weights={})
        with pytest.raises(ValueError):
            ObjectiveSpec(weights={"cost": -1.0})
        with pytest.raises(ValueError):
            ObjectiveSpec(weights={"cost": 1.0}, scales={"cost": 0.0})

    def test_build_combines_terms(self):
        m = Model()
        x, y = m.binary("x"), m.binary("y")
        spec = ObjectiveSpec.combine(
            {"a": 2.0, "b": 1.0}, scales={"b": 10.0}
        )
        expr = spec.build({"a": x + 0.0, "b": 5.0 * y})
        assert expr.coeffs[x.index] == pytest.approx(2.0)
        assert expr.coeffs[y.index] == pytest.approx(0.5)

    def test_build_missing_term_raises(self):
        spec = ObjectiveSpec.single("dsod")
        with pytest.raises(KeyError, match="dsod"):
            spec.build({"cost": LinExpr()})


class TestParseObjective:
    def test_string(self):
        assert parse_objective("cost").weights == {"cost": 1.0}

    def test_dict(self):
        spec = parse_objective({"cost": 0.3, "energy": 0.7})
        assert spec.weights == {"cost": 0.3, "energy": 0.7}

    def test_passthrough(self):
        spec = ObjectiveSpec.single("cost")
        assert parse_objective(spec) is spec

    def test_junk_rejected(self):
        with pytest.raises(TypeError):
            parse_objective(42)
