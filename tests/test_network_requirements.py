"""Tests for requirement dataclasses."""

import pytest

from repro.geometry import Point
from repro.network import (
    LifetimeRequirement,
    LinkQualityRequirement,
    PowerConfig,
    ReachabilityRequirement,
    RequirementSet,
    RouteRequirement,
    TdmaConfig,
)


class TestRouteRequirement:
    def test_same_endpoints_rejected(self):
        with pytest.raises(ValueError):
            RouteRequirement(1, 1)

    def test_zero_replicas_rejected(self):
        with pytest.raises(ValueError):
            RouteRequirement(0, 1, replicas=0)

    def test_exact_hops_excludes_bounds(self):
        with pytest.raises(ValueError):
            RouteRequirement(0, 1, exact_hops=3, max_hops=4)

    def test_pair(self):
        assert RouteRequirement(3, 9).pair == (3, 9)


class TestLinkQuality:
    def test_needs_at_least_one_bound(self):
        with pytest.raises(ValueError):
            LinkQualityRequirement()

    def test_accepts_either(self):
        assert LinkQualityRequirement(min_rss_dbm=-80.0).min_snr_db is None
        assert LinkQualityRequirement(min_snr_db=20.0).min_rss_dbm is None


class TestLifetime:
    def test_positive_years(self):
        with pytest.raises(ValueError):
            LifetimeRequirement(years=0.0)

    def test_sink_mains_by_default(self):
        assert "sink" in LifetimeRequirement(years=5.0).mains_roles


class TestReachability:
    def test_needs_test_points(self):
        with pytest.raises(ValueError):
            ReachabilityRequirement(test_points=())

    def test_needs_positive_anchors(self):
        with pytest.raises(ValueError):
            ReachabilityRequirement(
                test_points=(Point(0, 0),), min_anchors=0
            )


class TestTdmaConfig:
    def test_superframe_duration(self):
        cfg = TdmaConfig(slots=16, slot_ms=1.0)
        assert cfg.superframe_ms == 16.0

    def test_report_interval_ms(self):
        assert TdmaConfig(report_interval_s=30.0).report_interval_ms == 30000.0

    def test_validation(self):
        with pytest.raises(ValueError):
            TdmaConfig(slots=0)
        with pytest.raises(ValueError):
            TdmaConfig(slot_ms=0.0)


class TestPowerConfig:
    def test_battery_charge_units(self):
        # 3000 mAh = 3000 * 3600 * 1000 mA*ms.
        assert PowerConfig(battery_mah=3000).battery_ma_ms == pytest.approx(
            1.08e10
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            PowerConfig(battery_mah=0)


class TestRequirementSet:
    def test_require_route_appends(self):
        reqs = RequirementSet()
        reqs.require_route(0, 5, replicas=2)
        reqs.require_route(1, 5)
        assert len(reqs.routes) == 2
        assert reqs.total_replicas == 3

    def test_defaults(self):
        reqs = RequirementSet()
        assert reqs.link_quality is None
        assert reqs.lifetime is None
        assert reqs.tdma.slots == 16
        assert reqs.power.packet_bytes == 50.0
