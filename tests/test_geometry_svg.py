"""Round-trip and content tests for SVG import/export."""

import xml.etree.ElementTree as ET

import pytest

from repro.geometry import (
    FloorPlan,
    Point,
    Rectangle,
    SvgMarker,
    floorplan_from_svg,
    floorplan_to_svg,
    office_floorplan,
)


@pytest.fixture()
def plan():
    p = FloorPlan(Rectangle(0, 0, 20, 10), name="test-floor")
    p.add_wall(Point(10, 0), Point(10, 10), material="concrete")
    p.add_wall(Point(0, 5), Point(20, 5), material="glass", loss_db=1.5)
    return p


class TestExport:
    def test_is_valid_xml(self, plan):
        root = ET.fromstring(floorplan_to_svg(plan))
        assert root.tag.endswith("svg")

    def test_walls_exported_with_metadata(self, plan):
        root = ET.fromstring(floorplan_to_svg(plan))
        lines = [el for el in root.iter() if el.tag.endswith("line")]
        assert len(lines) == 2
        materials = {line.get("data-material") for line in lines}
        assert materials == {"concrete", "glass"}

    def test_markers_and_links_rendered(self, plan):
        markers = [SvgMarker(Point(2, 2), "sensor", "s0"),
                   SvgMarker(Point(18, 8), "sink")]
        links = [(Point(2, 2), Point(18, 8))]
        root = ET.fromstring(floorplan_to_svg(plan, markers, links))
        circles = [el for el in root.iter() if el.tag.endswith("circle")]
        assert len(circles) == 2
        link_lines = [el for el in root.iter()
                      if el.tag.endswith("line") and el.get("class") == "link"]
        assert len(link_lines) == 1


class TestRoundTrip:
    def test_wall_count_preserved(self, plan):
        restored = floorplan_from_svg(floorplan_to_svg(plan))
        assert len(restored.walls) == len(plan.walls)

    def test_bounds_preserved(self, plan):
        restored = floorplan_from_svg(floorplan_to_svg(plan))
        assert restored.bounds.width == pytest.approx(plan.bounds.width)
        assert restored.bounds.height == pytest.approx(plan.bounds.height)

    def test_explicit_loss_preserved(self, plan):
        restored = floorplan_from_svg(floorplan_to_svg(plan))
        losses = sorted(w.attenuation_db() for w in restored.walls)
        assert losses == sorted(w.attenuation_db() for w in plan.walls)

    def test_attenuation_queries_equivalent(self, plan):
        restored = floorplan_from_svg(floorplan_to_svg(plan))
        for a, b in [(Point(1, 1), Point(19, 9)), (Point(1, 1), Point(9, 4))]:
            assert restored.wall_attenuation_db(a, b) == pytest.approx(
                plan.wall_attenuation_db(a, b)
            )

    def test_office_plan_roundtrip(self):
        plan = office_floorplan()
        restored = floorplan_from_svg(floorplan_to_svg(plan))
        assert len(restored.walls) == len(plan.walls)

    def test_links_not_reimported_as_walls(self, plan):
        text = floorplan_to_svg(plan, links=[(Point(0, 0), Point(20, 10))])
        restored = floorplan_from_svg(text)
        assert len(restored.walls) == len(plan.walls)
