"""Tests for the tracing spans and cross-worker context propagation."""

import os

import pytest

from repro.telemetry.sinks import CollectorSink
from repro.telemetry.trace import (
    NULL_SPAN,
    SpanContext,
    add_event,
    adopt,
    capture,
    configure,
    current_context,
    drain_drop_warnings,
    enabled,
    get_tracer,
    ingest,
    new_id,
    shutdown,
    span,
)


@pytest.fixture()
def collector():
    """Arm the tracer with one in-memory sink; disarmed by conftest."""
    sink = CollectorSink()
    configure([sink])
    return sink


class TestDisabled:
    def test_span_yields_shared_null_handle(self):
        assert not enabled()
        with span("anything", k=4) as handle:
            assert handle is NULL_SPAN
            handle.set_attribute("x", 1)  # all no-ops
            handle.set_attributes(y=2)
            handle.event("ev")
        assert handle.span_id == ""

    def test_add_event_and_capture_are_noops(self):
        add_event("nobody.listens")
        assert capture() is None
        assert current_context() is None


class TestSpans:
    def test_nesting_links_parent_and_shares_trace(self, collector):
        with span("outer") as outer:
            with span("inner", k=3) as inner:
                assert inner.trace_id == outer.trace_id
                assert inner.parent_id == outer.span_id
        # Children close (and emit) before their parent.
        names = [r["name"] for r in collector.records]
        assert names == ["inner", "outer"]
        inner_rec, outer_rec = collector.records
        assert outer_rec["parent"] is None
        assert inner_rec["parent"] == outer_rec["span"]
        assert inner_rec["attrs"] == {"k": 3}
        assert inner_rec["duration_s"] >= 0
        assert outer_rec["pid"] == os.getpid()

    def test_ids_are_fresh_hex(self, collector):
        with span("a") as a:
            pass
        with span("b") as b:
            pass
        assert len(a.trace_id) == 32 and len(a.span_id) == 16
        int(a.trace_id, 16)  # raises if not hex
        assert a.trace_id != b.trace_id  # siblings without a root split
        assert len(new_id(4)) == 8

    def test_exception_marks_error_and_reraises(self, collector):
        with pytest.raises(ValueError, match="boom"):
            with span("failing"):
                raise ValueError("boom")
        (record,) = collector.records
        assert record["status"] == "error"
        assert "ValueError: boom" in record["message"]

    def test_attributes_clamped_to_json_scalars(self, collector):
        with span("attrs", path=os.sep, items=[1, object()], obj=object()):
            pass
        attrs = collector.records[0]["attrs"]
        assert attrs["path"] == os.sep
        assert attrs["items"][0] == 1
        assert isinstance(attrs["items"][1], str)
        assert attrs["obj"].startswith("<object")

    def test_events_attach_to_enclosing_span(self, collector):
        with span("parent") as parent:
            add_event("milestone", n=17)
            parent.event("direct", ok=True)
        events = [r for r in collector.records if r["type"] == "event"]
        assert {e["name"] for e in events} == {"milestone", "direct"}
        assert all(e["span"] == parent.span_id for e in events)

    def test_event_without_open_span_is_dropped(self, collector):
        add_event("floating")
        assert collector.records == []


class TestPropagation:
    def test_capture_returns_current_context(self, collector):
        with span("root") as root:
            ctx = capture()
        assert ctx is not None
        assert ctx.span_id == root.span_id
        assert ctx.pid == os.getpid()

    def test_adopt_same_process_flows_into_shared_tracer(self, collector):
        with span("root") as root:
            ctx = capture()
        with adopt(ctx) as scope:
            with span("child"):
                pass
            assert scope.records() == ()  # nothing buffered in-process
        child = next(r for r in collector.records if r["name"] == "child")
        assert child["parent"] == root.span_id
        assert child["trace"] == root.trace_id

    def test_adopt_foreign_pid_buffers_and_ingest_reemits(self, collector):
        # Simulate a process worker: a context stamped with a pid that is
        # not ours forces the buffer-and-return path even in one process.
        ctx = SpanContext(trace_id=new_id(16), span_id=new_id(), pid=-1)
        with adopt(ctx) as scope:
            with span("worker.task", k=1):
                pass
            records = scope.records()
        assert len(records) == 1
        assert records[0]["parent"] == ctx.span_id
        # The buffered record did not reach the parent sink...
        assert all(r["name"] != "worker.task" for r in collector.records)
        # ...until the parent ingests it.  (adopt() re-armed our sinks on
        # exit being shut down, so re-configure as the parent would be.)
        configure([collector])
        ingest(records)
        assert any(r["name"] == "worker.task" for r in collector.records)

    def test_adopt_none_is_a_noop(self):
        with adopt(None) as scope:
            assert scope.records() == ()


class TestSinkFailureIsolation:
    def test_raising_sink_never_raises_out(self):
        class Exploding:
            def emit(self, record):
                raise OSError("disk full")

        good = CollectorSink()
        configure([Exploding(), good])
        tracer = get_tracer()
        before = tracer.dropped_events
        with span("survives"):
            pass  # must not raise
        assert tracer.dropped_events == before + 1
        # The healthy sink still got the record.
        assert [r["name"] for r in good.records] == ["survives"]
        warnings = drain_drop_warnings()
        assert len(warnings) == 1
        assert "Exploding" in warnings[0]
        assert drain_drop_warnings() == []  # drained exactly once

    def test_drop_counter_increments_metric(self):
        from repro.telemetry.metrics import counter

        class Exploding:
            def emit(self, record):
                raise RuntimeError("nope")

        configure([Exploding()])
        base = counter("telemetry.dropped_events").value
        with span("dropped"):
            pass
        assert counter("telemetry.dropped_events").value == base + 1

    def test_shutdown_swallows_sink_close_errors(self):
        class BadClose:
            def emit(self, record):
                pass

            def close(self):
                raise OSError("already gone")

        configure([BadClose()])
        shutdown()  # must not raise
        assert not enabled()
