"""Tests for the presolve engine (repro.analysis.presolve).

Three layers:

* unit tests per reduction pass on tiny hand-built MILPs,
* engine/postsolve integration (objective exactness, infeasibility
  proofs, solver wiring, the B&B bound hint),
* hypothesis-randomized round-trips: presolve a random feasible MILP,
  solve the reduced model, postsolve, and check the restored assignment
  is feasible in the *original* model with the exact same objective as
  solving the original directly.
"""

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis import Severity
from repro.analysis.presolve import (
    PRESOLVE_MODES,
    ColumnMerge,
    PostsolveMap,
    combinatorial_lower_bound,
    presolve,
    propagated_bounds,
    restores_cleanly,
)
from repro.analysis.presolve.bounds import _covering_gain
from repro.analysis.presolve.propagation import (
    propagate,
    strengthen_coefficients,
    strengthened_coefficient,
)
from repro.analysis.presolve.reductions import (
    detect_implied_integrality,
    fix_constant_columns,
    merge_duplicate_rows,
    merge_parallel_columns,
)
from repro.analysis.presolve.state import PresolveState
from repro.analysis.presolve.symmetry import break_symmetry, find_orbits
from repro.core import DataCollectionExplorer
from repro.core.options import SolveOptions
from repro.milp import BranchAndBoundSolver, HighsSolver, SolveStatus
from repro.milp.expr import LinExpr
from repro.milp.model import Model
from repro.milp.solution import Solution
from repro.resilience.watchdog import ResilientSolver

FEAS_TOL = 1e-6


def assert_feasible(model: Model, x, tol: float = FEAS_TOL) -> None:
    """``x`` satisfies every bound, row and integrality of ``model``."""
    form = model.to_standard_form()
    x = np.asarray(x, dtype=float)
    assert x.shape[0] == form.c.shape[0]
    assert np.all(x >= form.x_lower - tol), "lower bound violated"
    assert np.all(x <= form.x_upper + tol), "upper bound violated"
    integral = np.flatnonzero(form.integrality == 1)
    assert np.all(
        np.abs(x[integral] - np.round(x[integral])) <= 1e-5
    ), "integrality violated"
    if form.a_matrix.shape[0]:
        ax = form.a_matrix @ x
        scale = 1.0 + np.abs(ax)
        assert np.all(ax >= form.b_lower - tol * scale), "row lower violated"
        assert np.all(ax <= form.b_upper + tol * scale), "row upper violated"


def objective_at(model: Model, x) -> float:
    obj = model.objective
    return obj.constant + sum(c * float(x[j]) for j, c in obj.coeffs.items())


# -- propagation --------------------------------------------------------------


class TestPropagation:
    def test_tightens_implied_bounds(self):
        m = Model("prop")
        x = m.continuous("x", 0.0, 100.0)
        y = m.continuous("y", 0.0, 100.0)
        m.add(x + y <= 10, name="cap")
        m.minimize(x + y)
        state = PresolveState(m)
        tightened, _ = propagate(state)
        assert tightened >= 2
        assert state.upper[x.index] == pytest.approx(10.0)
        assert state.upper[y.index] == pytest.approx(10.0)

    def test_integer_bounds_are_rounded(self):
        m = Model("round")
        n = m.integer("n", 0.0, 10.0)
        m.add(2 * n <= 7, name="half")
        m.minimize(-1 * n)
        state = PresolveState(m)
        propagate(state)
        assert state.upper[n.index] == pytest.approx(3.0)  # floor(3.5)

    def test_removes_redundant_rows(self):
        m = Model("redundant")
        x = m.binary("x")
        y = m.binary("y")
        m.add(x + y <= 5, name="slack")  # max activity is 2
        m.minimize(x + y)
        state = PresolveState(m)
        _, removed = propagate(state)
        assert removed == 1
        assert not state.rows[0].alive

    def test_detects_interval_infeasibility(self):
        m = Model("conflict")
        x = m.binary("x")
        y = m.binary("y")
        m.add(x + y >= 3, name="impossible")
        m.minimize(x + y)
        state = PresolveState(m)
        propagate(state)
        assert state.infeasible is not None

    def test_propagated_bounds_helper_is_read_only(self):
        m = Model("helper")
        x = m.continuous("x", 0.0, 50.0)
        m.add(x <= 5, name="cap")
        m.minimize(x)
        lower, upper, total = propagated_bounds(m)
        assert upper[x.index] == pytest.approx(5.0)
        assert total >= 1
        assert m.variables[x.index].upper == 50.0  # untouched


# -- coefficient strengthening ------------------------------------------------


class TestStrengthening:
    def test_big_m_coefficient_shrinks(self):
        # c <= 10*x with c in [0, 6]: the 10 is provably loose, the
        # strengthened row is c <= 6*x.
        m = Model("bigm")
        x = m.binary("x")
        c = m.continuous("c", 0.0, 6.0)
        m.add(c - 10 * x <= 0, name="indicator")
        m.minimize(c)
        state = PresolveState(m)
        plan = strengthened_coefficient(state, state.rows[0], x.index)
        assert plan is not None
        applied = strengthen_coefficients(state)
        assert applied == 1
        row = state.rows[0]
        # Normalized `>=` form: 10x - c >= 0 became 6x - c >= 0.
        assert abs(row.coeffs[x.index]) == pytest.approx(6.0)

    def test_tight_coefficient_untouched(self):
        m = Model("tight")
        x = m.binary("x")
        c = m.continuous("c", 0.0, 6.0)
        m.add(c - 6 * x <= 0, name="indicator")
        m.minimize(c)
        state = PresolveState(m)
        assert strengthen_coefficients(state) == 0

    def test_strengthening_preserves_the_optimum(self):
        m = Model("bigm-opt")
        x = m.binary("x")
        c = m.continuous("c", 0.0, 6.0)
        m.add(c - 10 * x <= 0, name="indicator")
        m.add(c >= 4, name="demand")
        m.minimize(5 * x + c)
        raw = BranchAndBoundSolver().solve(m)
        result = presolve(m, mode="reduce")
        reduced = BranchAndBoundSolver().solve(result.model)
        assert reduced.objective == pytest.approx(raw.objective)


# -- fixing and merging -------------------------------------------------------


class TestFixing:
    def test_collapsed_bounds_fix_the_column(self):
        m = Model("collapsed")
        x = m.continuous("x", 3.0, 3.0)
        y = m.continuous("y", 0.0, 10.0)
        m.add(x + y <= 8, name="cap")
        m.minimize(y)
        state = PresolveState(m)
        assert fix_constant_columns(state) == 1
        assert state.fixed[x.index] == pytest.approx(3.0)
        # x substituted out: the row became y <= 5.
        assert x.index not in state.rows[0].coeffs
        assert state.rows[0].upper == pytest.approx(5.0)

    def test_unused_column_fixed_at_cheap_bound(self):
        m = Model("unused")
        x = m.continuous("x", 2.0, 9.0)  # in no row
        y = m.binary("y")
        m.add(y >= 1, name="force")
        m.minimize(3 * x + y)
        state = PresolveState(m)
        fix_constant_columns(state)
        assert state.fixed[x.index] == pytest.approx(2.0)  # c>0 -> lower


class TestDuplicateRows:
    def test_scaled_copies_merge(self):
        m = Model("dup")
        x = m.continuous("x", 0.0, 10.0)
        y = m.continuous("y", 0.0, 10.0)
        m.add(x + y <= 8, name="a")
        m.add(2 * x + 2 * y <= 12, name="b")  # tighter after scaling
        m.minimize(-1 * (x + y))
        state = PresolveState(m)
        assert merge_duplicate_rows(state) == 1
        live = state.live_rows()
        assert len(live) == 1
        # Intersection keeps the tighter x + y <= 6 (up to the scale of
        # whichever row survived).
        row = live[0]
        pivot = row.coeffs[x.index]
        assert row.upper / pivot == pytest.approx(6.0)

    def test_contradictory_copies_prove_infeasibility(self):
        m = Model("dup-bad")
        x = m.continuous("x", 0.0, 10.0)
        y = m.continuous("y", 0.0, 10.0)
        m.add(x + y >= 6, name="a")
        m.add(x + y <= 2, name="b")
        m.minimize(x)
        state = PresolveState(m)
        merge_duplicate_rows(state)
        assert state.infeasible is not None


class TestParallelColumns:
    def make_parallel(self):
        m = Model("par")
        a = m.binary("a")
        b = m.binary("b")
        m.add(a + b >= 1, name="cover")
        m.minimize(2 * a + 2 * b)
        return m, a, b

    def test_identical_columns_merge(self):
        m, a, b = self.make_parallel()
        state = PresolveState(m)
        assert merge_parallel_columns(state) == 1
        assert len(state.merges) == 1
        merge = state.merges[0]
        assert {merge.kept, merge.dropped} == {a.index, b.index}
        # The keeper's bounds widened to the aggregate range [0, 2].
        assert state.upper[merge.kept] == pytest.approx(2.0)

    def test_merge_round_trips_through_the_solver(self):
        m, _, _ = self.make_parallel()
        result = presolve(m, mode="reduce")
        solution = BranchAndBoundSolver().solve(result.model)
        restored = result.postsolve.restore(solution)
        assert_feasible(m, restored.x)
        assert objective_at(m, restored.x) == pytest.approx(
            restored.objective
        )
        assert restored.objective == pytest.approx(2.0)

    def test_objective_mismatch_blocks_the_merge(self):
        m = Model("not-par")
        a = m.binary("a")
        b = m.binary("b")
        m.add(a + b >= 1, name="cover")
        m.minimize(2 * a + 3 * b)  # different costs: not interchangeable
        state = PresolveState(m)
        assert merge_parallel_columns(state) == 0


class TestImpliedIntegrality:
    def test_equality_with_integer_rest_implies_integrality(self):
        m = Model("implied")
        n = m.integer("n", 0.0, 5.0)
        c = m.continuous("c", 0.0, 10.0)
        m.add(c + 2 * n == 6, name="link")
        m.minimize(c)
        state = PresolveState(m)
        assert detect_implied_integrality(state) == 1
        assert state.integer[c.index]

    def test_fractional_bound_blocks_it(self):
        m = Model("frac")
        n = m.integer("n", 0.0, 5.0)
        c = m.continuous("c", 0.0, 10.0)
        m.add(c + 2 * n == 6.5, name="link")
        m.minimize(c)
        state = PresolveState(m)
        assert detect_implied_integrality(state) == 0


# -- symmetry -----------------------------------------------------------------


def symmetric_cover_model(k: int = 4) -> Model:
    """k interchangeable binaries, pick at least two, unit cost each."""
    m = Model("sym")
    xs = [m.binary(f"x{i}") for i in range(k)]
    expr = xs[0] + 0.0
    for v in xs[1:]:
        expr = expr + v
    m.add(expr >= 2, name="pick2")
    m.minimize(expr)
    return m


class TestSymmetry:
    def test_interchangeable_binaries_form_one_orbit(self):
        state = PresolveState(symmetric_cover_model(4))
        orbits = find_orbits(state)
        assert any(len(orbit) == 4 for orbit in orbits)

    def test_distinct_costs_break_the_orbit(self):
        m = Model("asym")
        a = m.binary("a")
        b = m.binary("b")
        m.add(a + b >= 1, name="cover")
        m.minimize(a + 2 * b)
        state = PresolveState(m)
        assert not find_orbits(state)

    def test_lex_rows_preserve_the_optimum(self):
        m = symmetric_cover_model(5)
        raw = BranchAndBoundSolver().solve(m)
        state = PresolveState(m)
        found, broken, added = break_symmetry(state)
        assert found >= 1 and added >= 1
        reduced, postsolve = state.extract()
        solution = BranchAndBoundSolver().solve(reduced)
        assert solution.objective == pytest.approx(raw.objective)
        restored = postsolve.restore(solution)
        assert_feasible(m, restored.x)


# -- combinatorial lower bound ------------------------------------------------


class TestCombinatorialBound:
    def test_covering_bound_beats_the_trivial_bound(self):
        m = Model("cover")
        xs = [m.binary(f"x{i}") for i in range(5)]
        expr = xs[0] + 0.0
        for v in xs[1:]:
            expr = expr + v
        m.add(expr >= 3, name="pick3")
        m.minimize(xs[0] + xs[1] + xs[2] + xs[3] + xs[4])
        state = PresolveState(m)
        bound = combinatorial_lower_bound(state)
        assert bound == pytest.approx(3.0)  # trivial bound would be 0

    def test_bound_never_exceeds_the_optimum(self):
        m = Model("cover-mixed")
        xs = [m.binary(f"x{i}") for i in range(4)]
        expr = xs[0] + 0.0
        for v in xs[1:]:
            expr = expr + v
        m.add(expr >= 2, name="pick2")
        m.minimize(3 * xs[0] + 1 * xs[1] + 4 * xs[2] + 2 * xs[3])
        state = PresolveState(m)
        bound = combinatorial_lower_bound(state)
        optimum = BranchAndBoundSolver().solve(m).objective
        assert bound is not None
        assert bound <= optimum + 1e-9
        assert bound == pytest.approx(3.0)  # 1 + 2, the two cheapest

    def test_covering_gain_ignores_free_columns(self):
        m = Model("free")
        xs = [m.binary(f"x{i}") for i in range(3)]
        expr = xs[0] + 0.0
        for v in xs[1:]:
            expr = expr + v
        m.add(expr >= 2, name="pick2")
        m.minimize(5 * xs[0] - 1 * xs[1] + 2 * xs[2])
        state = PresolveState(m)
        # x1 has negative cost (free to set): only one more pick needed,
        # and the cheapest positive cost is 2.
        gain = _covering_gain(state, state.rows[0].coeffs, 2)
        assert gain == pytest.approx(2.0)


# -- postsolve ----------------------------------------------------------------


class TestPostsolve:
    def test_fixed_values_apply_before_merge_splits(self):
        # Regression: a merge keeper that is *later* fixed must still be
        # split over the dropped column, so restore() has to write fixed
        # values before undoing merges.
        mapping = PostsolveMap(
            n_original=2,
            fixed={0: 2.0},
            column_of={},
            merges=[ColumnMerge(
                kept=0, dropped=1,
                dropped_lower=0.0, dropped_upper=1.0,
                rest_lower=0.0, rest_upper=1.0,
                integer=True,
            )],
            original_objective=LinExpr({0: 1.0, 1: 1.0}),
        )
        restored = mapping.restore(Solution(
            status=SolveStatus.OPTIMAL, objective=2.0,
            x=np.zeros(0),
        ))
        assert restored.x[0] == pytest.approx(1.0)
        assert restored.x[1] == pytest.approx(1.0)

    def test_integer_split_keeps_both_parts_in_bounds(self):
        mapping = PostsolveMap(
            n_original=2,
            fixed={},
            column_of={0: 0},
            merges=[ColumnMerge(
                kept=0, dropped=1,
                dropped_lower=0.0, dropped_upper=3.0,
                rest_lower=1.0, rest_upper=3.0,
                integer=True,
            )],
            original_objective=LinExpr({0: 1.0, 1: 1.0}),
        )
        for total in (1.0, 2.0, 4.0, 6.0):
            restored = mapping.restore(Solution(
                status=SolveStatus.OPTIMAL, objective=total,
                x=np.array([total]),
            ))
            part, rest = restored.x[1], restored.x[0]
            assert part + rest == pytest.approx(total)
            assert 0.0 <= part <= 3.0
            assert 1.0 <= rest <= 3.0
            assert part == pytest.approx(round(part))

    def test_statusonly_solutions_pass_through(self):
        mapping = PostsolveMap(
            n_original=3, fixed={0: 1.0}, column_of={1: 0, 2: 1},
        )
        bare = Solution(status=SolveStatus.INFEASIBLE)
        assert mapping.restore(bare) is bare

    def test_forward_maps_into_the_reduced_space(self):
        mapping = PostsolveMap(
            n_original=3, fixed={0: 1.0}, column_of={1: 0, 2: 1},
        )
        reduced = mapping.forward(np.array([1.0, 4.0, 5.0]))
        assert reduced is not None
        np.testing.assert_allclose(reduced, [4.0, 5.0])

    def test_forward_rejects_wrong_length_and_fixed_disagreement(self):
        mapping = PostsolveMap(
            n_original=3, fixed={0: 1.0}, column_of={1: 0, 2: 1},
        )
        assert mapping.forward(np.array([1.0, 4.0])) is None
        # A start disagreeing with a presolve-fixed column is stale for
        # the reduced model: drop it, never misreport it.
        assert mapping.forward(np.array([0.0, 4.0, 5.0])) is None

    def test_forward_folds_merged_columns_into_the_kept_one(self):
        mapping = PostsolveMap(
            n_original=2,
            fixed={},
            column_of={0: 0},
            merges=[ColumnMerge(
                kept=0, dropped=1,
                dropped_lower=0.0, dropped_upper=3.0,
                rest_lower=1.0, rest_upper=3.0,
                integer=True,
            )],
            original_objective=LinExpr({0: 1.0, 1: 1.0}),
        )
        reduced = mapping.forward(np.array([2.0, 1.0]))
        np.testing.assert_allclose(reduced, [3.0])

    def test_forward_restore_round_trip_on_a_real_model(self):
        m = smoke_model()
        result = presolve(m, mode="reduce")
        original = HighsSolver().solve(m)
        reduced = result.postsolve.forward(original.x)
        assert reduced is not None
        restored = result.postsolve.restore(Solution(
            status=SolveStatus.OPTIMAL,
            objective=original.objective, x=reduced,
        ))
        # The round trip reproduces an assignment with the exact same
        # objective under the original model.
        value = m.objective.constant + sum(
            coeff * restored.x[j]
            for j, coeff in m.objective.coeffs.items()
        )
        assert value == pytest.approx(original.objective)


# -- engine -------------------------------------------------------------------


def smoke_model() -> Model:
    """Symmetric binaries + a loose big-M indicator + a fixed column."""
    m = Model("smoke")
    xs = [m.binary(f"x{i}") for i in range(4)]
    c = m.continuous("c", 0.0, 6.0)
    fixed = m.continuous("fixed", 2.0, 2.0)
    picks = xs[0] + 0.0
    for v in xs[1:]:
        picks = picks + v
    m.add(picks >= 2, name="pick2")
    m.add(c - 50 * xs[0] <= 0, name="indicator")
    m.add(c >= 4 - 50 * (1 - xs[0]), name="demand")
    m.add(fixed >= 1, name="fixed-row")
    m.minimize(2 * picks + c + fixed)
    return m


class TestEngine:
    def test_mode_off_is_identity(self):
        m = smoke_model()
        result = presolve(m, mode="off")
        assert result.model is m
        assert result.postsolve.identity
        assert not result.report.reduced_anything

    def test_invalid_mode_raises(self):
        with pytest.raises(ValueError, match="presolve mode"):
            presolve(smoke_model(), mode="aggressive")
        assert PRESOLVE_MODES == ("off", "reduce", "full")

    @pytest.mark.parametrize("mode", ["reduce", "full"])
    def test_reductions_reported_and_objective_exact(self, mode):
        m = smoke_model()
        raw = BranchAndBoundSolver().solve(m)
        result = presolve(m, mode=mode)
        report = result.report
        assert report.mode == mode
        assert report.reduced_anything
        assert report.vars_fixed >= 1
        assert report.cols_after < report.cols_before
        solution = HighsSolver().solve(result.model)
        restored = result.postsolve.restore(solution)
        assert restored.objective == pytest.approx(raw.objective)
        assert_feasible(m, restored.x)
        assert restores_cleanly(result.postsolve, solution)

    def test_original_model_is_never_mutated(self):
        m = smoke_model()
        before = [(v.lower, v.upper, v.is_integer) for v in m.variables]
        rows_before = len(m.constraints)
        presolve(m, mode="full")
        assert [(v.lower, v.upper, v.is_integer) for v in m.variables] \
            == before
        assert len(m.constraints) == rows_before

    def test_infeasibility_is_proved_not_solved(self):
        m = Model("doomed")
        x = m.binary("x")
        y = m.binary("y")
        m.add(x + y >= 3, name="impossible")
        m.minimize(x + y)
        result = presolve(m, mode="full")
        assert result.proved_infeasible
        assert result.report.infeasible_reason
        diag = result.report.to_diagnostic()
        assert diag.severity is Severity.ERROR
        assert diag.rule_id == "presolve.infeasible"

    def test_bound_hint_lands_on_the_reduced_model(self):
        m = symmetric_cover_model(6)
        result = presolve(m, mode="reduce")
        hint = result.model.hints.get("objective_lower_bound")
        assert hint == pytest.approx(2.0)

    def test_report_diagnostic_is_info_when_feasible(self):
        result = presolve(smoke_model(), mode="reduce")
        diag = result.report.to_diagnostic()
        assert diag.severity is Severity.INFO
        assert diag.rule_id == "presolve.report"
        assert diag.data["cols"]["after"] == result.report.cols_after


class TestBnBHint:
    def test_hint_stops_the_search_early_and_stays_optimal(self):
        m = symmetric_cover_model(6)
        raw = BranchAndBoundSolver().solve(m)
        m.hints["objective_lower_bound"] = raw.objective
        hinted = BranchAndBoundSolver().solve(m)
        assert hinted.status == SolveStatus.OPTIMAL
        assert hinted.objective == pytest.approx(raw.objective)
        assert hinted.node_count <= raw.node_count

    def test_unreachably_low_hint_is_harmless(self):
        m = symmetric_cover_model(5)
        raw = BranchAndBoundSolver().solve(m)
        m.hints["objective_lower_bound"] = raw.objective - 100.0
        hinted = BranchAndBoundSolver().solve(m)
        assert hinted.status == SolveStatus.OPTIMAL
        assert hinted.objective == pytest.approx(raw.objective)


# -- options / explorer / watchdog wiring -------------------------------------


class TestWiring:
    def test_options_validate_the_mode(self):
        assert SolveOptions(presolve="reduce").presolve == "reduce"
        with pytest.raises(ValueError, match="presolve"):
            SolveOptions(presolve="yes")

    def test_explorer_presolve_matches_off(
        self, grid_instance, library, grid_requirements
    ):
        base = DataCollectionExplorer(
            grid_instance.template, library, grid_requirements
        ).solve("cost")
        for mode in ("reduce", "full"):
            result = DataCollectionExplorer(
                grid_instance.template, library, grid_requirements,
                presolve=mode,
            ).solve("cost")
            assert result.status == SolveStatus.OPTIMAL
            assert result.solution.objective == pytest.approx(
                base.solution.objective
            )
            presolve_diags = [
                d for d in result.diagnostics
                if d.rule_id == "presolve.report"
            ]
            assert len(presolve_diags) == 1
            assert presolve_diags[0].data["rows"]["after"] \
                <= presolve_diags[0].data["rows"]["before"]

    def test_build_keeps_the_original_model(
        self, grid_instance, library, grid_requirements
    ):
        explorer = DataCollectionExplorer(
            grid_instance.template, library, grid_requirements,
            presolve="reduce",
        )
        built = explorer.build("cost")
        assert built.presolve is not None
        assert not built.model.name.endswith(":presolved")
        assert built.presolve.model.name.endswith(":presolved")

    def test_resilient_solver_runs_presolve(self):
        m = smoke_model()
        raw = HighsSolver().solve(m)
        solver = ResilientSolver(HighsSolver(), presolve="reduce")
        solution = solver.solve(m)
        assert solution.status == SolveStatus.OPTIMAL
        assert solution.objective == pytest.approx(raw.objective)
        assert len(solution.x) == len(m.variables)

    def test_resilient_solver_reports_proved_infeasibility(self):
        m = Model("doomed")
        x = m.binary("x")
        y = m.binary("y")
        m.add(x + y >= 3, name="impossible")
        m.minimize(x + y)
        solution = ResilientSolver(HighsSolver(), presolve="full").solve(m)
        assert solution.status == SolveStatus.INFEASIBLE
        assert "presolve" in solution.message


# -- randomized round-trips ---------------------------------------------------


@st.composite
def random_milp(draw):
    """A small random MILP guaranteed feasible by construction: row
    bounds are anchored around a random in-bounds assignment."""
    rng = np.random.default_rng(draw(st.integers(0, 2**32 - 1)))
    n = draw(st.integers(2, 8))
    n_rows = draw(st.integers(1, 6))
    m = Model("random")
    anchor = []
    for j in range(n):
        kind = draw(st.sampled_from(["binary", "integer", "continuous"]))
        if kind == "binary":
            var = m.binary(f"v{j}")
        elif kind == "integer":
            var = m.integer(f"v{j}", 0.0, float(rng.integers(1, 6)))
        else:
            var = m.continuous(f"v{j}", 0.0, float(rng.uniform(1.0, 8.0)))
        if var.is_integer:
            anchor.append(float(rng.integers(var.lower, var.upper + 1)))
        else:
            anchor.append(float(rng.uniform(var.lower, var.upper)))
    for i in range(n_rows):
        support = rng.choice(n, size=rng.integers(1, n + 1), replace=False)
        coeffs = {int(j): float(rng.integers(-4, 5)) or 1.0 for j in support}
        expr = LinExpr(coeffs)
        at_anchor = sum(c * anchor[j] for j, c in coeffs.items())
        lo = at_anchor - float(rng.uniform(0.0, 6.0))
        hi = at_anchor + float(rng.uniform(0.0, 6.0))
        if draw(st.booleans()):
            lo = float("-inf")
        m.add_range(expr, lo, hi, name=f"r{i}")
    obj = LinExpr(
        {j: float(rng.integers(-5, 6)) for j in range(n)},
        float(rng.integers(-3, 4)),
    )
    m.minimize(obj)
    return m


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(model=random_milp(), mode=st.sampled_from(["reduce", "full"]))
def test_presolve_round_trip_is_exact(model, mode):
    """Postsolved solutions are feasible in the original model and hit
    exactly the objective of solving the original directly."""
    raw = BranchAndBoundSolver().solve(model)
    assert raw.status == SolveStatus.OPTIMAL  # feasible by construction
    result = presolve(model, mode=mode)
    assert not result.proved_infeasible
    report = result.report
    assert report.cols_after <= report.cols_before
    assert report.rows_after <= report.rows_before + report.lex_rows_added
    solution = BranchAndBoundSolver().solve(result.model)
    assert solution.status == SolveStatus.OPTIMAL
    restored = result.postsolve.restore(solution)
    assert_feasible(model, restored.x)
    assert restored.objective == pytest.approx(raw.objective, abs=1e-6)
    assert objective_at(model, restored.x) == pytest.approx(
        restored.objective, abs=1e-6
    )
    assert restores_cleanly(result.postsolve, solution)
    hint = result.model.hints.get("objective_lower_bound")
    if hint is not None:
        assert hint <= raw.objective + 1e-6


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(model=random_milp())
def test_propagated_bounds_never_cut_off_solutions(model):
    """The read-only propagation helper only ever *implies* bounds: the
    optimal assignment of the original model satisfies them."""
    raw = BranchAndBoundSolver().solve(model)
    assert raw.status == SolveStatus.OPTIMAL
    lower, upper, _ = propagated_bounds(model)
    for j, value in enumerate(raw.x):
        assert value >= lower[j] - 1e-6
        assert value <= upper[j] + 1e-6
