"""Tests for the incremental what-if re-solve: exactness and reuse."""

import pytest

from repro.runtime import EncodeCache
from repro.scenarios import (
    apply_edits,
    cold_resolve,
    default_registry,
    incremental_resolve,
    parse_edit,
    prepare_cache,
)


def solve_then_edit(name: str, *edit_texts: str):
    """Cold-solve ``name``, apply the edits, return all the pieces."""
    scenario = default_registry().generate(name)
    cache = EncodeCache()
    base = scenario.explore(cache=cache)
    assert base.feasible
    edits = tuple(parse_edit(t) for t in edit_texts)
    edited, deltas = apply_edits(scenario, edits)
    return scenario, cache, base, edited, deltas


class TestExactness:
    """Incremental and cold re-solves must agree on the objective."""

    @pytest.mark.parametrize("name,edit_text", [
        ("campus:buildings_x=2,buildings_y=2:0", "add-wall:30,5,30,25,brick"),
        ("multifloor:floors=2,rooms_x=3:1", "remove-wall:2"),
        ("materials::0", "move-node:5,30.0,14.0"),
        ("reqmix::0", "set-min-snr:21"),
    ])
    def test_objective_matches_cold_resolve(self, name, edit_text):
        scenario, cache, base, edited, deltas = solve_then_edit(
            name, edit_text
        )
        incremental = incremental_resolve(
            scenario, edited, deltas,
            previous=base.architecture, cache=cache,
        )
        cold = cold_resolve(edited)
        assert incremental.feasible and cold.feasible
        assert incremental.objective_value == cold.objective_value

    def test_reach_transplant_matches_cold_resolve(self):
        scenario, cache, base, edited, deltas = solve_then_edit(
            "moving_target::0", "add-wall:20,2,20,20,concrete"
        )
        incremental = incremental_resolve(
            scenario, edited, deltas,
            previous=base.architecture, cache=cache,
        )
        cold = cold_resolve(edited)
        assert incremental.objective_value == cold.objective_value
        assert cache.counters.partial_count("pathloss") >= 1

    def test_disruptive_edit_still_exact(self):
        """A wall crossing everything aborts most replays, never wrongly."""
        scenario, cache, base, edited, deltas = solve_then_edit(
            "multifloor:floors=2,rooms_x=3:0", "add-wall:0,14,48,14,concrete"
        )
        incremental = incremental_resolve(
            scenario, edited, deltas,
            previous=base.architecture, cache=cache,
        )
        cold = cold_resolve(edited)
        assert incremental.feasible == cold.feasible
        if cold.feasible:
            assert incremental.objective_value == cold.objective_value


class TestPrepareCache:
    def test_transplants_and_counts(self):
        scenario, cache, base, edited, deltas = solve_then_edit(
            "campus:buildings_x=2,buildings_y=2:0",
            "add-wall:30,5,30,25,brick",
        )
        info = prepare_cache(scenario, edited, deltas, cache)
        assert info["graph_seeded"] == 1
        assert info["yen_routes_reused"] + info["yen_routes_aborted"] > 0
        assert cache.counters.partial_count() > 0

    def test_requirement_only_edit_seeds_nothing(self):
        scenario, cache, base, edited, deltas = solve_then_edit(
            "campus::0", "set-min-snr:22"
        )
        info = prepare_cache(scenario, edited, deltas, cache)
        assert info == {
            "graph_seeded": 0,
            "yen_routes_reused": 0,
            "yen_routes_aborted": 0,
            "yen_rounds_seeded": 0,
            "reach_seeded": 0,
        }
        # The keys did not change, so the re-solve hits the entries as-is.
        result = edited.explore(cache=cache)
        assert result.feasible
        assert cache.counters.hit_count("yen") > 0

    def test_seeded_rounds_are_hit_not_recomputed(self):
        scenario, cache, base, edited, deltas = solve_then_edit(
            "campus:buildings_x=2,buildings_y=2:0",
            "add-wall:30,5,30,25,brick",
        )
        info = prepare_cache(scenario, edited, deltas, cache)
        hits_before = cache.counters.hit_count("yen")
        result = edited.explore(
            cache=cache, previous=base.architecture,
        )
        assert result.feasible
        gained = cache.counters.hit_count("yen") - hits_before
        assert gained >= info["yen_rounds_seeded"]

    def test_cold_cache_seeds_nothing(self):
        scenario = default_registry().generate("campus::0")
        edits = (parse_edit("add-wall:30,5,30,25,brick"),)
        edited, deltas = apply_edits(scenario, edits)
        info = prepare_cache(scenario, edited, deltas, EncodeCache())
        assert info["graph_seeded"] == 0
        assert info["yen_rounds_seeded"] == 0


class TestWarmStart:
    def test_incremental_resolve_defaults_to_fresh_cache(self):
        scenario = default_registry().generate("campus::0")
        edited, deltas = apply_edits(
            scenario, (parse_edit("add-wall:30,5,30,25,brick"),)
        )
        result = incremental_resolve(scenario, edited, deltas)
        cold = cold_resolve(edited)
        assert result.objective_value == cold.objective_value
