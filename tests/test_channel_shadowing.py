"""Tests for the deterministic shadowing overlay and BER quality bounds."""

import numpy as np
import pytest

from repro.channel import (
    LogDistanceModel,
    ShadowedChannel,
    bit_error_rate,
    snr_for_ber,
)
from repro.geometry import Point
from repro.network import LinkQualityRequirement


class TestShadowedChannel:
    @pytest.fixture()
    def channel(self):
        return ShadowedChannel(LogDistanceModel(exponent=2.0), sigma_db=4.0,
                               seed=7)

    def test_deterministic(self, channel):
        a, b = Point(1, 2), Point(10, 4)
        assert channel.path_loss_db(a, b) == channel.path_loss_db(a, b)

    def test_symmetric(self, channel):
        a, b = Point(1, 2), Point(10, 4)
        assert channel.path_loss_db(a, b) == channel.path_loss_db(b, a)
        assert channel.is_symmetric()

    def test_seed_changes_realization(self):
        base = LogDistanceModel(exponent=2.0)
        a, b = Point(1, 2), Point(10, 4)
        ch1 = ShadowedChannel(base, sigma_db=4.0, seed=1)
        ch2 = ShadowedChannel(base, sigma_db=4.0, seed=2)
        assert ch1.path_loss_db(a, b) != ch2.path_loss_db(a, b)

    def test_zero_sigma_is_base(self):
        base = LogDistanceModel(exponent=2.0)
        channel = ShadowedChannel(base, sigma_db=0.0)
        a, b = Point(1, 2), Point(10, 4)
        assert channel.path_loss_db(a, b) == pytest.approx(
            base.path_loss_db(a, b)
        )

    def test_offsets_statistically_sane(self):
        base = LogDistanceModel(exponent=2.0)
        channel = ShadowedChannel(base, sigma_db=4.0, seed=3)
        rng = np.random.default_rng(0)
        offsets = []
        for _ in range(400):
            a = Point(float(rng.uniform(0, 50)), float(rng.uniform(0, 50)))
            b = Point(float(rng.uniform(0, 50)), float(rng.uniform(0, 50)))
            offsets.append(
                channel.path_loss_db(a, b) - base.path_loss_db(a, b)
            )
        offsets = np.array(offsets)
        assert abs(float(offsets.mean())) < 0.8
        assert 3.0 < float(offsets.std()) < 5.0

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            ShadowedChannel(LogDistanceModel(), sigma_db=-1.0)


class TestBerRequirement:
    def test_snr_for_ber_inverse(self):
        for target in (1e-3, 1e-5, 1e-7):
            snr = snr_for_ber(target)
            assert bit_error_rate(snr) == pytest.approx(target, rel=1e-2)

    def test_tighter_ber_needs_more_snr(self):
        assert snr_for_ber(1e-8) > snr_for_ber(1e-3)

    def test_invalid_targets(self):
        with pytest.raises(ValueError):
            snr_for_ber(0.0)
        with pytest.raises(ValueError):
            snr_for_ber(0.6)

    def test_requirement_accepts_ber_only(self):
        req = LinkQualityRequirement(max_ber=1e-5)
        snr = req.effective_min_snr_db("qpsk")
        assert snr == pytest.approx(snr_for_ber(1e-5), abs=1e-6)

    def test_ber_and_snr_take_tighter(self):
        loose_ber = LinkQualityRequirement(min_snr_db=25.0, max_ber=1e-3)
        assert loose_ber.effective_min_snr_db("qpsk") == 25.0
        tight_ber = LinkQualityRequirement(min_snr_db=5.0, max_ber=1e-9)
        assert tight_ber.effective_min_snr_db("qpsk") > 5.0

    def test_invalid_ber_rejected(self):
        with pytest.raises(ValueError):
            LinkQualityRequirement(max_ber=0.7)

    def test_ber_bound_enforced_end_to_end(self, grid_instance, library):
        from repro.core import DataCollectionExplorer
        from repro.network import RequirementSet
        from repro.validation import link_rss_dbm, validate

        reqs = RequirementSet()
        for s in grid_instance.sensor_ids:
            reqs.require_route(s, grid_instance.sink_id)
        reqs.link_quality = LinkQualityRequirement(max_ber=1e-9)
        result = DataCollectionExplorer(
            grid_instance.template, library, reqs
        ).solve("cost")
        assert result.feasible
        report = validate(result.architecture, reqs)
        assert report.ok, report.violations
        noise = grid_instance.template.link_type.noise_dbm
        for u, v in result.architecture.active_edges:
            snr = link_rss_dbm(result.architecture, u, v) - noise
            assert bit_error_rate(snr) <= 1e-9 * (1 + 1e-6)

    def test_spec_pattern(self, grid_instance):
        from repro.spec import compile_spec

        compiled = compile_spec(
            "has_paths(sensors, sink)\nmax_bit_error_rate(1e-6)",
            grid_instance.template,
        )
        assert compiled.requirements.link_quality.max_ber == 1e-6
