"""Tests for deterministic fault injection (plans, env, end-to-end sites)."""

import pytest

from repro.milp.solution import SolveStatus
from repro.resilience import FaultError, FaultPlan, injected_faults
from repro.resilience.faults import (
    ENV_VAR,
    InjectedFault,
    InjectedHang,
    active_plan,
    fires,
    install,
    maybe_fire,
    uninstall,
)


class TestFaultPlan:
    def test_count_rule_fires_first_n_hits(self):
        plan = FaultPlan({"solver.error": 2})
        assert plan.should_fire("solver.error")
        assert plan.should_fire("solver.error")
        assert not plan.should_fire("solver.error")
        assert plan.hits("solver.error") == 3
        assert plan.fired("solver.error") == 2

    def test_index_rule_fires_exact_hits(self):
        plan = FaultPlan({"worker.crash": [1, 3]})
        fired = [plan.should_fire("worker.crash") for _ in range(5)]
        assert fired == [False, True, False, True, False]

    def test_unlisted_site_never_fires_but_counts(self):
        plan = FaultPlan({"solver.error": 1})
        assert not plan.should_fire("cache.compute")
        assert plan.hits("cache.compute") == 1

    def test_parse_kv_syntax(self):
        plan = FaultPlan.parse("solver.error=2, worker.crash=1")
        assert plan.should_fire("solver.error")
        assert plan.should_fire("worker.crash")
        assert not plan.should_fire("worker.crash")

    def test_parse_json_syntax(self):
        plan = FaultPlan.parse('{"solver.hang": [0]}')
        assert plan.should_fire("solver.hang")
        assert not plan.should_fire("solver.hang")

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            FaultPlan.parse("solver.error")
        with pytest.raises(ValueError):
            FaultPlan({"x": True})
        with pytest.raises(ValueError):
            FaultPlan({"x": -1})

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "cache.compute=1")
        plan = FaultPlan.from_env()
        assert plan is not None and plan.should_fire("cache.compute")
        monkeypatch.delenv(ENV_VAR)
        assert FaultPlan.from_env() is None


class TestActivation:
    def test_inactive_by_default(self):
        uninstall()
        assert active_plan() is None
        assert not fires("solver.error")
        maybe_fire("solver.error")  # no-op, must not raise

    def test_install_uninstall(self):
        install(FaultPlan({"solver.error": 1}))
        assert fires("solver.error")
        uninstall()
        assert not fires("solver.error")

    def test_env_var_activates_lazily(self, monkeypatch):
        uninstall()  # forget any cached env check
        monkeypatch.setenv(ENV_VAR, "solver.error=1")
        assert fires("solver.error")
        uninstall()

    def test_context_manager_scopes_plan(self):
        with injected_faults({"cache.compute": 1}) as plan:
            with pytest.raises(InjectedFault):
                maybe_fire("cache.compute")
            assert plan.fired() == 1
        assert active_plan() is None

    def test_hang_site_raises_timeout_subclass(self):
        with injected_faults({"solver.hang": 1}):
            with pytest.raises(TimeoutError) as excinfo:
                maybe_fire("solver.hang")
            assert isinstance(excinfo.value, InjectedHang)
            assert isinstance(excinfo.value, FaultError)


class TestSitesEndToEnd:
    def test_solver_error_yields_error_status(self):
        from repro.milp.highs import HighsSolver
        from repro.milp.model import Model

        m = Model()
        x = m.binary("x")
        m.minimize(x)
        with injected_faults({"solver.error": 1}):
            bad = HighsSolver().solve(m)
            good = HighsSolver().solve(m)
        assert bad.status is SolveStatus.ERROR
        assert "injected" in bad.message
        assert good.status is SolveStatus.OPTIMAL

    def test_solver_hang_raises_from_both_backends(self):
        from repro.milp.branch_and_bound import BranchAndBoundSolver
        from repro.milp.highs import HighsSolver
        from repro.milp.model import Model

        m = Model()
        x = m.binary("x")
        m.minimize(x)
        with injected_faults({"solver.hang": 2}):
            with pytest.raises(InjectedHang):
                HighsSolver().solve(m)
            with pytest.raises(InjectedHang):
                BranchAndBoundSolver().solve(m)

    def test_watchdog_rides_out_injected_faults(self):
        """An ERROR then a hang, and the chain still lands OPTIMAL."""
        from repro.milp.highs import HighsSolver
        from repro.milp.model import Model
        from repro.resilience import ResilientSolver, RetryPolicy

        m = Model()
        x = m.binary("x")
        m.minimize(x)
        solver = ResilientSolver(
            HighsSolver(), fallbacks=(),
            retry=RetryPolicy(max_retries=2, base_delay_s=0.0),
        )
        with injected_faults({"solver.error": 1, "solver.hang": [1]}):
            solution = solver.solve(m)
        assert solution.status is SolveStatus.OPTIMAL
        statuses = [a.status for a in solution.extra["solve_attempts"]]
        assert statuses == ["error", "hang", "optimal"]

    def test_worker_crash_retried_by_batch_runner(self):
        from repro.runtime import BatchRunner, Trial

        with injected_faults({"worker.crash": 1}) as plan:
            # Sequential mode calls fn directly (no worker wrapper), so
            # route through the pooled path with two trials.
            runner = BatchRunner(workers=2, mode="thread", retries=1)
            outcomes = runner.run([
                Trial(lambda: "a"), Trial(lambda: "b"),
            ])
            assert [o.value for o in outcomes] == ["a", "b"]
            assert plan.fired("worker.crash") == 1
            assert max(o.attempts for o in outcomes) == 2

    def test_checkpoint_corrupt_detected_on_reload(self, tmp_path):
        from repro.resilience import Checkpoint

        meta = {"ladder": [1], "objective": "cost"}
        ckpt = Checkpoint(tmp_path / "c.jsonl", "kstar", meta)
        ckpt.append({"k_star": 1, "status": "optimal"})
        with injected_faults({"checkpoint.corrupt": 1}):
            ckpt.append({"k_star": 3, "status": "optimal"})
        fresh = Checkpoint(tmp_path / "c.jsonl", "kstar", meta)
        # The mangled line is the *last* one: salvage drops it and keeps
        # the intact prefix (matching the kill-mid-write contract).
        assert [r["k_star"] for r in fresh.load()] == [1]
