"""Batch path-loss evaluation vs the scalar channel models.

Two different strictness levels, on purpose:

* The geometric predicates (``segments_intersect_matrix``,
  ``wall_attenuation_matrix``) mirror the scalar expressions operand for
  operand, so they are checked for *bitwise* equality.
* The distance terms go through numpy's ``hypot``/``log10``, which may
  round the last bit differently from :mod:`math`; full path-loss
  matrices are therefore checked to 1e-9 dB (observed differences are
  ~1e-13).
"""

import random

import numpy as np
import pytest

from repro.channel import (
    CHANNEL_BACKENDS,
    LogDistanceModel,
    MeasuredChannel,
    MultiWallModel,
    ShadowedChannel,
    path_loss_matrix,
)
from repro.geometry import (
    FloorPlan,
    Point,
    Rectangle,
    office_floorplan,
    points_to_array,
    segments_intersect_matrix,
    wall_attenuation_matrix,
)
from repro.geometry.primitives import Segment

MATERIALS = ["drywall", "brick", "concrete", "glass", "wood", "metal"]


def random_plan(seed: int, n_walls: int | None = None) -> FloorPlan:
    rng = random.Random(seed)
    plan = FloorPlan(Rectangle(0.0, 0.0, 80.0, 45.0))
    for _ in range(n_walls if n_walls is not None else rng.randint(2, 14)):
        plan.add_wall(
            Point(rng.uniform(0, 80), rng.uniform(0, 45)),
            Point(rng.uniform(0, 80), rng.uniform(0, 45)),
            material=rng.choice(MATERIALS),
            loss_db=rng.choice([None, rng.uniform(0.5, 18.0)]),
        )
    return plan


def random_points(seed: int, count: int) -> list[Point]:
    rng = random.Random(seed)
    return [
        Point(rng.uniform(0, 80), rng.uniform(0, 45)) for _ in range(count)
    ]


def assert_matches_scalar(model, points, rx_points=None, tol=1e-9):
    matrix = path_loss_matrix(model, points, rx_points)
    rx = points if rx_points is None else rx_points
    assert matrix.shape == (len(points), len(rx))
    for i, a in enumerate(points):
        for j, b in enumerate(rx):
            assert matrix[i, j] == pytest.approx(
                model.path_loss_db(a, b), abs=tol
            )


class TestSegmentKernel:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_pairs_match_scalar_exactly(self, seed):
        rng = random.Random(seed)
        segs_a = [
            Segment(
                Point(rng.uniform(0, 10), rng.uniform(0, 10)),
                Point(rng.uniform(0, 10), rng.uniform(0, 10)),
            )
            for _ in range(25)
        ]
        segs_b = segs_a[:5] + [
            Segment(
                Point(rng.uniform(0, 10), rng.uniform(0, 10)),
                Point(rng.uniform(0, 10), rng.uniform(0, 10)),
            )
            for _ in range(15)
        ]
        matrix = segments_intersect_matrix(
            np.array([[s.start.x, s.start.y] for s in segs_a]),
            np.array([[s.end.x, s.end.y] for s in segs_a]),
            np.array([[s.start.x, s.start.y] for s in segs_b]),
            np.array([[s.end.x, s.end.y] for s in segs_b]),
        )
        for i, sa in enumerate(segs_a):
            for j, sb in enumerate(segs_b):
                assert bool(matrix[i, j]) is sa.intersects(sb)

    def test_collinear_and_touching_cases_match(self):
        # The special-cased branches of Segment.intersects: collinear
        # overlap, endpoint touching, containment, clear separation.
        segs = [
            Segment(Point(0, 0), Point(5, 0)),
            Segment(Point(5, 0), Point(10, 0)),   # touches at (5, 0)
            Segment(Point(2, 0), Point(3, 0)),    # contained, collinear
            Segment(Point(6, 0), Point(9, 0)),    # collinear, disjoint from #0
            Segment(Point(0, 1), Point(5, 1)),    # parallel, offset
            Segment(Point(2, -1), Point(2, 1)),   # perpendicular crossing
            Segment(Point(0, 0), Point(0, 5)),    # shares endpoint (0, 0)
        ]
        coords_s = np.array([[s.start.x, s.start.y] for s in segs])
        coords_e = np.array([[s.end.x, s.end.y] for s in segs])
        matrix = segments_intersect_matrix(coords_s, coords_e, coords_s, coords_e)
        for i, sa in enumerate(segs):
            for j, sb in enumerate(segs):
                assert bool(matrix[i, j]) is sa.intersects(sb), (i, j)


class TestWallKernel:
    @pytest.mark.parametrize("seed", range(6))
    def test_bitwise_equal_to_scalar_sum(self, seed):
        plan = random_plan(seed)
        pts = random_points(seed + 100, 18)
        xy = points_to_array(pts)
        matrix = wall_attenuation_matrix(plan, xy, xy)
        for i, a in enumerate(pts):
            for j, b in enumerate(pts):
                # Bitwise: same walls hit, same summation order.
                assert matrix[i, j] == plan.wall_attenuation_db(a, b)

    def test_no_walls_means_zero(self):
        plan = FloorPlan(Rectangle(0, 0, 10, 10))
        xy = points_to_array(random_points(1, 5))
        assert not wall_attenuation_matrix(plan, xy, xy).any()

    def test_rectangular_shapes(self):
        plan = random_plan(3, n_walls=5)
        tx = points_to_array(random_points(4, 3))
        rx = points_to_array(random_points(5, 7))
        assert wall_attenuation_matrix(plan, tx, rx).shape == (3, 7)


class TestPathLossMatrix:
    @pytest.mark.parametrize("seed", range(5))
    def test_log_distance_matches_scalar(self, seed):
        assert_matches_scalar(
            LogDistanceModel(exponent=3.0), random_points(seed, 20)
        )

    def test_log_distance_clamps_below_reference(self):
        model = LogDistanceModel(exponent=2.0, reference_distance=1.0)
        pts = [Point(0, 0), Point(0.1, 0), Point(5, 0)]
        assert_matches_scalar(model, pts)

    @pytest.mark.parametrize("seed", range(5))
    def test_multiwall_matches_scalar(self, seed):
        assert_matches_scalar(
            MultiWallModel(random_plan(seed)), random_points(seed + 50, 16)
        )

    def test_multiwall_office_with_cap(self):
        model = MultiWallModel(office_floorplan(), max_wall_loss_db=15.0)
        assert_matches_scalar(model, random_points(9, 20))

    def test_shadowed_multiwall_matches_scalar(self):
        model = ShadowedChannel(
            MultiWallModel(random_plan(11)), sigma_db=4.0, seed=3
        )
        assert_matches_scalar(model, random_points(12, 12))

    def test_shadowed_over_hookless_base_falls_back(self):
        pts = random_points(13, 4)
        table = {
            (a, b): 40.0 + 1.0 * i + 0.1 * j
            for i, a in enumerate(pts)
            for j, b in enumerate(pts)
        }
        model = ShadowedChannel(MeasuredChannel(table), sigma_db=2.0, seed=1)
        assert_matches_scalar(model, pts)

    def test_rectangular_tx_rx(self):
        model = MultiWallModel(random_plan(17))
        assert_matches_scalar(
            model, random_points(18, 5), random_points(19, 9)
        )

    def test_measured_channel_uses_scalar_fallback(self):
        a, b = Point(0, 0), Point(3, 4)
        model = MeasuredChannel({(a, b): 55.0})
        matrix = path_loss_matrix(model, [a], [b])
        assert matrix.shape == (1, 1) and matrix[0, 0] == 55.0


class TestChannelBackends:
    def test_backend_names(self):
        assert CHANNEL_BACKENDS == ("auto", "vectorized", "reference")

    def test_reference_forces_scalar_loop(self):
        model = LogDistanceModel()
        pts = random_points(21, 8)
        ref = path_loss_matrix(model, pts, backend="reference")
        for i, a in enumerate(pts):
            for j, b in enumerate(pts):
                # The reference backend IS the scalar model: bitwise equal.
                assert ref[i, j] == model.path_loss_db(a, b)

    def test_vectorized_requires_hook(self):
        model = MeasuredChannel({})
        with pytest.raises(ValueError, match="path_loss_matrix hook"):
            path_loss_matrix(model, [Point(0, 0)], backend="vectorized")

    def test_vectorized_matches_reference(self):
        model = MultiWallModel(random_plan(23))
        pts = random_points(24, 10)
        vec = path_loss_matrix(model, pts, backend="vectorized")
        ref = path_loss_matrix(model, pts, backend="reference")
        assert vec == pytest.approx(ref, abs=1e-9)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown channel backend"):
            path_loss_matrix(LogDistanceModel(), [Point(0, 0)], backend="gpu")
