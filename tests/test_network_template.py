"""Tests for templates and link rules."""

import pytest

from repro.channel import LogDistanceModel
from repro.geometry import Point
from repro.network import (
    NetworkNode,
    Template,
    data_collection_link_rule,
    mesh_link_rule,
)


def make_nodes():
    return [
        NetworkNode(0, Point(0, 0), "sensor", fixed=True),
        NetworkNode(1, Point(10, 0), "relay", fixed=False),
        NetworkNode(2, Point(20, 0), "sink", fixed=True),
    ]


class TestLinkRules:
    def test_data_collection_semantics(self):
        sensor, relay, sink = make_nodes()
        assert data_collection_link_rule(sensor, relay)
        assert data_collection_link_rule(sensor, sink)
        assert data_collection_link_rule(relay, relay)
        assert data_collection_link_rule(relay, sink)
        # Sinks never transmit; sensors never receive.
        assert not data_collection_link_rule(sink, relay)
        assert not data_collection_link_rule(relay, sensor)
        assert not data_collection_link_rule(sensor, sensor)

    def test_mesh_rule(self):
        sensor, relay, _ = make_nodes()
        assert mesh_link_rule(sensor, relay)
        assert mesh_link_rule(relay, sensor)
        assert not mesh_link_rule(sensor, sensor)


class TestTemplate:
    def test_ids_must_be_consecutive(self):
        nodes = make_nodes()
        nodes[1] = NetworkNode(7, Point(10, 0), "relay", False)
        with pytest.raises(ValueError, match="consecutive"):
            Template(nodes)

    def test_candidate_links_respect_cutoff(self):
        template = Template(make_nodes())
        channel = LogDistanceModel(exponent=3.0)
        # 20 m at n=3 is ~79 dB; cut at 75 dB keeps only 10-m links.
        template.add_candidate_links(channel, max_path_loss_db=75.0)
        assert template.graph.has_edge(0, 1)
        assert template.graph.has_edge(1, 2)
        assert not template.graph.has_edge(0, 2)

    def test_link_rule_respected(self):
        template = Template(make_nodes())
        template.add_candidate_links(LogDistanceModel(), 120.0)
        assert not template.graph.has_edge(2, 1)  # sink never transmits
        assert not template.graph.has_edge(1, 0)  # sensors never receive

    def test_path_loss_lookup(self):
        template = Template(make_nodes())
        channel = LogDistanceModel(exponent=3.0)
        template.add_candidate_links(channel, 120.0)
        expected = channel.path_loss_db(Point(0, 0), Point(10, 0))
        assert template.path_loss(0, 1) == pytest.approx(expected)
        with pytest.raises(KeyError):
            template.path_loss(2, 0)

    def test_set_link_manual(self):
        template = Template(make_nodes())
        template.set_link(0, 1, 60.0)
        assert template.path_loss(0, 1) == 60.0
        with pytest.raises(ValueError):
            template.set_link(0, 0, 10.0)
        with pytest.raises(KeyError):
            template.set_link(0, 9, 10.0)

    def test_role_accessors(self):
        template = Template(make_nodes())
        assert [n.id for n in template.sensors] == [0]
        assert [n.id for n in template.relays] == [1]
        assert [n.id for n in template.sinks] == [2]
        assert template.anchors == []
        assert template.node(1).role == "relay"

    def test_edges_iteration_matches_counts(self):
        template = Template(make_nodes())
        template.add_candidate_links(LogDistanceModel(), 120.0)
        assert len(list(template.edges())) == template.edge_count

    def test_negative_node_id_rejected(self):
        with pytest.raises(ValueError):
            NetworkNode(-1, Point(0, 0), "relay", False)

    def test_measured_channel_without_distance_law(self):
        """Measured channels have no distance law: every pair is probed
        and missing measurements surface as KeyError."""
        from repro.channel import MeasuredChannel

        nodes = make_nodes()
        table = {
            (nodes[0].location, nodes[1].location): 60.0,
            (nodes[1].location, nodes[2].location): 65.0,
            (nodes[0].location, nodes[2].location): 120.0,
        }
        template = Template(nodes)
        template.add_candidate_links(MeasuredChannel(table), 90.0)
        assert template.graph.has_edge(0, 1)
        assert template.graph.has_edge(1, 2)
        assert not template.graph.has_edge(0, 2)  # above the cutoff
        assert template.path_loss(0, 1) == 60.0

    def test_distance_prefilter_matches_bruteforce(self):
        """The distance shortcut must not drop any admissible link."""
        nodes = [
            NetworkNode(i, Point(x * 7.0, 0), "relay", False)
            for i, x in enumerate(range(8))
        ]
        channel = LogDistanceModel(exponent=2.5)
        fast = Template(nodes)
        fast.add_candidate_links(channel, 70.0, link_rule=mesh_link_rule)
        expected = {
            (a.id, b.id)
            for a in nodes
            for b in nodes
            if a.id != b.id
            and channel.path_loss_db(a.location, b.location) <= 70.0
        }
        assert {(u, v) for u, v, _ in fast.edges()} == expected


class TestBackendEquality:
    """Vectorized and reference link generation must build the same template."""

    @staticmethod
    def _clone_and_link(nodes, channel, cutoff, rule, backend):
        template = Template(nodes)
        added = template.add_candidate_links(
            channel, cutoff, link_rule=rule, backend=backend
        )
        return template, added

    @staticmethod
    def _assert_same(ref, vec):
        ref_t, ref_added = ref
        vec_t, vec_added = vec
        assert vec_added == ref_added
        ref_edges = list(ref_t.edges())
        vec_edges = list(vec_t.edges())
        # Same edges, in the same insertion order.
        assert [(u, v) for u, v, _ in vec_edges] == [
            (u, v) for u, v, _ in ref_edges
        ]
        for (_, _, wv), (_, _, wr) in zip(vec_edges, ref_edges):
            assert wv == pytest.approx(wr, abs=1e-9)

    def _grid_nodes(self, nx=5, ny=4, spacing=9.0):
        import itertools

        nodes = []
        for i, (gx, gy) in enumerate(
            itertools.product(range(nx), range(ny))
        ):
            role = "sink" if i == 0 else ("sensor" if i % 3 == 0 else "relay")
            nodes.append(
                NetworkNode(i, Point(gx * spacing, gy * spacing), role, i == 0)
            )
        return nodes

    def test_log_distance_mesh(self):
        nodes = self._grid_nodes()
        channel = LogDistanceModel(exponent=3.0)
        self._assert_same(
            self._clone_and_link(nodes, channel, 85.0, mesh_link_rule, "reference"),
            self._clone_and_link(nodes, channel, 85.0, mesh_link_rule, "vectorized"),
        )

    def test_multiwall_office_data_collection(self):
        from repro.channel import MultiWallModel
        from repro.geometry import office_floorplan

        nodes = self._grid_nodes(6, 4, 11.0)
        channel = MultiWallModel(office_floorplan())
        self._assert_same(
            self._clone_and_link(nodes, channel, 92.0, None, "reference"),
            self._clone_and_link(nodes, channel, 92.0, None, "vectorized"),
        )

    def test_auto_uses_the_hook_and_matches(self):
        nodes = self._grid_nodes(4, 3)
        channel = LogDistanceModel(exponent=2.5)
        self._assert_same(
            self._clone_and_link(nodes, channel, 80.0, mesh_link_rule, "reference"),
            self._clone_and_link(nodes, channel, 80.0, mesh_link_rule, "auto"),
        )

    def test_unknown_backend_rejected(self):
        template = Template(make_nodes())
        with pytest.raises(ValueError, match="unknown channel backend"):
            template.add_candidate_links(
                LogDistanceModel(), 90.0, backend="gpu"
            )

    def test_vectorized_requires_hook(self):
        from repro.channel import MeasuredChannel

        template = Template(make_nodes())
        with pytest.raises(ValueError, match="path_loss_matrix hook"):
            template.add_candidate_links(
                MeasuredChannel({}), 90.0, backend="vectorized"
            )
