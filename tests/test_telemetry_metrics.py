"""Tests for the process-wide metrics registry."""

import threading

import pytest

from repro.telemetry.metrics import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    counter,
    gauge,
    get_registry,
    histogram,
)


@pytest.fixture()
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_inc_and_value(self, registry):
        c = registry.counter("hits", region="yen")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_rejects_negative(self, registry):
        with pytest.raises(ValueError, match="gauge"):
            registry.counter("hits").inc(-1)

    def test_identity_is_name_plus_labels(self, registry):
        a = registry.counter("lookups", region="yen", result="hit")
        b = registry.counter("lookups", result="hit", region="yen")
        c = registry.counter("lookups", region="yen", result="miss")
        assert a is b  # label order does not matter
        assert a is not c

    def test_kind_mismatch_raises(self, registry):
        registry.counter("seconds")
        with pytest.raises(TypeError, match="already registered"):
            registry.gauge("seconds")


class TestGauge:
    def test_set_inc_dec(self, registry):
        g = registry.gauge("pool.size")
        g.set(10)
        g.inc(5)
        g.dec(2)
        assert g.value == 13.0


class TestHistogram:
    def test_observations_land_in_le_buckets(self, registry):
        h = registry.histogram("lat", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.1, 0.5, 5.0, 50.0):
            h.observe(v)
        snap = h.snapshot()
        # le is inclusive: 0.1 counts into the 0.1 bucket.
        assert snap["buckets"]["0.1"] == 2
        assert snap["buckets"]["1.0"] == 3
        assert snap["buckets"]["10.0"] == 4
        assert snap["buckets"]["+Inf"] == 5
        assert snap["count"] == 5
        assert snap["sum"] == pytest.approx(55.65)

    def test_default_buckets(self, registry):
        h = registry.histogram("phase.seconds", phase="solve")
        assert h.buckets == tuple(sorted(DEFAULT_BUCKETS))

    def test_buckets_fixed_after_creation(self, registry):
        a = registry.histogram("d", buckets=(1.0, 2.0))
        b = registry.histogram("d", buckets=(5.0,))
        assert b is a
        assert b.buckets == (1.0, 2.0)

    def test_empty_buckets_rejected(self, registry):
        with pytest.raises(ValueError):
            registry.histogram("bad", buckets=())


class TestRegistry:
    def test_snapshot_groups_series_by_name(self, registry):
        registry.counter("cache.lookups", result="hit").inc(3)
        registry.counter("cache.lookups", result="miss").inc()
        registry.gauge("rung").set(4)
        snap = registry.snapshot()
        assert snap["cache.lookups"]["kind"] == "counter"
        assert len(snap["cache.lookups"]["series"]) == 2
        assert snap["rung"]["series"][0]["value"] == 4.0

    def test_instruments_sorted(self, registry):
        registry.counter("b")
        registry.counter("a", x="2")
        registry.counter("a", x="1")
        names = [(i.name, i.labels) for i in registry.instruments()]
        assert names == [("a", {"x": "1"}), ("a", {"x": "2"}), ("b", {})]

    def test_reset_drops_everything(self, registry):
        registry.counter("gone").inc()
        registry.reset()
        assert registry.instruments() == []
        assert registry.counter("gone").value == 0.0

    def test_concurrent_increments_lose_nothing(self, registry):
        c = registry.counter("contended")
        h = registry.histogram("contended.hist", buckets=(1.0,))

        def hammer():
            for _ in range(1000):
                c.inc()
                h.observe(0.5)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 8000.0
        assert h.count == 8000

    def test_concurrent_creation_yields_one_instrument(self, registry):
        seen = []
        barrier = threading.Barrier(8)

        def create():
            barrier.wait()
            seen.append(registry.counter("raced", k="v"))

        threads = [threading.Thread(target=create) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len({id(c) for c in seen}) == 1


class TestModuleShorthands:
    def test_shorthands_hit_default_registry(self):
        counter("mod.counter").inc()
        gauge("mod.gauge").set(2)
        histogram("mod.hist").observe(0.01)
        snap = get_registry().snapshot()
        assert {"mod.counter", "mod.gauge", "mod.hist"} <= set(snap)
