"""Tests for sizing (mapping) constraints."""

import pytest

from repro.constraints import MappingError, build_mapping
from repro.geometry import Point
from repro.library import Library, default_catalog, device
from repro.milp import HighsSolver, Model, lin_sum
from repro.network import NetworkNode, Template


@pytest.fixture()
def template():
    nodes = [
        NetworkNode(0, Point(0, 0), "sensor", fixed=True),
        NetworkNode(1, Point(10, 0), "relay", fixed=False),
        NetworkNode(2, Point(20, 0), "sink", fixed=True),
    ]
    return Template(nodes)


class TestBuildMapping:
    def test_one_device_per_used_node(self, template):
        model = Model()
        mapping = build_mapping(model, template, default_catalog())
        model.minimize(mapping.cost_expr())
        sol = HighsSolver().solve(model)
        # Fixed nodes must carry exactly one device.
        for node_id in (0, 2):
            chosen = [
                name for name, var in mapping.assign[node_id].items()
                if sol.value_bool(var)
            ]
            assert len(chosen) == 1
        # The optional relay is unused at zero cost.
        assert not sol.value_bool(mapping.node_used[1])
        assert not any(
            sol.value_bool(v) for v in mapping.assign[1].values()
        )

    def test_role_compatibility_enforced(self, template):
        model = Model()
        mapping = build_mapping(model, template, default_catalog())
        # Sensor node only offers sensor devices.
        names = set(mapping.assign[0])
        assert all("sensor" in n for n in names)

    def test_fixed_node_without_device_raises(self, template):
        lib = Library()
        lib.add(device("r", ("relay",), cost=1.0))
        with pytest.raises(MappingError):
            build_mapping(Model(), template, lib)

    def test_optional_node_without_device_is_unusable(self):
        nodes = [NetworkNode(0, Point(0, 0), "relay", fixed=False)]
        template = Template(nodes)
        lib = Library()
        lib.add(device("s", ("sensor",), cost=0.0))
        model = Model()
        mapping = build_mapping(model, template, lib)
        model.maximize(mapping.node_used[0] + 0.0)
        sol = HighsSolver().solve(model)
        assert not sol.value_bool(mapping.node_used[0])

    def test_cost_expr_counts_chosen_devices(self, template):
        model = Model()
        lib = default_catalog()
        mapping = build_mapping(model, template, lib)
        model.minimize(mapping.cost_expr())
        sol = HighsSolver().solve(model)
        # Min cost: free sensor + sink-std; relay unused.
        assert sol.value(mapping.cost_expr()) == pytest.approx(
            lib.by_name("sink-std").cost
        )

    def test_decode_sizing(self, template):
        model = Model()
        mapping = build_mapping(model, template, default_catalog())
        model.minimize(mapping.cost_expr())
        sol = HighsSolver().solve(model)
        sizing = mapping.decode_sizing(sol)
        assert set(sizing) == {0, 2}
        assert sizing[0] == "sensor-std"
        assert sizing[2] == "sink-std"


class TestAttributeExpressions:
    def test_tx_strength_expr(self, template):
        model = Model()
        lib = default_catalog()
        mapping = build_mapping(model, template, lib)
        # Force the relay to use the PA+antenna part.
        m_var = mapping.assign[1]["relay-pa-ant"]
        model.add(m_var >= 1)
        model.add(mapping.node_used[1] >= 1)
        model.minimize(lin_sum([]))
        sol = HighsSolver().solve(model)
        expected = lib.by_name("relay-pa-ant").effective_tx_dbm
        assert sol.value(mapping.tx_strength_expr(1)) == pytest.approx(expected)
        assert sol.value(mapping.rx_gain_expr(1)) == pytest.approx(5.0)

    def test_zero_when_unused(self, template):
        model = Model()
        mapping = build_mapping(model, template, default_catalog())
        model.minimize(mapping.cost_expr())
        sol = HighsSolver().solve(model)
        assert sol.value(mapping.tx_strength_expr(1)) == 0.0

    def test_bounds_cover_all_devices(self, template):
        model = Model()
        lib = default_catalog()
        mapping = build_mapping(model, template, lib)
        lo, hi = mapping.tx_strength_bounds(1)
        for dev in lib.for_role("relay"):
            assert lo <= dev.effective_tx_dbm <= hi
        assert lo <= 0.0  # the unused case
