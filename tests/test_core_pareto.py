"""Tests for the epsilon-constraint Pareto sweep."""

import pytest

from repro.core import ArchitectureExplorer, explore_pareto
from repro.core.pareto import ParetoFront, ParetoPoint
from repro.core.results import SynthesisResult
from repro.validation import validate


@pytest.fixture(scope="module")
def explorer(grid_instance, library):
    from repro.network import (
        LifetimeRequirement,
        LinkQualityRequirement,
        RequirementSet,
    )

    reqs = RequirementSet()
    for s in grid_instance.sensor_ids:
        reqs.require_route(s, grid_instance.sink_id, replicas=2,
                           disjoint=True)
    reqs.link_quality = LinkQualityRequirement(min_snr_db=20.0)
    reqs.lifetime = LifetimeRequirement(years=5.0)
    return ArchitectureExplorer(grid_instance.template, library, reqs)


@pytest.fixture(scope="module")
def front(explorer):
    return explore_pareto(explorer, "cost", "energy", points=5)


class TestExplorePareto:
    def test_front_nonempty_and_sorted(self, front):
        assert len(front.points) >= 2
        primaries = [p.primary for p in front.points]
        assert primaries == sorted(primaries)

    def test_tradeoff_direction(self, front):
        """Along the front, paying more dollars buys lower energy."""
        cheapest = front.points[0]
        priciest = front.points[-1]
        assert cheapest.primary <= priciest.primary
        assert cheapest.secondary >= priciest.secondary - 1e-6

    def test_budgets_respected(self, front):
        for point in front.points:
            assert point.secondary <= point.secondary_budget * (1 + 1e-6)

    def test_every_point_is_a_valid_design(self, front, explorer):
        for point in front.points:
            assert isinstance(point.result, SynthesisResult)
            report = validate(
                point.result.architecture, explorer.requirements
            )
            assert report.ok, report.violations

    def test_extremes_bracket_the_singles(self, front, explorer):
        cost_only = explorer.solve("cost")
        energy_only = explorer.solve("energy")
        assert front.points[0].primary == pytest.approx(
            cost_only.objective_terms["cost"], rel=1e-6
        )
        # The tight-budget end reaches (near) the energy optimum.
        assert front.points[-1].secondary <= (
            energy_only.objective_terms["energy"] * 1.02 + 1e-6
        )

    def test_knee_is_on_the_front(self, front):
        knee = front.knee()
        assert knee in front.points

    def test_parameter_validation(self, explorer):
        with pytest.raises(ValueError):
            explore_pareto(explorer, points=1)
        with pytest.raises(ValueError):
            explore_pareto(explorer, "cost", "cost")

    def test_parallel_sweep_matches_sequential(self, front, explorer):
        parallel = explore_pareto(
            explorer, "cost", "energy", points=5, parallel=2
        )
        assert [
            (p.primary, pytest.approx(p.secondary)) for p in parallel.points
        ] == [(p.primary, p.secondary) for p in front.points]

    def test_points_carry_run_stats(self, front):
        for point in front.points:
            assert point.result.run_stats is not None
            assert point.result.encode_seconds >= 0


class TestKnee:
    def test_small_fronts(self):
        empty = ParetoFront("a", "b", [])
        assert empty.knee() is None
        single = ParetoFront("a", "b", [
            ParetoPoint(1.0, 1.0, 1.0, None)
        ])
        assert single.knee() is single.points[0]

    def test_picks_the_corner(self):
        # An L-shaped front: the corner point is the knee.
        points = [
            ParetoPoint(0.0, 10.0, 0.0, None),
            ParetoPoint(1.0, 1.0, 0.0, None),
            ParetoPoint(10.0, 0.0, 0.0, None),
        ]
        front = ParetoFront("a", "b", points)
        knee = front.knee()
        assert knee.primary == 1.0 and knee.secondary == 1.0
