"""Tests for the epsilon-constraint Pareto sweep."""

import pytest

from repro.core import DataCollectionExplorer, SolveOptions, explore_pareto
from repro.core.pareto import ParetoFront, ParetoPoint
from repro.core.results import SynthesisResult
from repro.validation import validate


@pytest.fixture(scope="module")
def explorer(grid_instance, library):
    from repro.network import (
        LifetimeRequirement,
        LinkQualityRequirement,
        RequirementSet,
    )

    reqs = RequirementSet()
    for s in grid_instance.sensor_ids:
        reqs.require_route(s, grid_instance.sink_id, replicas=2,
                           disjoint=True)
    reqs.link_quality = LinkQualityRequirement(min_snr_db=20.0)
    reqs.lifetime = LifetimeRequirement(years=5.0)
    return DataCollectionExplorer(grid_instance.template, library, reqs)


@pytest.fixture(scope="module")
def front(explorer):
    return explore_pareto(explorer, "cost", "energy", points=5)


class TestExplorePareto:
    def test_front_nonempty_and_sorted(self, front):
        assert len(front.points) >= 2
        primaries = [p.primary for p in front.points]
        assert primaries == sorted(primaries)

    def test_tradeoff_direction(self, front):
        """Along the front, paying more dollars buys lower energy."""
        cheapest = front.points[0]
        priciest = front.points[-1]
        assert cheapest.primary <= priciest.primary
        assert cheapest.secondary >= priciest.secondary - 1e-6

    def test_budgets_respected(self, front):
        for point in front.points:
            assert point.secondary <= point.secondary_budget * (1 + 1e-6)

    def test_every_point_is_a_valid_design(self, front, explorer):
        for point in front.points:
            assert isinstance(point.result, SynthesisResult)
            report = validate(
                point.result.architecture, explorer.requirements
            )
            assert report.ok, report.violations

    def test_extremes_bracket_the_singles(self, front, explorer):
        cost_only = explorer.solve("cost")
        energy_only = explorer.solve("energy")
        assert front.points[0].primary == pytest.approx(
            cost_only.objective_terms["cost"], rel=1e-6
        )
        # The tight-budget end reaches (near) the energy optimum.
        assert front.points[-1].secondary <= (
            energy_only.objective_terms["energy"] * 1.02 + 1e-6
        )

    def test_knee_is_on_the_front(self, front):
        knee = front.knee()
        assert knee in front.points

    def test_parameter_validation(self, explorer):
        with pytest.raises(ValueError):
            explore_pareto(explorer, points=1)
        with pytest.raises(ValueError):
            explore_pareto(explorer, "cost", "cost")

    def test_parallel_sweep_matches_sequential(self, front, explorer):
        parallel = explore_pareto(
            explorer, "cost", "energy", points=5, options=SolveOptions(parallel=2)
        )
        assert [
            (p.primary, pytest.approx(p.secondary)) for p in parallel.points
        ] == [(p.primary, p.secondary) for p in front.points]

    def test_points_carry_run_stats(self, front):
        for point in front.points:
            assert point.result.run_stats is not None
            assert point.result.encode_seconds >= 0


class TestKnee:
    def test_small_fronts(self):
        empty = ParetoFront("a", "b", [])
        assert empty.knee() is None
        single = ParetoFront("a", "b", [
            ParetoPoint(1.0, 1.0, 1.0, None)
        ])
        assert single.knee() is single.points[0]

    def test_picks_the_corner(self):
        # An L-shaped front: the corner point is the knee.
        points = [
            ParetoPoint(0.0, 10.0, 0.0, None),
            ParetoPoint(1.0, 1.0, 0.0, None),
            ParetoPoint(10.0, 0.0, 0.0, None),
        ]
        front = ParetoFront("a", "b", points)
        knee = front.knee()
        assert knee.primary == 1.0 and knee.secondary == 1.0


class ScriptedResult:
    def __init__(self, energy):
        self.feasible = True
        self.objective_terms = {"cost": 0.0, "energy": energy}


class ScriptedExplorer:
    """Quacks like an explorer as far as explore_pareto's plumbing needs
    (extreme solves + a solver slot); sweep points are monkeypatched."""

    def __init__(self, fingerprint=None):
        self.solver = None
        self._fingerprint = fingerprint
        if fingerprint is not None:
            self.fingerprint = lambda: fingerprint

    def solve(self, objective):
        return ScriptedResult({"energy": 2.0, "cost": 8.0}[objective])


def scripted_point(budget):
    from repro.core.pareto import ParetoPoint

    return ParetoPoint(
        primary=10.0 - budget, secondary=budget, secondary_budget=budget,
        result=ScriptedResult(budget),
    )


class TestCheckpointStreaming:
    def test_sequential_kill_keeps_completed_points(self, tmp_path, monkeypatch):
        """A sweep killed mid-run persists every finished point, not just
        the extremes; resume re-solves only the missing ones."""
        import json

        import repro.core.pareto as pareto_mod

        path = tmp_path / "front.jsonl"
        calls = []

        def dying_solve(explorer, primary, secondary, budget):
            if len(calls) == 2:
                raise KeyboardInterrupt  # simulated kill on point 3
            calls.append(budget)
            return scripted_point(budget)

        monkeypatch.setattr(pareto_mod, "_solve_budget", dying_solve)
        with pytest.raises(KeyboardInterrupt):
            explore_pareto(
                ScriptedExplorer(), "cost", "energy", points=4,
                options=SolveOptions(checkpoint=path),
            )
        records = [json.loads(l) for l in path.read_text().splitlines()[1:]]
        stages = [r["stage"] for r in records]
        assert stages == ["extreme", "extreme", "point", "point"]
        assert [r["index"] for r in records if r["stage"] == "point"] == [0, 1]

        resumed_calls = []

        def resumed_solve(explorer, primary, secondary, budget):
            resumed_calls.append(budget)
            return scripted_point(budget)

        monkeypatch.setattr(pareto_mod, "_solve_budget", resumed_solve)
        front = explore_pareto(
            ScriptedExplorer(), "cost", "energy", points=4,
            options=SolveOptions(checkpoint=path, resume=True),
        )
        assert len(resumed_calls) == 2  # only the two missing points
        assert len(front.points) == 4

    def test_parallel_kill_keeps_completed_points(self, tmp_path, monkeypatch):
        import json

        import repro.core.pareto as pareto_mod
        from repro.runtime import BatchRunner

        path = tmp_path / "front.jsonl"
        calls = []

        def dying_solve(explorer, primary, secondary, budget):
            if len(calls) == 2:
                raise RuntimeError("worker died")
            calls.append(budget)
            return scripted_point(budget)

        monkeypatch.setattr(pareto_mod, "_solve_budget", dying_solve)
        with pytest.raises(RuntimeError):
            explore_pareto(
                ScriptedExplorer(), "cost", "energy", points=4,
                options=SolveOptions(checkpoint=path),
                runner=BatchRunner(workers=1, retries=0),
            )
        points = [
            json.loads(l) for l in path.read_text().splitlines()[1:]
            if json.loads(l).get("stage") == "point"
        ]
        assert [p["index"] for p in points] == [0, 1]


class TestDeadlineGraceful:
    def test_sequential_deadline_omits_tail_without_checkpointing(
        self, tmp_path, monkeypatch
    ):
        """Points the deadline cuts off are skipped — not raised, and not
        recorded as infeasible (a resume must re-solve them)."""
        import json

        import repro.core.pareto as pareto_mod
        from repro.resilience import DeadlineBudget

        clock = [0.0]
        budget = DeadlineBudget(1.0, clock=lambda: clock[0])
        path = tmp_path / "front.jsonl"

        def timed_solve(explorer, primary, secondary, b):
            clock[0] += 0.6  # two points fit in the budget
            return scripted_point(b)

        monkeypatch.setattr(pareto_mod, "_solve_budget", timed_solve)
        front = explore_pareto(
            ScriptedExplorer(), "cost", "energy", points=5,
            budget=budget, options=SolveOptions(checkpoint=path),
        )
        assert len(front.points) == 2
        points = [
            json.loads(l) for l in path.read_text().splitlines()[1:]
            if json.loads(l).get("stage") == "point"
        ]
        assert len(points) == 2
        assert all(p["feasible"] for p in points)

    def test_parallel_expired_budget_returns_empty_front(self, monkeypatch):
        """All trials failing fast on a spent budget must degrade to an
        empty front, not raise TimeoutError through unwrap()."""
        import repro.core.pareto as pareto_mod
        from repro.resilience import DeadlineBudget
        from repro.runtime import BatchRunner

        clock = [0.0]
        budget = DeadlineBudget(1.0, clock=lambda: clock[0])
        clock[0] = 5.0  # spent before the sweep starts

        monkeypatch.setattr(
            pareto_mod, "_solve_budget",
            lambda *a: pytest.fail("no point should be solved"),
        )
        front = explore_pareto(
            ScriptedExplorer(), "cost", "energy", points=4,
            budget=budget, runner=BatchRunner(workers=1, budget=budget),
        )
        assert front.points == []


class TestProblemPinning:
    def test_resume_with_other_problem_refused(self, tmp_path, monkeypatch):
        from repro.resilience import CheckpointError

        import repro.core.pareto as pareto_mod

        monkeypatch.setattr(
            pareto_mod, "_solve_budget",
            lambda e, p, s, b: scripted_point(b),
        )
        path = tmp_path / "front.jsonl"
        explore_pareto(
            ScriptedExplorer(fingerprint="aaaa"), "cost", "energy",
            points=3, options=SolveOptions(checkpoint=path),
        )
        with pytest.raises(CheckpointError, match="different problem"):
            explore_pareto(
                ScriptedExplorer(fingerprint="bbbb"), "cost", "energy",
                points=3,
                options=SolveOptions(checkpoint=path, resume=True),
            )
