"""Tests for ranging, trilateration and localization evaluation."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.channel import LogDistanceModel
from repro.geometry import Point
from repro.localization import (
    RssRanger,
    TrilaterationError,
    geometric_dilution,
    trilaterate,
)

coords = st.floats(1.0, 50.0, allow_nan=False)


class TestRssRanger:
    def test_inverts_log_distance_exactly(self):
        model = LogDistanceModel(exponent=2.5)
        ranger = RssRanger(exponent=2.5)
        for d in (1.0, 5.0, 20.0):
            pl = model.path_loss_db(Point(0, 0), Point(d, 0))
            assert ranger.path_loss_to_distance(pl) == pytest.approx(d)

    def test_estimate_without_noise(self):
        ranger = RssRanger(exponent=2.0)
        tx = 4.5
        pl = 60.0
        d = ranger.estimate(tx, tx - pl)
        assert d == pytest.approx(ranger.path_loss_to_distance(pl))

    def test_shadowing_perturbs(self):
        ranger = RssRanger(exponent=2.0, shadowing_sigma_db=4.0)
        rng = np.random.default_rng(0)
        noisy = {ranger.estimate(0.0, -60.0, rng) for _ in range(10)}
        assert len(noisy) > 1

    def test_error_grows_with_distance(self):
        ranger = RssRanger(exponent=2.0, shadowing_sigma_db=2.0)
        assert ranger.error_stddev_m(20.0) > ranger.error_stddev_m(5.0)

    def test_calibration_recovers_law(self):
        true = LogDistanceModel(exponent=3.2)
        samples = [
            (d, true.path_loss_db(Point(0, 0), Point(d, 0)))
            for d in np.linspace(1, 40, 25)
        ]
        fitted = RssRanger.calibrate(samples)
        assert fitted.exponent == pytest.approx(3.2, rel=1e-3)
        assert fitted.reference_db == pytest.approx(true.reference_db,
                                                    abs=0.1)

    def test_calibration_needs_samples(self):
        with pytest.raises(ValueError):
            RssRanger.calibrate([(1.0, 40.0)])


class TestTrilateration:
    def test_exact_recovery(self):
        anchors = [Point(0, 0), Point(10, 0), Point(0, 10), Point(10, 10)]
        target = Point(3.0, 7.0)
        distances = [a.distance_to(target) for a in anchors]
        estimate = trilaterate(anchors, distances)
        assert estimate.distance_to(target) < 1e-9

    def test_three_anchor_minimum(self):
        anchors = [Point(0, 0), Point(10, 0)]
        with pytest.raises(TrilaterationError):
            trilaterate(anchors, [5.0, 5.0])

    def test_collinear_anchors_rejected(self):
        anchors = [Point(0, 0), Point(5, 0), Point(10, 0)]
        target = Point(3, 4)
        distances = [a.distance_to(target) for a in anchors]
        with pytest.raises(TrilaterationError, match="collinear"):
            trilaterate(anchors, distances)

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            trilaterate([Point(0, 0)], [1.0, 2.0])

    def test_negative_distances_rejected(self):
        anchors = [Point(0, 0), Point(10, 0), Point(0, 10)]
        with pytest.raises(ValueError):
            trilaterate(anchors, [1.0, -2.0, 3.0])

    @settings(max_examples=40, deadline=None)
    @given(coords, coords)
    def test_recovery_property(self, x, y):
        anchors = [Point(0, 0), Point(60, 0), Point(0, 60), Point(60, 60)]
        target = Point(x, y)
        distances = [a.distance_to(target) for a in anchors]
        estimate = trilaterate(anchors, distances)
        assert estimate.distance_to(target) < 1e-6

    def test_noisy_distances_give_bounded_error(self):
        rng = np.random.default_rng(1)
        anchors = [Point(0, 0), Point(40, 0), Point(0, 40), Point(40, 40)]
        target = Point(17.0, 23.0)
        errors = []
        for _ in range(50):
            distances = [
                a.distance_to(target) * float(rng.normal(1.0, 0.05))
                for a in anchors
            ]
            errors.append(trilaterate(anchors, distances).distance_to(target))
        assert np.mean(errors) < 5.0


class TestGeometricDilution:
    def test_surrounding_beats_onesided(self):
        target = Point(20, 20)
        surrounding = [Point(0, 20), Point(40, 20), Point(20, 0),
                       Point(20, 40)]
        onesided = [Point(0, 18), Point(0, 20), Point(0, 22), Point(2, 20)]
        assert geometric_dilution(surrounding, target) < geometric_dilution(
            onesided, target
        )

    def test_degenerate_geometry_infinite(self):
        target = Point(10, 10)
        collinear = [Point(0, 0), Point(5, 5), Point(20, 20)]
        assert math.isinf(geometric_dilution(collinear, target))

    def test_single_anchor_infinite(self):
        assert math.isinf(geometric_dilution([Point(0, 0)], Point(1, 1)))
