"""Tests for RSS/SNR/BER/PER/ETX metrics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.channel import (
    ETX_CAP,
    bit_error_rate,
    expected_transmissions,
    packet_error_rate,
    rss_dbm,
    snr_db,
    snr_for_etx,
)

snrs = st.floats(-10.0, 40.0, allow_nan=False)


class TestRssSnr:
    def test_rss_budget(self):
        assert rss_dbm(4.5, 5.0, 5.0, 80.0) == pytest.approx(-65.5)

    def test_snr(self):
        assert snr_db(-70.0, -100.0) == pytest.approx(30.0)


class TestBer:
    def test_qpsk_known_point(self):
        # Q(sqrt(2)) at 0 dB Eb/N0 ~ 0.0786.
        assert bit_error_rate(0.0, "qpsk") == pytest.approx(0.0786, abs=1e-3)

    def test_bpsk_equals_qpsk_per_bit(self):
        assert bit_error_rate(5.0, "bpsk") == bit_error_rate(5.0, "qpsk")

    def test_ook_worse_than_qpsk(self):
        assert bit_error_rate(8.0, "ook") > bit_error_rate(8.0, "qpsk")

    def test_unknown_modulation(self):
        with pytest.raises(ValueError):
            bit_error_rate(5.0, "psk31")

    @given(snrs)
    def test_ber_in_unit_interval(self, snr):
        for mod in ("qpsk", "bpsk", "ook"):
            assert 0.0 <= bit_error_rate(snr, mod) <= 0.5 + 1e-12

    @settings(max_examples=50)
    @given(snrs)
    def test_monotone_decreasing(self, snr):
        assert bit_error_rate(snr + 1.0) <= bit_error_rate(snr)


class TestPer:
    def test_longer_packets_fail_more(self):
        assert packet_error_rate(8.0, 100) > packet_error_rate(8.0, 10)

    def test_high_snr_reliable(self):
        assert packet_error_rate(25.0, 50) < 1e-9

    def test_low_snr_unreliable(self):
        assert packet_error_rate(-5.0, 50) > 0.99

    def test_invalid_packet_size(self):
        with pytest.raises(ValueError):
            packet_error_rate(10.0, 0)

    @given(snrs, st.floats(1.0, 200.0))
    def test_in_unit_interval(self, snr, size):
        assert 0.0 <= packet_error_rate(snr, size) <= 1.0


class TestEtx:
    def test_approaches_one_at_high_snr(self):
        assert expected_transmissions(30.0, 50) == pytest.approx(1.0, abs=1e-6)

    def test_caps_at_low_snr(self):
        assert expected_transmissions(-10.0, 50) == ETX_CAP

    def test_consistent_with_per(self):
        snr = 9.0
        per = packet_error_rate(snr, 50)
        assert expected_transmissions(snr, 50) == pytest.approx(
            1.0 / (1.0 - per)
        )

    @settings(max_examples=50)
    @given(snrs)
    def test_monotone_decreasing(self, snr):
        assert expected_transmissions(snr + 0.5, 50) <= (
            expected_transmissions(snr, 50) + 1e-12
        )

    @given(snrs)
    def test_at_least_one(self, snr):
        assert expected_transmissions(snr, 50) >= 1.0


class TestSnrForEtx:
    @pytest.mark.parametrize("target", [1.01, 1.5, 2.0, 4.0, 10.0])
    def test_inverse_roundtrip(self, target):
        snr = snr_for_etx(target, 50)
        assert expected_transmissions(snr, 50) == pytest.approx(
            target, rel=1e-3
        )

    def test_smaller_target_needs_more_snr(self):
        assert snr_for_etx(1.05, 50) > snr_for_etx(2.0, 50)

    def test_invalid_target(self):
        with pytest.raises(ValueError):
            snr_for_etx(1.0, 50)
        with pytest.raises(ValueError):
            snr_for_etx(ETX_CAP + 1, 50)
