"""Tests for the K* search procedure (Section 4.3)."""

from types import SimpleNamespace

import pytest

from repro.core import DataCollectionExplorer, SolveOptions, kstar_search
from repro.core.kstar_search import KStarTrial, scan_ladder
from repro.encoding import ApproximatePathEncoder
from repro.library import default_catalog
from repro.network import (
    LinkQualityRequirement,
    RequirementSet,
    small_grid_template,
)
from repro.runtime import EncodeCache


@pytest.fixture(scope="module")
def problem():
    instance = small_grid_template(nx=5, ny=3)
    reqs = RequirementSet()
    for s in instance.sensor_ids:
        reqs.require_route(s, instance.sink_id, replicas=2, disjoint=True)
    reqs.link_quality = LinkQualityRequirement(min_snr_db=20.0)
    return instance, reqs


def make_factory(problem):
    instance, reqs = problem

    def factory(k):
        return DataCollectionExplorer(
            instance.template, default_catalog(), reqs,
            encoder=ApproximatePathEncoder(k_star=k),
        )

    return factory


def stub_trial(k, objective, seconds=0.1):
    """A ladder rung with a stand-in result (inf objective = infeasible)."""
    feasible = objective != float("inf")
    result = SimpleNamespace(
        feasible=feasible,
        objective_value=objective if feasible else None,
        total_seconds=seconds,
    )
    return KStarTrial(k_star=k, result=result)


class TestKStarSearch:
    def test_objective_non_increasing_along_ladder(self, problem):
        result = kstar_search(make_factory(problem), ladder=(1, 3, 5, 10))
        objectives = [t.objective for t in result.trials]
        # Larger candidate pools can only help (weakly).
        for earlier, later in zip(objectives, objectives[1:]):
            assert later <= earlier + 1e-6

    def test_best_is_minimum(self, problem):
        result = kstar_search(make_factory(problem), ladder=(1, 3, 5))
        assert result.best.objective == min(
            t.objective for t in result.trials
        )

    def test_stops_on_no_improvement(self, problem):
        # The tiny grid saturates early: the search must not run the
        # whole ladder once the objective stops moving.
        result = kstar_search(
            make_factory(problem), ladder=(3, 5, 8, 10, 12, 15)
        )
        assert result.stop_reason == "no further improvement"
        assert len(result.trials) < 6

    def test_time_threshold_respected(self, problem):
        result = kstar_search(
            make_factory(problem), ladder=(1, 3, 5), time_threshold_s=0.0
        )
        assert result.stop_reason == "time threshold exceeded"
        assert len(result.trials) == 1

    def test_table_rows_shape(self, problem):
        result = kstar_search(make_factory(problem), ladder=(1, 3))
        rows = result.table_rows()
        assert len(rows) == len(result.trials)
        for k, objective, seconds in rows:
            assert k in (1, 3)
            assert objective > 0
            assert seconds >= 0

    def test_parallel_matches_sequential(self, problem):
        ladder = (1, 3, 5, 8)
        sequential = kstar_search(make_factory(problem), ladder=ladder)
        parallel = kstar_search(
            make_factory(problem), ladder=ladder,
            options=SolveOptions(parallel=2), cache=EncodeCache(),
        )
        assert parallel.stop_reason == sequential.stop_reason
        assert parallel.best.k_star == sequential.best.k_star
        assert [t.objective for t in parallel.trials] == [
            t.objective for t in sequential.trials
        ]

    def test_shared_cache_hits_after_first_rung(self, problem):
        cache = EncodeCache()
        kstar_search(make_factory(problem), ladder=(1, 3, 5), cache=cache)
        # Later rungs reuse the path-loss-weighted graph of the first.
        assert cache.counters.hit_count("pathloss") >= 2


class TestScanLadderStopRules:
    """Unit coverage of the Section 4.3 stop conditions on stub rungs."""

    def test_ladder_exhausted(self):
        trials = [stub_trial(1, 100.0), stub_trial(3, 50.0)]
        result = scan_ladder(iter(trials))
        assert result.stop_reason == "ladder exhausted"
        assert result.best.k_star == 3
        assert len(result.trials) == 2

    def test_time_threshold(self):
        trials = [stub_trial(1, 100.0, seconds=2.0), stub_trial(3, 50.0)]
        result = scan_ladder(iter(trials), time_threshold_s=1.0)
        assert result.stop_reason == "time threshold exceeded"
        assert len(result.trials) == 1

    def test_no_improvement_on_equal_objective(self):
        trials = [stub_trial(1, 100.0), stub_trial(3, 100.0),
                  stub_trial(5, 10.0)]
        result = scan_ladder(iter(trials))
        assert result.stop_reason == "no further improvement"
        assert len(result.trials) == 2
        assert result.best.k_star == 1

    def test_tiny_gain_counts_as_no_improvement(self):
        trials = [stub_trial(1, 100.0), stub_trial(3, 100.0 - 1e-6)]
        result = scan_ladder(iter(trials), min_relative_gain=1e-3)
        assert result.stop_reason == "no further improvement"

    def test_infeasible_first_rung_does_not_stop_search(self):
        # Regression: inf - x > gain * inf is numerically False, which
        # used to read as "no improvement" on the first feasible rung.
        trials = [
            stub_trial(1, float("inf")),
            stub_trial(3, 80.0),
            stub_trial(5, 40.0),
        ]
        result = scan_ladder(iter(trials))
        assert result.stop_reason == "ladder exhausted"
        assert result.best.k_star == 5
        assert len(result.trials) == 3

    def test_all_infeasible_keeps_climbing(self):
        trials = [stub_trial(k, float("inf")) for k in (1, 3, 5)]
        result = scan_ladder(iter(trials))
        assert result.stop_reason == "ladder exhausted"
        assert len(result.trials) == 3
        assert result.best.objective == float("inf")

    def test_lazy_consumption_stops_solving(self):
        solved = []

        def rungs():
            for k, obj in ((1, 100.0), (3, 100.0), (5, 1.0)):
                solved.append(k)
                yield stub_trial(k, obj)

        scan_ladder(rungs())
        assert solved == [1, 3]


class TestIncumbentChaining:
    """Sequential rungs hand their architecture to the next rung."""

    def test_sequential_rungs_chain_the_previous_architecture(self, problem):
        seen = []
        factory = make_factory(problem)

        def recording_factory(k):
            explorer = factory(k)
            seen.append(explorer)
            return explorer

        result = kstar_search(
            recording_factory, ladder=(1, 3, 5),
            options=SolveOptions(warm_start=True),
        )
        assert result.best is not None
        # The first rung starts cold; every later rung was seeded with
        # the previous rung's feasible architecture.
        assert seen[0].warm_start_architecture is None
        for explorer, previous in zip(seen[1:], result.trials):
            if previous.result.feasible:
                assert explorer.warm_start_architecture is (
                    previous.result.architecture
                )

    def test_chained_objectives_match_the_cold_ladder(self, problem):
        ladder = (1, 3, 5)
        cold = kstar_search(make_factory(problem), ladder=ladder)
        warm = kstar_search(
            make_factory(problem), ladder=ladder,
            options=SolveOptions(warm_start=True),
        )
        assert [t.objective for t in warm.trials] == pytest.approx(
            [t.objective for t in cold.trials]
        )

    def test_no_chaining_without_the_accel_flags(self, problem):
        seen = []
        factory = make_factory(problem)

        def recording_factory(k):
            explorer = factory(k)
            seen.append(explorer)
            return explorer

        kstar_search(recording_factory, ladder=(1, 3))
        assert all(e.warm_start_architecture is None for e in seen)
