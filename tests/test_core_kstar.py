"""Tests for the K* search procedure (Section 4.3)."""

import pytest

from repro.core import ArchitectureExplorer, kstar_search
from repro.encoding import ApproximatePathEncoder
from repro.library import default_catalog
from repro.network import (
    LinkQualityRequirement,
    RequirementSet,
    small_grid_template,
)


@pytest.fixture(scope="module")
def problem():
    instance = small_grid_template(nx=5, ny=3)
    reqs = RequirementSet()
    for s in instance.sensor_ids:
        reqs.require_route(s, instance.sink_id, replicas=2, disjoint=True)
    reqs.link_quality = LinkQualityRequirement(min_snr_db=20.0)
    return instance, reqs


def make_factory(problem):
    instance, reqs = problem

    def factory(k):
        return ArchitectureExplorer(
            instance.template, default_catalog(), reqs,
            encoder=ApproximatePathEncoder(k_star=k),
        )

    return factory


class TestKStarSearch:
    def test_objective_non_increasing_along_ladder(self, problem):
        result = kstar_search(make_factory(problem), ladder=(1, 3, 5, 10))
        objectives = [t.objective for t in result.trials]
        # Larger candidate pools can only help (weakly).
        for earlier, later in zip(objectives, objectives[1:]):
            assert later <= earlier + 1e-6

    def test_best_is_minimum(self, problem):
        result = kstar_search(make_factory(problem), ladder=(1, 3, 5))
        assert result.best.objective == min(
            t.objective for t in result.trials
        )

    def test_stops_on_no_improvement(self, problem):
        # The tiny grid saturates early: the search must not run the
        # whole ladder once the objective stops moving.
        result = kstar_search(
            make_factory(problem), ladder=(3, 5, 8, 10, 12, 15)
        )
        assert result.stop_reason == "no further improvement"
        assert len(result.trials) < 6

    def test_time_threshold_respected(self, problem):
        result = kstar_search(
            make_factory(problem), ladder=(1, 3, 5), time_threshold_s=0.0
        )
        assert result.stop_reason == "time threshold exceeded"
        assert len(result.trials) == 1

    def test_table_rows_shape(self, problem):
        result = kstar_search(make_factory(problem), ladder=(1, 3))
        rows = result.table_rows()
        assert len(rows) == len(result.trials)
        for k, objective, seconds in rows:
            assert k in (1, 3)
            assert objective > 0
            assert seconds >= 0
