"""Shared fixtures: small, fast problem instances."""

import pytest

from repro.library import default_catalog, localization_catalog
from repro.resilience import faults
from repro.telemetry import metrics as telemetry_metrics
from repro.telemetry import trace as telemetry_trace
from repro.network import (
    LifetimeRequirement,
    LinkQualityRequirement,
    ReachabilityRequirement,
    RequirementSet,
    localization_template,
    small_grid_template,
)


@pytest.fixture(autouse=True)
def _no_fault_plan_leaks():
    """Fault plans are process-global; never let one outlive its test."""
    yield
    faults.uninstall()


@pytest.fixture(autouse=True)
def _no_telemetry_leaks():
    """The tracer and metrics registry are process-global; reset both."""
    yield
    telemetry_trace.shutdown()
    telemetry_trace.drain_drop_warnings()
    telemetry_trace.get_tracer().dropped_events = 0
    telemetry_metrics.reset()


@pytest.fixture(scope="session")
def grid_instance():
    """A 4x3 grid data-collection instance (deterministic)."""
    return small_grid_template(nx=4, ny=3, spacing=8.0)


@pytest.fixture(scope="session")
def library():
    """The default device catalog."""
    return default_catalog()


@pytest.fixture()
def grid_requirements(grid_instance):
    """Two disjoint routes per sensor + LQ + lifetime."""
    reqs = RequirementSet()
    for sensor in grid_instance.sensor_ids:
        reqs.require_route(sensor, grid_instance.sink_id,
                           replicas=2, disjoint=True)
    reqs.link_quality = LinkQualityRequirement(min_snr_db=20.0)
    reqs.lifetime = LifetimeRequirement(years=5.0)
    return reqs


@pytest.fixture(scope="session")
def loc_instance():
    """A small localization instance."""
    return localization_template(n_anchor_candidates=30, n_test_points=16)


@pytest.fixture()
def loc_requirement(loc_instance):
    """Coverage by >= 3 anchors at RSS >= -80 dBm."""
    return ReachabilityRequirement(
        test_points=loc_instance.test_points, min_anchors=3,
        min_rss_dbm=-80.0,
    )


@pytest.fixture(scope="session")
def loc_library():
    """The anchor catalog."""
    return localization_catalog()
