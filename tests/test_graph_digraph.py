"""Tests for the directed-graph substrate."""

import math

import pytest

from repro.graph import INFINITY, DiGraph


@pytest.fixture()
def triangle():
    g = DiGraph()
    g.add_edge("a", "b", 1.0)
    g.add_edge("b", "c", 2.0)
    g.add_edge("a", "c", 5.0)
    return g


class TestConstruction:
    def test_counts(self, triangle):
        assert triangle.node_count == 3
        assert triangle.edge_count == 3

    def test_add_node_idempotent(self, triangle):
        triangle.add_node("a")
        assert triangle.node_count == 3

    def test_readd_edge_overwrites_weight(self, triangle):
        triangle.add_edge("a", "b", 9.0)
        assert triangle.weight("a", "b") == 9.0
        assert triangle.edge_count == 3

    def test_negative_weight_rejected(self):
        g = DiGraph()
        with pytest.raises(ValueError):
            g.add_edge("a", "b", -1.0)

    def test_self_loop_rejected(self):
        g = DiGraph()
        with pytest.raises(ValueError):
            g.add_edge("a", "a")

    def test_remove_edge(self, triangle):
        triangle.remove_edge("a", "c")
        assert not triangle.has_edge("a", "c")
        with pytest.raises(KeyError):
            triangle.remove_edge("a", "c")


class TestQueries:
    def test_successors_and_predecessors(self, triangle):
        assert dict(triangle.successors("a")) == {"b": 1.0, "c": 5.0}
        assert dict(triangle.predecessors("c")) == {"b": 2.0, "a": 5.0}

    def test_out_degree(self, triangle):
        assert triangle.out_degree("a") == 2
        assert triangle.out_degree("c") == 0

    def test_weight_of_missing_edge_raises(self, triangle):
        with pytest.raises(KeyError):
            triangle.weight("c", "a")

    def test_set_weight(self, triangle):
        triangle.set_weight("a", "b", 3.5)
        assert triangle.weight("a", "b") == 3.5
        with pytest.raises(KeyError):
            triangle.set_weight("c", "a", 1.0)

    def test_subgraph_weight(self, triangle):
        assert triangle.subgraph_weight(["a", "b", "c"]) == 3.0
        assert math.isinf(triangle.subgraph_weight(["a", "c", "b"]))


class TestMasking:
    def test_masked_edge_hidden_from_traversal(self, triangle):
        triangle.mask_edge("a", "b")
        assert dict(triangle.successors("a")) == {"c": 5.0}
        assert dict(triangle.predecessors("b")) == {}
        assert triangle.weight("a", "b") == INFINITY

    def test_masked_edge_still_exists(self, triangle):
        triangle.mask_edge("a", "b")
        assert triangle.has_edge("a", "b")
        assert triangle.edge_count == 3

    def test_unmask_restores(self, triangle):
        triangle.mask_edge("a", "b")
        triangle.unmask_edge("a", "b")
        assert dict(triangle.successors("a")) == {"b": 1.0, "c": 5.0}

    def test_clear_masks(self, triangle):
        triangle.mask_edge("a", "b")
        triangle.mask_edge("b", "c")
        triangle.clear_masks()
        assert triangle.masked_edges == frozenset()

    def test_mask_missing_edge_raises(self, triangle):
        with pytest.raises(KeyError):
            triangle.mask_edge("c", "a")

    def test_subgraph_weight_respects_masks(self, triangle):
        triangle.mask_edge("b", "c")
        assert math.isinf(triangle.subgraph_weight(["a", "b", "c"]))


class TestCopy:
    def test_copy_is_independent(self, triangle):
        clone = triangle.copy()
        clone.add_edge("c", "a", 1.0)
        assert not triangle.has_edge("c", "a")

    def test_copy_preserves_masks(self, triangle):
        triangle.mask_edge("a", "b")
        clone = triangle.copy()
        assert clone.is_masked("a", "b")
