"""Tests for the shadowing-robustness analysis."""

import pytest

from repro.core import DataCollectionExplorer
from repro.network import (
    LinkQualityRequirement,
    RequirementSet,
    small_grid_template,
)
from repro.library import default_catalog
from repro.validation import shadowing_robustness


def synthesize(min_snr_db: float, replicas: int = 2):
    instance = small_grid_template(nx=5, ny=4, spacing=9.0)
    reqs = RequirementSet()
    for s in instance.sensor_ids:
        reqs.require_route(s, instance.sink_id, replicas=replicas,
                           disjoint=(replicas > 1))
    reqs.link_quality = LinkQualityRequirement(min_snr_db=min_snr_db)
    result = DataCollectionExplorer(
        instance.template, default_catalog(), reqs
    ).solve("cost")
    assert result.feasible
    return result.architecture, reqs


class TestShadowingRobustness:
    def test_zero_sigma_always_survives(self):
        arch, reqs = synthesize(min_snr_db=20.0)
        report = shadowing_robustness(arch, reqs, sigma_db=0.0, draws=10)
        assert report.worst_pair_survival == 1.0
        assert all(r == 0.0 for r in report.link_failure_rate.values())

    def test_deterministic_per_seed(self):
        arch, reqs = synthesize(min_snr_db=15.0)
        a = shadowing_robustness(arch, reqs, sigma_db=6.0, draws=50, seed=4)
        b = shadowing_robustness(arch, reqs, sigma_db=6.0, draws=50, seed=4)
        assert a.pair_survival == b.pair_survival

    def test_margins_reflect_requirement(self):
        tight_arch, tight_reqs = synthesize(min_snr_db=10.0)
        wide_arch, wide_reqs = synthesize(min_snr_db=25.0)
        tight = shadowing_robustness(tight_arch, tight_reqs, draws=10)
        wide = shadowing_robustness(wide_arch, wide_reqs, draws=10)
        assert wide.min_link_margin_db > tight.min_link_margin_db

    def test_margin_buys_survival(self):
        """Designs synthesized with more SNR headroom survive shadowing
        better — the design-margin story.  Single routes (no replica
        redundancy masking the effect) under heavy shadowing."""
        tight_arch, tight_reqs = synthesize(min_snr_db=8.0, replicas=1)
        wide_arch, wide_reqs = synthesize(min_snr_db=25.0, replicas=1)
        sigma = 8.0
        tight = shadowing_robustness(tight_arch, tight_reqs,
                                     sigma_db=sigma, draws=400, seed=1)
        wide = shadowing_robustness(wide_arch, wide_reqs,
                                    sigma_db=sigma, draws=400, seed=1)
        assert wide.min_link_margin_db > tight.min_link_margin_db
        assert wide.mean_pair_survival > tight.mean_pair_survival

    def test_replicas_buy_survival(self):
        """Two disjoint replicas survive shadowing draws better than a
        single route at the same quality bound."""
        single_arch, single_reqs = synthesize(min_snr_db=10.0, replicas=1)
        dual_arch, dual_reqs = synthesize(min_snr_db=10.0, replicas=2)
        sigma = 7.0
        single = shadowing_robustness(single_arch, single_reqs,
                                      sigma_db=sigma, draws=300, seed=2)
        dual = shadowing_robustness(dual_arch, dual_reqs,
                                    sigma_db=sigma, draws=300, seed=2)
        assert dual.mean_pair_survival >= single.mean_pair_survival

    def test_survival_decreases_with_sigma(self):
        arch, reqs = synthesize(min_snr_db=12.0)
        calm = shadowing_robustness(arch, reqs, sigma_db=2.0, draws=200,
                                    seed=3)
        rough = shadowing_robustness(arch, reqs, sigma_db=10.0, draws=200,
                                     seed=3)
        assert rough.mean_pair_survival <= calm.mean_pair_survival

    def test_empty_design(self):
        from repro.network import Architecture

        instance = small_grid_template()
        arch = Architecture(template=instance.template,
                            library=default_catalog())
        report = shadowing_robustness(arch, RequirementSet(), draws=5)
        assert report.worst_pair_survival == 1.0

    def test_invalid_draws(self):
        arch, reqs = synthesize(min_snr_db=15.0)
        with pytest.raises(ValueError):
            shadowing_robustness(arch, reqs, draws=0)
