"""Tests for the ``repro.explore`` facade and the explorer API redesign."""

import pytest

import repro
from repro.core.explorer import (
    AnchorPlacementExplorer,
    ArchitectureExplorer,
    DataCollectionExplorer,
    LocalizationExplorer,
)
from repro.core.facade import build_explorer
from repro.library import default_catalog, localization_catalog
from repro.network import (
    LinkQualityRequirement,
    ReachabilityRequirement,
    RequirementSet,
    localization_template,
    small_grid_template,
)
from repro.runtime import EncodeCache


@pytest.fixture(scope="module")
def data_problem():
    instance = small_grid_template(nx=4, ny=3)
    reqs = RequirementSet()
    for s in instance.sensor_ids:
        reqs.require_route(s, instance.sink_id, replicas=2, disjoint=True)
    reqs.link_quality = LinkQualityRequirement(min_snr_db=20.0)
    return instance, reqs


@pytest.fixture(scope="module")
def loc_problem():
    instance = localization_template(n_anchor_candidates=30, n_test_points=12)
    requirement = ReachabilityRequirement(
        test_points=instance.test_points, min_anchors=3, min_rss_dbm=-80.0
    )
    return instance, requirement


class TestBuildExplorer:
    def test_picks_data_collection(self, data_problem):
        instance, reqs = data_problem
        explorer = build_explorer(instance.template, default_catalog(), reqs)
        assert isinstance(explorer, DataCollectionExplorer)

    def test_picks_anchor_placement(self, loc_problem):
        instance, requirement = loc_problem
        explorer = build_explorer(
            instance.template, localization_catalog(), requirement,
            channel=instance.channel,
        )
        assert isinstance(explorer, AnchorPlacementExplorer)

    def test_localization_needs_channel(self, loc_problem):
        instance, requirement = loc_problem
        with pytest.raises(ValueError, match="channel"):
            build_explorer(
                instance.template, localization_catalog(), requirement
            )

    def test_encoder_and_k_star_are_exclusive(self, data_problem):
        instance, reqs = data_problem
        with pytest.raises(ValueError, match="not both"):
            build_explorer(
                instance.template, default_catalog(), reqs,
                encoder=repro.ApproximatePathEncoder(k_star=5), k_star=5,
            )

    def test_rejects_other_requirement_types(self, data_problem):
        instance, _ = data_problem
        with pytest.raises(TypeError):
            build_explorer(instance.template, default_catalog(), ["route"])


class TestExplore:
    def test_data_collection_end_to_end(self, data_problem):
        instance, reqs = data_problem
        result = repro.explore(
            instance.template, default_catalog(), reqs, objective="cost"
        )
        assert result.feasible
        assert result.run_stats is not None
        assert result.stats_dict()["phase_seconds"]["encode"] >= 0

    def test_localization_end_to_end(self, loc_problem):
        instance, requirement = loc_problem
        result = repro.explore(
            instance.template, localization_catalog(), requirement,
            objective="cost", channel=instance.channel,
        )
        assert result.feasible
        assert result.encoder_name.startswith("reach-pruned")

    def test_matches_direct_explorer(self, data_problem):
        instance, reqs = data_problem
        via_facade = repro.explore(
            instance.template, default_catalog(), reqs, objective="cost"
        )
        direct = DataCollectionExplorer(
            instance.template, default_catalog(), reqs
        ).solve("cost")
        assert via_facade.objective_value == pytest.approx(
            direct.objective_value
        )

    def test_objective_list_parallel_equals_sequential(self, data_problem):
        instance, reqs = data_problem
        objectives = ("cost", {"cost": 1.0, "energy": 0.2})
        sequential = repro.explore(
            instance.template, default_catalog(), reqs,
            objective=objectives,
        )
        parallel = repro.explore(
            instance.template, default_catalog(), reqs,
            objective=objectives, options=repro.SolveOptions(parallel=2),
        )
        assert isinstance(sequential, list) and len(sequential) == 2
        for seq, par in zip(sequential, parallel):
            assert par.objective_value == pytest.approx(seq.objective_value)

    def test_empty_objective_list_rejected(self, data_problem):
        instance, reqs = data_problem
        with pytest.raises(ValueError, match="objective"):
            repro.explore(
                instance.template, default_catalog(), reqs, objective=[]
            )

    def test_shared_cache_reports_hits(self, data_problem):
        instance, reqs = data_problem
        cache = EncodeCache()
        repro.explore(
            instance.template, default_catalog(), reqs, cache=cache
        )
        assert cache.counters.miss_count() > 0
        repro.explore(
            instance.template, default_catalog(), reqs, cache=cache
        )
        assert cache.counters.hit_count() > 0


class TestKeywordOnlyConstructors:
    def test_data_collection_rejects_positional_options(self, data_problem):
        instance, reqs = data_problem
        with pytest.raises(TypeError):
            DataCollectionExplorer(
                instance.template, default_catalog(), reqs,
                repro.ApproximatePathEncoder(k_star=5),
            )

    def test_anchor_placement_rejects_positional_options(self, loc_problem):
        instance, requirement = loc_problem
        with pytest.raises(TypeError):
            AnchorPlacementExplorer(
                instance.template, localization_catalog(), requirement,
                instance.channel, 10,
            )


class TestDeprecatedShims:
    def test_architecture_explorer_warns_and_solves(self, data_problem):
        instance, reqs = data_problem
        with pytest.warns(DeprecationWarning, match="ArchitectureExplorer"):
            explorer = ArchitectureExplorer(
                instance.template, default_catalog(), reqs
            )
        result = explorer.solve("cost")
        assert result.feasible

    def test_localization_explorer_warns_and_accepts_positional(
        self, loc_problem
    ):
        instance, requirement = loc_problem
        with pytest.warns(DeprecationWarning, match="LocalizationExplorer"):
            explorer = LocalizationExplorer(
                instance.template, localization_catalog(), requirement,
                instance.channel, 10,
            )
        assert explorer.k_star == 10
        assert isinstance(explorer, AnchorPlacementExplorer)


class TestDeadlineGraceful:
    def test_spent_deadline_returns_timeout_results(self, data_problem):
        """explore() with several objectives and a spent deadline must
        degrade to TIMEOUT results, not raise TimeoutError mid-run."""
        from repro.milp.solution import SolveStatus
        from repro.resilience import DeadlineBudget

        instance, reqs = data_problem
        clock = [0.0]
        budget = DeadlineBudget(1.0, clock=lambda: clock[0])
        clock[0] = 5.0  # budget spent before any trial starts
        results = repro.explore(
            instance.template, default_catalog(), reqs,
            objective=["cost", "energy"],
            options=repro.SolveOptions(parallel=2), budget=budget,
        )
        assert [r.status for r in results] == [SolveStatus.TIMEOUT] * 2
        assert not any(r.feasible for r in results)
        # The degraded results still render and serialize.
        for result in results:
            assert "timeout" in result.summary()
            assert result.stats_dict()["status"] == "timeout"

    def test_fingerprint_pins_problem_identity(self, data_problem, loc_problem):
        """Same problem -> same fingerprint; different problem -> different."""
        instance, reqs = data_problem
        a = build_explorer(instance.template, default_catalog(), reqs)
        b = build_explorer(instance.template, default_catalog(), reqs)
        assert a.fingerprint() == b.fingerprint()

        other = small_grid_template(nx=5, ny=3)
        other_reqs = RequirementSet()
        for s in other.sensor_ids:
            other_reqs.require_route(s, other.sink_id, replicas=2,
                                     disjoint=True)
        other_reqs.link_quality = LinkQualityRequirement(min_snr_db=20.0)
        c = build_explorer(other.template, default_catalog(), other_reqs)
        assert a.fingerprint() != c.fingerprint()

        loc_instance, loc_req = loc_problem
        d = build_explorer(
            loc_instance.template, localization_catalog(), loc_req,
            channel=loc_instance.channel,
        )
        assert d.fingerprint() != a.fingerprint()
        assert d.fingerprint() == build_explorer(
            loc_instance.template, localization_catalog(), loc_req,
            channel=loc_instance.channel,
        ).fingerprint()
