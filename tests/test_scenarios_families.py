"""Tests for the scenario families, registry and fingerprints."""

import pytest

from repro.scenarios import (
    SCENARIO_FAMILIES,
    ScenarioRegistry,
    default_registry,
    format_name,
    parse_name,
)

#: One cheap representative per family (explicit params keep them small).
REPRESENTATIVES = [
    "multifloor:floors=2,rooms_x=3:0",
    "campus:buildings_x=2,buildings_y=2:0",
    "materials::0",
    "reqmix::0",
    "moving_target::0",
]


class TestRegistryCorpus:
    def test_enumerates_at_least_100_scenarios(self):
        registry = default_registry()
        names = registry.names()
        assert len(names) >= 100
        assert len(set(names)) == len(names)
        families = {parse_name(n)[0] for n in names}
        assert len(families) >= 4

    def test_corpus_fingerprints_are_distinct(self):
        registry = default_registry()
        prints = {}
        for name in registry:
            fp = registry.generate(name).fingerprint()
            assert fp not in prints, (
                f"{name} and {prints[fp]} fingerprint identically"
            )
            prints[fp] = name

    def test_family_filter_and_contains(self):
        registry = default_registry()
        campus = registry.names(family="campus")
        assert campus and all(n.startswith("campus:") for n in campus)
        assert campus[0] in registry
        assert "campus:buildings_x=7:0" in registry  # any value of a known key
        assert "campus:bogus=1:0" not in registry
        assert "nope::0" not in registry
        assert "not a name" not in registry
        with pytest.raises(KeyError, match="unknown scenario family"):
            registry.names(family="nope")

    def test_summary_covers_every_family(self):
        registry = default_registry()
        summary = registry.summary()
        assert {row["family"] for row in summary} == {
            f.name for f in SCENARIO_FAMILIES
        }
        assert sum(row["scenarios"] for row in summary) == len(registry)

    def test_registry_rejects_duplicate_family_and_empty_seeds(self):
        fam = SCENARIO_FAMILIES[0]
        with pytest.raises(ValueError, match="duplicate"):
            ScenarioRegistry(families=[fam, fam])
        with pytest.raises(ValueError, match="at least one seed"):
            ScenarioRegistry(seeds=[])


class TestNames:
    def test_format_parse_round_trip(self):
        name = format_name("multifloor", {"rooms_x": 4, "floors": 3}, 7)
        assert name == "multifloor:floors=3,rooms_x=4:7"
        family, params, seed = parse_name(name)
        assert family == "multifloor"
        assert params == {"floors": 3, "rooms_x": 4}
        assert seed == 7

    def test_parse_recovers_numeric_types(self):
        _, params, _ = parse_name("campus:street=6.5,buildings_x=3:0")
        assert params == {"street": 6.5, "buildings_x": 3}
        assert isinstance(params["buildings_x"], int)

    @pytest.mark.parametrize("bad", [
        "campus:0",               # missing params section
        "campus::x",              # non-integer seed
        "::0",                    # empty family
        "campus:streets:0",       # malformed parameter
        "campus:a=1,a=2:0",       # duplicate parameter
    ])
    def test_parse_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            parse_name(bad)

    def test_generate_canonicalizes_the_name(self):
        registry = default_registry()
        scenario = registry.generate("multifloor:rooms_x=4,floors=3:1")
        assert scenario.name == "multifloor:floors=3,rooms_x=4:1"
        assert (
            registry.generate(scenario.name).fingerprint()
            == scenario.fingerprint()
        )

    def test_generate_rejects_unknown_family_and_params(self):
        registry = default_registry()
        with pytest.raises(KeyError, match="unknown scenario family"):
            registry.generate("skyscraper::0")
        with pytest.raises(ValueError, match="unknown parameters"):
            registry.generate("campus:lanes=2:0")


class TestDeterminism:
    @pytest.mark.parametrize("name", REPRESENTATIVES)
    def test_regeneration_is_bit_stable(self, name):
        registry = default_registry()
        first = registry.generate(name)
        second = registry.generate(name)
        assert first.fingerprint() == second.fingerprint()
        assert list(first.template.edges()) == list(second.template.edges())

    @pytest.mark.parametrize("name", REPRESENTATIVES)
    def test_rebuilt_scenario_fingerprints_identically(self, name):
        scenario = default_registry().generate(name)
        assert scenario.rebuilt().fingerprint() == scenario.fingerprint()

    def test_seeds_change_the_problem(self):
        registry = default_registry()
        fps = {
            registry.generate(f"campus::{seed}").fingerprint()
            for seed in range(5)
        }
        assert len(fps) == 5


class TestFamiliesSolve:
    @pytest.mark.parametrize("name", REPRESENTATIVES)
    def test_representative_solves_feasibly(self, name):
        scenario = default_registry().generate(name)
        result = scenario.explore()
        assert result.feasible, f"{name}: {result.status}"
