"""The anytime tabu synthesizer (feasibility, determinism, anytime)."""

import pytest

from repro.accel import TabuSynthesizer
from repro.core.explorer import DataCollectionExplorer
from repro.encoding.approximate import ApproximatePathEncoder
from repro.library import default_catalog
from repro.milp import HighsSolver, SolveStatus
from repro.network import (
    LinkQualityRequirement,
    RequirementSet,
    small_grid_template,
)


@pytest.fixture(scope="module")
def problem():
    instance = small_grid_template(nx=4, ny=3, spacing=8.0)
    reqs = RequirementSet()
    for sensor in instance.sensor_ids:
        reqs.require_route(sensor, instance.sink_id, replicas=2,
                           disjoint=True)
    reqs.link_quality = LinkQualityRequirement(min_snr_db=20.0)
    return instance, reqs


@pytest.fixture(scope="module")
def built(problem):
    instance, reqs = problem
    explorer = DataCollectionExplorer(
        instance.template, default_catalog(), reqs,
        encoder=ApproximatePathEncoder(k_star=5),
    )
    return explorer.build("cost")


def make_tabu(problem, built, **kwargs):
    instance, reqs = problem
    kwargs.setdefault("max_iters", 120)
    return TabuSynthesizer(
        instance.template, default_catalog(), reqs,
        built.encoding.selection, **kwargs,
    )


class TestSearch:
    def test_finds_a_validator_clean_design(self, problem, built):
        from repro.validation.checker import validate

        _, reqs = problem
        result = make_tabu(problem, built).synthesize()
        assert result.feasible
        assert validate(result.architecture, reqs).ok
        assert result.objective == pytest.approx(
            result.architecture.dollar_cost
        )

    def test_never_beats_the_exact_optimum(self, problem, built):
        exact = HighsSolver().solve(built.model)
        assert exact.status is SolveStatus.OPTIMAL
        result = make_tabu(problem, built).synthesize()
        assert result.objective >= exact.objective - 1e-6

    def test_deterministic_under_seed(self, problem, built):
        a = make_tabu(problem, built, seed=7).synthesize()
        b = make_tabu(problem, built, seed=7).synthesize()
        assert a.objective == pytest.approx(b.objective)
        assert a.iterations == b.iterations

    def test_trajectory_is_monotone_and_tabu_tagged(self, problem, built):
        result = make_tabu(problem, built).synthesize()
        assert result.trajectory
        incumbents = [e["incumbent"] for e in result.trajectory]
        assert incumbents == sorted(incumbents, reverse=True)
        assert all(e["source"] == "tabu" for e in result.trajectory)
        assert result.first_incumbent_s is not None

    def test_stop_callable_halts_the_search(self, problem, built):
        result = make_tabu(problem, built).synthesize(stop=lambda: True)
        assert result.iterations <= 1

    def test_initial_architecture_seeds_the_search(self, problem, built):
        seeded = make_tabu(problem, built).synthesize()
        again = make_tabu(
            problem, built, initial=seeded.architecture, max_iters=1,
        ).synthesize()
        # One iteration from the seeded state is already feasible at no
        # worse an objective than the seed itself.
        assert again.feasible
        assert again.objective <= seeded.objective + 1e-9

    def test_empty_selection_is_refused(self, problem):
        instance, reqs = problem
        with pytest.raises(ValueError, match="candidate pools"):
            TabuSynthesizer(
                instance.template, default_catalog(), reqs, [],
            )
