"""Tests for the linear-expression algebra."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.milp import Constraint, LinExpr, Model, lin_sum


@pytest.fixture()
def model():
    return Model("t")


class TestVar:
    def test_binary_classification(self, model):
        assert model.binary("b").is_binary
        assert not model.continuous("c", 0, 1).is_binary
        assert not model.integer("i", 0, 2).is_binary

    def test_repr_mentions_kind(self, model):
        assert "bin" in repr(model.binary("b"))
        assert "cont" in repr(model.continuous("c"))

    def test_hashable(self, model):
        x = model.binary("x")
        y = model.binary("y")
        assert len({x, y, x}) == 2


class TestArithmetic:
    def test_add_vars(self, model):
        x, y = model.binary("x"), model.binary("y")
        expr = x + y
        assert expr.coeffs == {x.index: 1.0, y.index: 1.0}

    def test_scalar_ops(self, model):
        x = model.binary("x")
        expr = 3 * x - 1
        assert expr.coeffs == {x.index: 3.0}
        assert expr.constant == -1.0

    def test_subtraction_and_negation(self, model):
        x, y = model.binary("x"), model.binary("y")
        expr = -(x - y)
        assert expr.coeffs == {x.index: -1.0, y.index: 1.0}

    def test_rsub(self, model):
        x = model.binary("x")
        expr = 5 - x
        assert expr.coeffs == {x.index: -1.0}
        assert expr.constant == 5.0

    def test_coefficients_merge(self, model):
        x = model.binary("x")
        expr = x + 2 * x - 0.5 * x
        assert expr.coeffs == {x.index: 2.5}

    def test_expr_times_expr_rejected(self, model):
        x, y = model.binary("x"), model.binary("y")
        with pytest.raises(TypeError):
            (x + 0.0) * (y + 0.0)

    def test_invalid_operand_rejected(self, model):
        x = model.binary("x")
        with pytest.raises(TypeError):
            x + "nope"

    def test_add_term_fast_path(self, model):
        x = model.binary("x")
        expr = LinExpr()
        expr.add_term(x, 2.0)
        expr.add_term(x, 3.0)
        assert expr.coeffs == {x.index: 5.0}

    def test_copy_is_independent(self, model):
        x = model.binary("x")
        a = x + 1
        b = a.copy()
        b.add_term(x, 1.0)
        assert a.coeffs[x.index] == 1.0


class TestLinSum:
    def test_mixed_items(self, model):
        x, y = model.binary("x"), model.binary("y")
        expr = lin_sum([x, 2 * y, 3.0, x + 1])
        assert expr.coeffs == {x.index: 2.0, y.index: 2.0}
        assert expr.constant == 4.0

    def test_empty(self):
        expr = lin_sum([])
        assert expr.coeffs == {} and expr.constant == 0.0

    def test_rejects_junk(self):
        with pytest.raises(TypeError):
            lin_sum(["x"])

    @given(st.lists(st.floats(-10, 10), max_size=20))
    def test_constant_sum_matches(self, values):
        assert lin_sum(values).constant == pytest.approx(sum(values))


class TestComparisons:
    def test_le_builds_constraint(self, model):
        x = model.binary("x")
        con = x + 1 <= 3
        assert isinstance(con, Constraint)
        coeffs, lo, hi = con.normalized()
        assert hi == pytest.approx(2.0)
        assert lo == float("-inf")

    def test_ge_builds_constraint(self, model):
        x = model.binary("x")
        coeffs, lo, hi = (2 * x >= 1).normalized()
        assert lo == pytest.approx(1.0)
        assert hi == float("inf")

    def test_eq_builds_two_sided(self, model):
        x, y = model.binary("x"), model.binary("y")
        coeffs, lo, hi = (x + y == 1).normalized()
        assert lo == hi == pytest.approx(1.0)

    def test_var_vs_var(self, model):
        x, y = model.binary("x"), model.binary("y")
        coeffs, lo, hi = (x <= y).normalized()
        assert coeffs == {x.index: 1.0, y.index: -1.0}
        assert hi == 0.0
