"""Tests for candidate-location generators."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import (
    Rectangle,
    grid_for_count,
    grid_locations,
    open_floorplan,
    scattered_locations,
)

BOUNDS = Rectangle(0, 0, 40, 20)


class TestGridLocations:
    def test_count(self):
        assert len(grid_locations(BOUNDS, 5, 3)) == 15

    def test_margin_respected(self):
        for pt in grid_locations(BOUNDS, 4, 4, margin=3.0):
            assert 3.0 <= pt.x <= 37.0
            assert 3.0 <= pt.y <= 17.0

    def test_single_point_centred(self):
        (pt,) = grid_locations(BOUNDS, 1, 1, margin=2.0)
        assert pt.x == pytest.approx(20.0)
        assert pt.y == pytest.approx(10.0)

    def test_row_major_order(self):
        pts = grid_locations(BOUNDS, 3, 2, margin=0.0)
        assert pts[0].y == pts[1].y == pts[2].y
        assert pts[0].x < pts[1].x < pts[2].x
        assert pts[3].y > pts[0].y

    def test_invalid_counts_raise(self):
        with pytest.raises(ValueError):
            grid_locations(BOUNDS, 0, 3)

    def test_margin_too_large_raises(self):
        with pytest.raises(ValueError):
            grid_locations(BOUNDS, 2, 2, margin=15.0)

    def test_all_points_distinct(self):
        pts = grid_locations(BOUNDS, 6, 4)
        assert len(set(pts)) == 24


class TestGridForCount:
    @given(st.integers(min_value=1, max_value=300))
    def test_exact_count(self, count):
        assert len(grid_for_count(BOUNDS, count)) == count

    def test_points_inside_bounds(self):
        for pt in grid_for_count(BOUNDS, 50):
            assert BOUNDS.contains(pt)

    def test_invalid_count_raises(self):
        with pytest.raises(ValueError):
            grid_for_count(BOUNDS, 0)


class TestScatteredLocations:
    def test_deterministic_per_seed(self):
        plan = open_floorplan(40, 20)
        a = scattered_locations(plan, 20, seed=5)
        b = scattered_locations(plan, 20, seed=5)
        assert a == b

    def test_different_seed_differs(self):
        plan = open_floorplan(40, 20)
        assert scattered_locations(plan, 20, seed=1) != scattered_locations(
            plan, 20, seed=2
        )

    def test_points_inside_margin(self):
        plan = open_floorplan(40, 20)
        for pt in scattered_locations(plan, 100, seed=0, margin=1.0):
            assert 1.0 <= pt.x <= 39.0
            assert 1.0 <= pt.y <= 19.0
