"""Tests for the what-if edit grammar and the patched-template parity."""

import pytest

from repro.scenarios import (
    ScenarioEdit,
    apply_edit,
    apply_edits,
    default_registry,
    parse_edit,
)


class TestParse:
    @pytest.mark.parametrize("text", [
        "add-wall:10,0,10,20,concrete",
        "add-wall:10,0,10,20,drywall",
        "add-wall:1.5,2.5,3.5,4.5,mystery,7.5",
        "remove-wall:3",
        "move-node:7,12.5,30.0",
        "swap-device:relay-std=relay-lp",
        "set-replicas:2,3",
        "set-min-snr:25.0",
    ])
    def test_spec_round_trips(self, text):
        edit = parse_edit(text)
        assert parse_edit(edit.spec()) == edit

    def test_add_wall_defaults_to_drywall(self):
        edit = parse_edit("add-wall:0,0,5,0")
        assert edit.args[4] == "drywall"

    @pytest.mark.parametrize("bad", [
        "teleport:1,2",                  # unknown kind
        "add-wall",                      # no args separator
        "add-wall:1,2,3",                # too few coordinates
        "add-wall:1,2,3,4,unobtainium",  # unknown material, no loss
        "remove-wall:first",             # non-integer index
        "move-node:a,b,c",
        "swap-device:solo",              # missing '='
        "set-replicas:1",                # missing count
        "set-min-snr:loud",
    ])
    def test_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            parse_edit(bad)

    def test_unknown_kind_rejected_at_construction(self):
        with pytest.raises(ValueError, match="unknown edit kind"):
            ScenarioEdit("teleport", (1,))


class TestPatchedTemplateParity:
    """A patched template must equal a cold rebuild edge for edge."""

    @pytest.mark.parametrize("name,edit_text", [
        ("multifloor:floors=2,rooms_x=3:0", "add-wall:10,3,10,11,concrete"),
        ("multifloor:floors=2,rooms_x=3:0", "remove-wall:2"),
        ("multifloor:floors=2,rooms_x=3:0", "move-node:3,20.0,20.0"),
        ("campus:buildings_x=2,buildings_y=2:0", "add-wall:30,5,30,25,brick"),
        ("campus:buildings_x=2,buildings_y=2:0", "remove-wall:0"),
        ("materials::1", "move-node:5,30.0,14.0"),
        ("reqmix::0", "add-wall:25,2,25,20,glass"),
    ])
    def test_bitwise_equal_to_cold_rebuild(self, name, edit_text):
        scenario = default_registry().generate(name)
        edited, _delta = apply_edit(scenario, parse_edit(edit_text))
        rebuilt = edited.rebuilt()
        assert list(edited.template.edges()) == list(rebuilt.template.edges())
        assert edited.fingerprint() == rebuilt.fingerprint()

    def test_every_edit_kind_changes_the_fingerprint(self):
        scenario = default_registry().generate("reqmix::0")
        for text in [
            "add-wall:25,2,25,20,concrete",
            "remove-wall:1",
            "move-node:2,30.0,10.0",
            "swap-device:relay-std=relay-pa",
            "set-replicas:0,2",
            "set-min-snr:23",
        ]:
            edited, delta = apply_edit(scenario, parse_edit(text))
            assert edited.fingerprint() != scenario.fingerprint(), text
            assert edited.name == f"{scenario.name}+{delta.edit.spec()}"

    def test_edits_compose_in_order(self):
        scenario = default_registry().generate("campus::0")
        edits = (
            parse_edit("add-wall:30,5,30,25,brick"),
            parse_edit("set-min-snr:22"),
        )
        edited, deltas = apply_edits(scenario, edits)
        assert len(deltas) == 2
        assert deltas[0].template_changed and deltas[0].pathloss_changed
        assert not deltas[1].template_changed
        assert "+add-wall:" in edited.name and "+set-min-snr:" in edited.name

    def test_delta_reports_changed_edges(self):
        scenario = default_registry().generate("campus::0")
        _, delta = apply_edit(
            scenario, parse_edit("add-wall:30,5,30,25,brick")
        )
        assert delta.changed_edges
        old = {(u, v): w for u, v, w in scenario.template.edges()}
        for u, v, w_old, w_new in delta.changed_edges:
            assert old.get((u, v)) == w_old
            assert w_old != w_new


class TestEditErrors:
    def test_remove_wall_out_of_range(self):
        scenario = default_registry().generate("campus::0")
        with pytest.raises(ValueError, match="out of range"):
            apply_edit(scenario, parse_edit("remove-wall:999"))

    def test_move_node_unknown_or_outside(self):
        scenario = default_registry().generate("campus::0")
        with pytest.raises(ValueError, match="not in template"):
            apply_edit(scenario, parse_edit("move-node:999,5,5"))
        with pytest.raises(ValueError, match="outside the floor plan"):
            apply_edit(scenario, parse_edit("move-node:0,-100,5"))

    def test_swap_device_unknown_and_role_mismatch(self):
        scenario = default_registry().generate("campus::0")
        with pytest.raises(KeyError):
            apply_edit(scenario, parse_edit("swap-device:ghost=relay-std"))
        with pytest.raises(ValueError, match="role sets differ"):
            apply_edit(
                scenario, parse_edit("swap-device:relay-std=anchor-std")
            )
        with pytest.raises(ValueError, match="already in the library"):
            apply_edit(
                scenario, parse_edit("swap-device:relay-std=relay-ant")
            )

    def test_requirement_edits_rejected_on_localization(self):
        scenario = default_registry().generate("moving_target::0")
        with pytest.raises(ValueError, match="localization"):
            apply_edit(scenario, parse_edit("set-min-snr:25"))
        with pytest.raises(ValueError, match="localization"):
            apply_edit(scenario, parse_edit("set-replicas:0,2"))

    def test_set_replicas_route_out_of_range(self):
        scenario = default_registry().generate("campus::0")
        with pytest.raises(ValueError, match="out of range"):
            apply_edit(scenario, parse_edit("set-replicas:99,2"))
