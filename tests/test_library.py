"""Tests for the component library substrate."""

import pytest

from repro.library import (
    ZIGBEE_2_4GHZ,
    Device,
    Library,
    LinkType,
    default_catalog,
    device,
    localization_catalog,
)


class TestDevice:
    def test_effective_tx(self):
        d = device("d", ("relay",), cost=1.0, tx_power_dbm=4.5,
                   antenna_gain_dbi=5.0)
        assert d.effective_tx_dbm == pytest.approx(9.5)

    def test_role_support(self):
        d = device("d", ("relay", "sensor"), cost=1.0)
        assert d.supports("relay") and d.supports("sensor")
        assert not d.supports("sink")

    def test_unknown_role_rejected(self):
        with pytest.raises(ValueError, match="unknown roles"):
            device("d", ("quantum",), cost=1.0)

    def test_empty_roles_rejected(self):
        with pytest.raises(ValueError):
            Device("d", frozenset(), 1.0, 0, 0, 1, 1, 1, 0.001)

    def test_negative_attributes_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            device("d", ("relay",), cost=-1.0)
        with pytest.raises(ValueError, match="negative"):
            device("d", ("relay",), cost=1.0, radio_tx_ma=-5.0)


class TestLinkType:
    def test_airtime(self):
        # 50 bytes at 250 kbps = 1.6 ms.
        assert ZIGBEE_2_4GHZ.packet_airtime_ms(50) == pytest.approx(1.6)

    def test_unknown_modulation_rejected(self):
        with pytest.raises(ValueError, match="modulation"):
            LinkType("x", modulation="64qam")

    def test_invalid_bit_rate_rejected(self):
        with pytest.raises(ValueError):
            LinkType("x", bit_rate_bps=0)

    def test_paper_parameters(self):
        assert ZIGBEE_2_4GHZ.frequency_ghz == 2.4
        assert ZIGBEE_2_4GHZ.modulation == "qpsk"
        assert ZIGBEE_2_4GHZ.bit_rate_bps == 250_000
        assert ZIGBEE_2_4GHZ.noise_dbm == -100.0


class TestLibrary:
    def test_duplicate_names_rejected(self):
        lib = Library()
        lib.add(device("a", ("relay",), cost=1.0))
        with pytest.raises(ValueError, match="duplicate"):
            lib.add(device("a", ("relay",), cost=2.0))

    def test_by_name(self):
        lib = default_catalog()
        assert lib.by_name("relay-std").cost == 20.0
        with pytest.raises(KeyError):
            lib.by_name("nope")

    def test_for_role(self):
        lib = default_catalog()
        assert all(d.supports("relay") for d in lib.for_role("relay"))
        assert len(lib.for_role("sink")) == 1

    def test_attribute_ranges_cover_all(self):
        lib = default_catalog()
        lo, hi = lib.tx_gain_range()
        for d in lib.devices:
            assert lo <= d.effective_tx_dbm <= hi

    def test_default_link(self):
        assert default_catalog().default_link is ZIGBEE_2_4GHZ
        with pytest.raises(ValueError):
            Library().default_link


class TestDefaultCatalog:
    def test_every_role_has_devices(self):
        lib = default_catalog()
        for role in ("sensor", "relay", "sink"):
            assert lib.for_role(role), role

    def test_sensors_have_a_free_baseline(self):
        lib = default_catalog()
        assert min(d.cost for d in lib.for_role("sensor")) == 0.0

    def test_low_power_parts_cost_more_and_draw_less(self):
        lib = default_catalog()
        std = lib.by_name("relay-std")
        lp = lib.by_name("relay-lp")
        assert lp.cost > std.cost
        assert lp.radio_tx_ma < std.radio_tx_ma
        assert lp.sleep_ma < std.sleep_ma

    def test_antenna_parts_have_gain(self):
        lib = default_catalog()
        assert lib.by_name("relay-ant").antenna_gain_dbi > 0
        assert lib.by_name("relay-std").antenna_gain_dbi == 0

    def test_localization_catalog_has_anchor_ladder(self):
        lib = localization_catalog()
        anchors = lib.for_role("anchor")
        assert len(anchors) >= 3
        costs = [d.cost for d in anchors]
        strengths = [d.effective_tx_dbm for d in anchors]
        # Stronger anchors cost more (the Table 2 trade-off).
        assert sorted(costs) == costs
        assert sorted(strengths) == strengths
