"""Integration tests: the analyzer gate inside the explorer pipeline.

The contract under test: a doomed spec is refused by ``build()`` before
any solver call; warnings ride along on the result; ``analyze=False``
bypasses the gate; analyzer time shows up in the phase timings.
"""

import pytest

from repro.analysis import AnalysisError, Severity
from repro.core.explorer import DataCollectionExplorer
from repro.encoding.base import EncodingError
from repro.milp.highs import HighsSolver
from repro.network.requirements import (
    LinkQualityRequirement,
    RequirementSet,
)


class SpySolver:
    """Counts solve() calls on the way through to HiGHS."""

    def __init__(self) -> None:
        self.calls = 0
        self._inner = HighsSolver()

    def solve(self, model):
        self.calls += 1
        return self._inner.solve(model)


def reversed_route_requirements(grid_instance) -> RequirementSet:
    """A spec whose route leaves the sink: deterministically disconnected."""
    reqs = RequirementSet()
    reqs.require_route(grid_instance.sink_id, grid_instance.sensor_ids[0])
    return reqs


class TestFailFastGate:
    def test_disconnected_spec_never_reaches_the_solver(self, grid_instance,
                                                        library):
        spy = SpySolver()
        explorer = DataCollectionExplorer(
            grid_instance.template, library,
            reversed_route_requirements(grid_instance), solver=spy,
        )
        with pytest.raises(AnalysisError) as excinfo:
            explorer.solve("cost")
        assert spy.calls == 0
        assert "spec.route-connectivity" in set(excinfo.value.report.rule_ids)

    def test_analysis_error_is_an_encoding_error(self, grid_instance,
                                                 library):
        explorer = DataCollectionExplorer(
            grid_instance.template, library,
            reversed_route_requirements(grid_instance),
        )
        with pytest.raises(EncodingError):
            explorer.build("cost")

    def test_error_report_carries_context_and_diagnostics(self, grid_instance,
                                                          library):
        explorer = DataCollectionExplorer(
            grid_instance.template, library,
            reversed_route_requirements(grid_instance),
        )
        with pytest.raises(AnalysisError) as excinfo:
            explorer.build("cost")
        err = excinfo.value
        assert "spec analysis" in err.context
        assert err.report.errors
        assert all(d.severity is Severity.ERROR for d in err.report.errors)
        assert str(err)  # message renders without raising

    def test_analyze_false_bypasses_the_gate(self, grid_instance, library):
        explorer = DataCollectionExplorer(
            grid_instance.template, library,
            reversed_route_requirements(grid_instance), analyze=False,
        )
        # The gate is off, so the failure (if any) must come from the
        # encoder itself, not the analyzer.
        with pytest.raises(EncodingError) as excinfo:
            explorer.build("cost")
        assert not isinstance(excinfo.value, AnalysisError)


class TestDiagnosticsOnResults:
    def test_warnings_ride_along_on_infeasible_results(self, grid_instance,
                                                       library):
        reqs = RequirementSet()
        for sensor in grid_instance.sensor_ids:
            reqs.require_route(sensor, grid_instance.sink_id)
        reqs.link_quality = LinkQualityRequirement(min_snr_db=90.0)
        explorer = DataCollectionExplorer(
            grid_instance.template, library, reqs
        )
        result = explorer.solve("cost")
        assert not result.feasible
        rule_ids = {d.rule_id for d in result.diagnostics}
        assert "spec.quality-pruned-connectivity" in rule_ids
        assert "analyzer diagnostic" in result.summary()
        assert result.stats_dict()["diagnostics"]

    def test_clean_solve_has_no_diagnostics(self, grid_instance,
                                            grid_requirements, library):
        explorer = DataCollectionExplorer(
            grid_instance.template, library, grid_requirements
        )
        result = explorer.solve("cost")
        assert result.feasible
        assert result.diagnostics == []

    def test_built_problem_exposes_the_report(self, grid_instance,
                                              grid_requirements, library):
        explorer = DataCollectionExplorer(
            grid_instance.template, library, grid_requirements
        )
        built = explorer.build("cost")
        assert built.analysis is not None
        assert built.analysis.ok


class TestPhaseTimings:
    def test_analyze_phase_is_recorded_and_disjoint(self, grid_instance,
                                                    grid_requirements,
                                                    library):
        explorer = DataCollectionExplorer(
            grid_instance.template, library, grid_requirements
        )
        result = explorer.solve("cost")
        phases = result.run_stats.timings.seconds
        assert phases.get("analyze", 0.0) > 0.0
        assert phases.get("encode", 0.0) >= 0.0
        # encode excludes analyze: their sum stays within total build time
        assert (phases["analyze"] + phases["encode"]
                <= result.encode_seconds + 1e-6)

    def test_analyze_false_records_no_analyze_phase(self, grid_instance,
                                                    grid_requirements,
                                                    library):
        explorer = DataCollectionExplorer(
            grid_instance.template, library, grid_requirements,
            analyze=False,
        )
        result = explorer.solve("cost")
        assert "analyze" not in result.run_stats.timings.seconds
        assert result.diagnostics == []
