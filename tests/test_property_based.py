"""Cross-cutting property-based tests over the whole pipeline.

These pit independently implemented components against each other on
randomized inputs: the two path encodings, the two MILP solvers, the
analytic energy model vs the simulator, and Algorithm 1's pool generation
invariants on random templates.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    ApproximatePathEncoder,
    default_catalog,
    synthetic_template,
    validate,
)
from repro.core import DataCollectionExplorer
from repro.channel import expected_transmissions, packet_error_rate, snr_for_etx
from repro.encoding import EncodingError
from repro.encoding.approximate import budget_div, generate_candidate_pool
from repro.graph import max_disjoint_subset
from repro.network import RequirementSet, RouteRequirement

SLOW = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@SLOW
@given(
    seed=st.integers(0, 50),
    n_total=st.integers(20, 45),
    k_star=st.integers(2, 8),
)
def test_candidate_pools_always_valid(seed, n_total, k_star):
    """Pool invariants hold on random templates: valid loopless paths
    from source to destination, deduplicated, masks restored."""
    instance = synthetic_template(n_total, max(2, n_total // 6), seed=seed)
    graph = instance.template.graph
    req = RouteRequirement(instance.sensor_ids[0], instance.sink_id,
                           replicas=min(2, k_star), disjoint=True)
    try:
        pool = generate_candidate_pool(graph, req, k_star)
    except EncodingError:
        return  # legitimately impossible on this random template
    assert graph.masked_edges == frozenset()
    seen = set()
    for path in pool:
        assert path.nodes[0] == req.source
        assert path.nodes[-1] == req.dest
        assert len(set(path.nodes)) == len(path.nodes)
        assert path.nodes not in seen
        seen.add(path.nodes)
        for u, v in path.edges:
            assert graph.has_edge(u, v)
    assert len(
        max_disjoint_subset([p.nodes for p in pool])
    ) >= req.replicas


@given(k_star=st.integers(1, 100), replicas=st.integers(1, 10))
def test_budget_div_invariant(k_star, replicas):
    k, n_rep = budget_div(k_star, replicas)
    assert n_rep == replicas
    assert k >= 1
    assert k * n_rep >= k_star
    # The split is tight: one fewer candidate per round would not cover K*.
    assert (k - 1) * n_rep < k_star or k == 1


@SLOW
@given(seed=st.integers(0, 30))
def test_synthesized_designs_always_validate(seed):
    """Whatever random template we synthesize on, the decoded design
    passes the independent checker."""
    instance = synthetic_template(25, 6, seed=seed)
    reqs = RequirementSet()
    for s in instance.sensor_ids:
        reqs.require_route(s, instance.sink_id, replicas=1, disjoint=False)
    try:
        result = DataCollectionExplorer(
            instance.template, default_catalog(), reqs,
            encoder=ApproximatePathEncoder(k_star=4),
        ).solve("cost")
    except EncodingError:
        return
    if not result.feasible:
        return
    report = validate(result.architecture, reqs)
    assert report.ok, report.violations


@given(snr=st.floats(5.0, 35.0), size=st.floats(10.0, 150.0))
def test_etx_per_consistency(snr, size):
    """ETX and PER are two views of the same quantity."""
    per = packet_error_rate(snr, size)
    etx = expected_transmissions(snr, size)
    if etx < 16.0:  # below the cap the relation is exact
        assert etx == pytest.approx(1.0 / (1.0 - per), rel=1e-9)


@given(target=st.floats(1.2, 10.0))
def test_snr_for_etx_is_monotone_inverse(target):
    snr = snr_for_etx(target, 50.0)
    tighter_target = max(target * 0.9, 1.05)
    tighter = snr_for_etx(tighter_target, 50.0)
    assert tighter >= snr - 1e-6
