"""Tests for model assembly into standard form."""

import numpy as np
import pytest

from repro.milp import Model


@pytest.fixture()
def model():
    return Model("asm")


class TestVariables:
    def test_duplicate_names_rejected(self, model):
        model.binary("x")
        with pytest.raises(ValueError, match="duplicate"):
            model.binary("x")

    def test_crossed_bounds_rejected(self, model):
        with pytest.raises(ValueError):
            model.add_var("x", lower=2.0, upper=1.0)

    def test_indices_sequential(self, model):
        vars_ = [model.binary(f"x{i}") for i in range(5)]
        assert [v.index for v in vars_] == list(range(5))

    def test_var_by_name(self, model):
        x = model.binary("x")
        assert model.var_by_name("x") is x
        with pytest.raises(KeyError):
            model.var_by_name("y")

    def test_nan_bounds_rejected(self, model):
        with pytest.raises(ValueError, match="NaN"):
            model.add_var("x", lower=float("nan"))
        with pytest.raises(ValueError, match="NaN"):
            model.add_var("y", upper=float("nan"))


class TestForeignVariables:
    def test_add_rejects_variable_from_another_model(self, model):
        other = Model("other")
        for _ in range(3):
            other.binary(f"pad{_}")
        alien = other.binary("alien")  # index 3; `model` owns none
        with pytest.raises(ValueError, match="different model"):
            model.add(alien + 0.0 >= 1, name="bad")

    def test_add_range_rejects_foreign_expression(self, model):
        other = Model("other")
        other.binary("pad")
        alien = other.binary("alien")
        with pytest.raises(ValueError, match="different model"):
            model.add_range(alien + 0.0, 0.0, 1.0, name="bad")

    def test_objective_rejects_foreign_expression(self, model):
        other = Model("other")
        other.binary("pad")
        alien = other.binary("alien")
        with pytest.raises(ValueError, match="different model"):
            model.minimize(alien + 0.0)
        with pytest.raises(ValueError, match="different model"):
            model.maximize(alien + 0.0)

    def test_same_index_from_another_model_is_accepted(self, model):
        # Index-aliasing across models is undetectable by construction
        # checks; only out-of-range indexes can be rejected here.
        x = model.binary("x")
        other = Model("other")
        other_x = other.binary("ox")
        assert other_x.index == x.index
        model.add(other_x + 0.0 <= 1)


class TestConstraints:
    def test_add_range_rejects_crossed_bounds(self, model):
        x = model.binary("x")
        with pytest.raises(ValueError, match="lower"):
            model.add_range(x, 2.0, 1.0, name="crossed")

    def test_add_requires_constraint(self, model):
        with pytest.raises(TypeError):
            model.add(True)  # e.g. accidental `x <= x` python-level bool

    def test_add_range(self, model):
        x = model.binary("x")
        con = model.add_range(x + 0.0, 0.25, 0.75, name="rng")
        assert con.lower == 0.25 and con.upper == 0.75
        assert con.name == "rng"

    def test_named_constraint(self, model):
        x = model.binary("x")
        con = model.add(x <= 1, name="cap")
        assert con.name == "cap"


class TestObjective:
    def test_maximize_negates(self, model):
        x = model.binary("x")
        model.maximize(2 * x)
        assert model.objective.coeffs[x.index] == -2.0

    def test_minimize_var_directly(self, model):
        x = model.continuous("x", 0, 1)
        model.minimize(x)
        assert model.objective.coeffs[x.index] == 1.0


class TestStandardForm:
    def test_matrix_shape_and_content(self, model):
        x = model.binary("x")
        y = model.continuous("y", -1.0, 2.0)
        model.add(x + 2 * y <= 4)
        model.add(x - y >= -1)
        model.add(x + y == 1)
        model.minimize(x + 3 * y)
        form = model.to_standard_form()
        assert form.a_matrix.shape == (3, 2)
        np.testing.assert_allclose(form.c, [1.0, 3.0])
        np.testing.assert_allclose(form.x_lower, [0.0, -1.0])
        np.testing.assert_allclose(form.x_upper, [1.0, 2.0])
        np.testing.assert_array_equal(form.integrality, [1, 0])
        dense = form.a_matrix.toarray()
        np.testing.assert_allclose(dense[0], [1.0, 2.0])
        assert form.b_upper[0] == 4.0 and form.b_lower[0] == -np.inf
        assert form.b_lower[1] == -1.0 and form.b_upper[1] == np.inf
        assert form.b_lower[2] == form.b_upper[2] == 1.0

    def test_constant_folded_into_bounds(self, model):
        x = model.binary("x")
        model.add(x + 5 <= 7)
        form = model.to_standard_form()
        assert form.b_upper[0] == pytest.approx(2.0)

    def test_empty_model(self, model):
        form = model.to_standard_form()
        assert form.a_matrix.shape == (0, 0)

    def test_zero_coefficients_dropped(self, model):
        x, y = model.binary("x"), model.binary("y")
        model.add(x + 0 * y <= 1)
        form = model.to_standard_form()
        assert form.a_matrix.nnz == 1


class TestStats:
    def test_counts(self, model):
        x = model.binary("x")
        y = model.continuous("y", 0, 1)
        model.add(x + y <= 1)
        stats = model.stats()
        assert stats.num_vars == 2
        assert stats.num_binary == 1
        assert stats.num_constraints == 1
        assert stats.num_nonzeros == 2
        assert "2 vars" in str(stats)
