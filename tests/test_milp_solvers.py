"""Tests for the HiGHS backend and the from-scratch branch and bound.

The two solvers are exercised on the same problems and — via a
hypothesis-driven random-MILP generator — checked against each other:
equal optimal objectives on every feasible instance.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.milp import (
    BranchAndBoundSolver,
    HighsSolver,
    Model,
    SolveStatus,
    lin_sum,
)

SOLVERS = [HighsSolver(), BranchAndBoundSolver()]


def knapsack_model():
    m = Model("knapsack")
    values = [6, 5, 4, 3]
    weights = [4, 3, 2, 1.5]
    xs = [m.binary(f"x{i}") for i in range(4)]
    m.add(lin_sum([w * x for w, x in zip(weights, xs)]) <= 6)
    m.maximize(lin_sum([v * x for v, x in zip(values, xs)]))
    return m, xs


@pytest.mark.parametrize("solver", SOLVERS, ids=lambda s: s.name)
class TestBothSolvers:
    def test_knapsack_optimum(self, solver):
        m, xs = knapsack_model()
        sol = solver.solve(m)
        assert sol.status == SolveStatus.OPTIMAL
        # Best pack: items 1, 2, 3 (weights 3+2+1.5=6.5 > 6) -> check LP:
        # feasible optimum is items 0 and 2 or 1,2,3... verify by brute force.
        best = max(
            (
                sum(v * b for v, b in zip([6, 5, 4, 3], bits))
                for bits in np.ndindex(2, 2, 2, 2)
                if sum(w * b for w, b in zip([4, 3, 2, 1.5], bits)) <= 6
            )
        )
        assert -sol.objective == pytest.approx(best)

    def test_infeasible_detected(self, solver):
        m = Model()
        x = m.binary("x")
        m.add(x >= 1)
        m.add(x <= 0)
        m.minimize(x)
        assert solver.solve(m).status == SolveStatus.INFEASIBLE

    def test_integrality_enforced(self, solver):
        m = Model()
        x = m.integer("x", 0, 10)
        m.add(2 * x >= 3)
        m.minimize(x)
        sol = solver.solve(m)
        assert sol.value(x) == pytest.approx(2.0)

    def test_pure_lp(self, solver):
        m = Model()
        x = m.continuous("x", 0, 10)
        y = m.continuous("y", 0, 10)
        m.add(x + y >= 4)
        m.minimize(2 * x + y)
        sol = solver.solve(m)
        assert sol.objective == pytest.approx(4.0)

    def test_equality_constraints(self, solver):
        m = Model()
        x = m.integer("x", 0, 5)
        y = m.integer("y", 0, 5)
        m.add(x + y == 4)
        m.minimize(3 * x + y)
        sol = solver.solve(m)
        assert sol.value(x) == pytest.approx(0.0)
        assert sol.value(y) == pytest.approx(4.0)

    def test_value_bool(self, solver):
        m = Model()
        x = m.binary("x")
        m.add(x >= 1)
        m.minimize(x)
        sol = solver.solve(m)
        assert sol.value_bool(x) is True


class TestSolutionObject:
    def test_value_without_assignment_raises(self):
        m = Model()
        x = m.binary("x")
        m.add(x >= 1)
        m.add(x <= 0)
        sol = HighsSolver().solve(m)
        with pytest.raises(ValueError):
            sol.value(x)

    def test_evaluates_expressions(self):
        m = Model()
        x = m.binary("x")
        m.add(x >= 1)
        m.minimize(x)
        sol = HighsSolver().solve(m)
        assert sol.value(3 * x + 2) == pytest.approx(5.0)


class TestBranchAndBoundLimits:
    def test_node_limit_reports_timeout(self):
        rng = np.random.default_rng(0)
        m = Model()
        xs = [m.binary(f"x{i}") for i in range(14)]
        weights = rng.uniform(1, 10, 14)
        m.add(lin_sum([w * x for w, x in zip(weights, xs)]) <= 30)
        m.maximize(lin_sum([w * x for w, x in zip(weights * 1.1, xs)]))
        solver = BranchAndBoundSolver(node_limit=1)
        sol = solver.solve(m)
        assert sol.status in (
            SolveStatus.TIMEOUT, SolveStatus.FEASIBLE, SolveStatus.OPTIMAL
        )


@st.composite
def random_milps(draw):
    """Small random MILPs with bounded coefficients."""
    n = draw(st.integers(2, 6))
    m_rows = draw(st.integers(1, 5))
    coeffs = draw(
        st.lists(
            st.lists(st.integers(-4, 4), min_size=n, max_size=n),
            min_size=m_rows, max_size=m_rows,
        )
    )
    rhs = draw(st.lists(st.integers(-6, 12), min_size=m_rows, max_size=m_rows))
    obj = draw(st.lists(st.integers(-5, 5), min_size=n, max_size=n))
    kinds = draw(st.lists(st.booleans(), min_size=n, max_size=n))
    return coeffs, rhs, obj, kinds


@settings(max_examples=40, deadline=None)
@given(random_milps())
def test_bnb_matches_highs(problem):
    coeffs, rhs, obj, kinds = problem

    def build():
        m = Model()
        xs = [
            m.integer(f"x{i}", 0, 4) if is_int else m.continuous(f"x{i}", 0, 4)
            for i, is_int in enumerate(kinds)
        ]
        for row, b in zip(coeffs, rhs):
            m.add(lin_sum([c * x for c, x in zip(row, xs)]) <= b)
        m.minimize(lin_sum([c * x for c, x in zip(obj, xs)]))
        return m

    highs = HighsSolver().solve(build())
    bnb = BranchAndBoundSolver(node_limit=20_000).solve(build())
    assert (highs.status == SolveStatus.INFEASIBLE) == (
        bnb.status == SolveStatus.INFEASIBLE
    )
    if highs.status == SolveStatus.OPTIMAL:
        assert bnb.status == SolveStatus.OPTIMAL
        assert bnb.objective == pytest.approx(highs.objective, abs=1e-5)


class TestObjectiveConstant:
    """Both solvers must report objectives including the constant term."""

    @pytest.mark.parametrize("solver", SOLVERS, ids=lambda s: s.name)
    def test_constant_included(self, solver):
        m = Model()
        x = m.binary("x")
        m.add(x >= 1)
        m.minimize(3 * x + 7.5)
        sol = solver.solve(m)
        assert sol.objective == pytest.approx(10.5)
        assert sol.value(m.objective) == pytest.approx(10.5)


class TestGapNormalization:
    """The documented mip_gap convention: never NaN, never negative."""

    def test_nan_with_feasible_becomes_inf(self):
        from repro.milp.highs import normalized_gap

        gap = normalized_gap(float("nan"), SolveStatus.FEASIBLE)
        assert gap == float("inf")

    def test_nan_with_optimal_becomes_zero(self):
        from repro.milp.highs import normalized_gap

        assert normalized_gap(float("nan"), SolveStatus.OPTIMAL) == 0.0

    def test_missing_report_follows_status(self):
        from repro.milp.highs import normalized_gap

        assert normalized_gap(None, SolveStatus.OPTIMAL) == 0.0
        assert normalized_gap(None, SolveStatus.FEASIBLE) == float("inf")

    def test_finite_gap_passes_through(self):
        from repro.milp.highs import normalized_gap

        assert normalized_gap(0.015, SolveStatus.FEASIBLE) == 0.015
        assert normalized_gap(0.0, SolveStatus.OPTIMAL) == 0.0

    def test_tiny_negative_rounding_clamps_to_zero(self):
        from repro.milp.highs import normalized_gap

        assert normalized_gap(-1e-12, SolveStatus.OPTIMAL) == 0.0

    def test_solved_gap_is_finite_and_nonnegative(self):
        m, _ = knapsack_model()
        sol = HighsSolver().solve(m)
        assert np.isfinite(sol.mip_gap)
        assert sol.mip_gap >= 0.0

    def test_node_count_normalization(self):
        from repro.milp.highs import normalized_node_count

        assert normalized_node_count(None) == 0
        assert normalized_node_count(float("nan")) == 0
        assert normalized_node_count(17.0) == 17
        assert normalized_node_count(-3) == 0


class TestWithTimeLimit:
    def test_highs_copy_keeps_original(self):
        solver = HighsSolver(time_limit=300.0, mip_rel_gap=0.02)
        clone = solver.with_time_limit(5.0)
        assert clone is not solver
        assert clone.time_limit == 5.0
        assert clone.mip_rel_gap == 0.02
        assert solver.time_limit == 300.0

    def test_branch_and_bound_copy_keeps_original(self):
        solver = BranchAndBoundSolver(time_limit=60.0, node_limit=100)
        clone = solver.with_time_limit(2.0)
        assert clone is not solver
        assert clone.time_limit == 2.0
        assert clone.node_limit == 100
        assert solver.time_limit == 60.0
