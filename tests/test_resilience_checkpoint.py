"""Tests for JSONL checkpoint persistence, salvage and validation."""

import json

import pytest

from repro.milp.solution import SolveStatus
from repro.resilience import Checkpoint, CheckpointError
from repro.resilience.checkpoint import (
    SCHEMA_VERSION,
    RestoredResult,
    restored_result,
    result_record,
)

META = {"ladder": [1, 3, 5], "objective": "cost"}


def make(path):
    return Checkpoint(path / "run.jsonl", "kstar", META)


class TestRoundTrip:
    def test_missing_file_loads_empty(self, tmp_path):
        assert make(tmp_path).load() == []

    def test_append_then_load(self, tmp_path):
        ckpt = make(tmp_path)
        ckpt.append({"k_star": 1, "status": "optimal", "objective": 10.0})
        ckpt.append({"k_star": 3, "status": "optimal", "objective": 8.0})
        loaded = make(tmp_path).load()
        assert [r["k_star"] for r in loaded] == [1, 3]
        assert loaded[1]["objective"] == 8.0

    def test_header_written_first(self, tmp_path):
        ckpt = make(tmp_path)
        ckpt.append({"k_star": 1, "status": "optimal"})
        first = json.loads(
            (tmp_path / "run.jsonl").read_text().splitlines()[0]
        )
        assert first == {"schema": SCHEMA_VERSION, "kind": "kstar",
                         "meta": META}

    def test_no_tmp_file_left_behind(self, tmp_path):
        ckpt = make(tmp_path)
        ckpt.append({"k_star": 1, "status": "optimal"})
        assert not (tmp_path / "run.jsonl.tmp").exists()


class TestSalvageAndCorruption:
    def test_truncated_final_line_dropped(self, tmp_path):
        ckpt = make(tmp_path)
        ckpt.append({"k_star": 1, "status": "optimal", "objective": 10.0})
        ckpt.append({"k_star": 3, "status": "optimal", "objective": 8.0})
        path = tmp_path / "run.jsonl"
        text = path.read_text()
        path.write_text(text[: len(text) - 12])  # kill signature
        loaded = make(tmp_path).load()
        assert [r["k_star"] for r in loaded] == [1]

    def test_interior_corruption_raises(self, tmp_path):
        ckpt = make(tmp_path)
        ckpt.append({"k_star": 1, "status": "optimal"})
        ckpt.append({"k_star": 3, "status": "optimal"})
        path = tmp_path / "run.jsonl"
        lines = path.read_text().splitlines()
        lines[1] = lines[1][:5] + "#garbage"
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(CheckpointError, match="line 2"):
            make(tmp_path).load()

    def test_unreadable_header_raises(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text("not json\n" + json.dumps({"k_star": 1}) + "\n")
        with pytest.raises(CheckpointError):
            make(tmp_path).load()


class TestIdentityChecks:
    def test_kind_mismatch(self, tmp_path):
        make(tmp_path).append({"k_star": 1, "status": "optimal"})
        other = Checkpoint(tmp_path / "run.jsonl", "pareto", META)
        with pytest.raises(CheckpointError, match="kind"):
            other.load()

    def test_meta_mismatch(self, tmp_path):
        make(tmp_path).append({"k_star": 1, "status": "optimal"})
        other = Checkpoint(
            tmp_path / "run.jsonl", "kstar",
            {"ladder": [1, 2], "objective": "cost"},
        )
        with pytest.raises(CheckpointError, match="metadata"):
            other.load()

    def test_schema_mismatch(self, tmp_path):
        path = tmp_path / "run.jsonl"
        header = {"schema": SCHEMA_VERSION + 1, "kind": "kstar", "meta": META}
        path.write_text(json.dumps(header) + "\n")
        with pytest.raises(CheckpointError, match="schema"):
            make(tmp_path).load()


class TestRestoredResult:
    def test_roundtrip_via_record(self):
        restored = RestoredResult(
            status=SolveStatus.OPTIMAL, objective_value=42.0,
            total_seconds=1.5, objective_terms={"cost": 42.0},
        )
        record = result_record(restored)
        back = restored_result(record)
        assert back.status is SolveStatus.OPTIMAL
        assert back.objective_value == 42.0
        assert back.total_seconds == 1.5
        assert back.objective_terms == {"cost": 42.0}
        assert back.restored and back.feasible

    def test_infeasible_record_has_no_objective(self):
        restored = RestoredResult(status=SolveStatus.INFEASIBLE)
        record = result_record(restored)
        assert "objective" not in record
        back = restored_result(record)
        assert not back.feasible

    def test_bad_record_raises_typed_error(self):
        with pytest.raises(CheckpointError):
            restored_result({"objective": 3.0})  # no status
        with pytest.raises(CheckpointError):
            restored_result({"status": "no-such-status"})

    def test_stats_dict_flags_restored(self):
        restored = RestoredResult(
            status=SolveStatus.FEASIBLE, objective_value=7.0
        )
        payload = restored.stats_dict()
        assert payload["restored"] is True
        assert payload["objective"] == 7.0


class TestProblemFingerprint:
    def test_meta_problem_mismatch_has_dedicated_message(self, tmp_path):
        from repro.resilience import problem_fingerprint

        meta_a = dict(META, problem="aaaa1111")
        Checkpoint(tmp_path / "run.jsonl", "kstar", meta_a).append(
            {"k_star": 1, "status": "optimal"}
        )
        other = Checkpoint(
            tmp_path / "run.jsonl", "kstar", dict(META, problem="bbbb2222")
        )
        with pytest.raises(CheckpointError, match="different problem"):
            other.load()

    def test_fingerprint_deterministic_and_sensitive(self):
        from dataclasses import dataclass

        from repro.resilience import problem_fingerprint

        @dataclass(frozen=True)
        class Node:
            id: int
            role: str

        a = problem_fingerprint([Node(0, "sink"), Node(1, "sensor")],
                                {"snr": 20.0})
        b = problem_fingerprint([Node(0, "sink"), Node(1, "sensor")],
                                {"snr": 20.0})
        c = problem_fingerprint([Node(0, "sink"), Node(1, "relay")],
                                {"snr": 20.0})
        d = problem_fingerprint([Node(0, "sink"), Node(1, "sensor")],
                                {"snr": 25.0})
        assert a == b
        assert len({a, c, d}) == 3

    def test_fingerprint_handles_callables_cycles_and_arrays(self):
        import numpy as np

        from repro.resilience import problem_fingerprint

        def rule(tx, rx):
            return True

        loop = {}
        loop["self"] = loop
        a = problem_fingerprint(rule, loop, np.array([1.0, 2.0]))
        b = problem_fingerprint(rule, loop, np.array([1.0, 2.0]))
        c = problem_fingerprint(rule, loop, np.array([1.0, 3.0]))
        assert a == b != c
