"""Tests for the exhaustive path encoding (constraints (1a)-(1e))."""

import pytest

from repro.constraints.mapping import build_mapping
from repro.encoding import ApproximatePathEncoder, FullPathEncoder
from repro.graph import are_link_disjoint
from repro.library import default_catalog
from repro.milp import HighsSolver, Model
from repro.network import RouteRequirement, small_grid_template


@pytest.fixture()
def grid():
    return small_grid_template(nx=4, ny=3)


def encode_and_solve(grid, routes, objective="cost"):
    model = Model()
    mapping = build_mapping(model, grid.template, default_catalog())
    encoding = FullPathEncoder().encode(
        model, grid.template, routes, mapping.node_used
    )
    model.minimize(mapping.cost_expr())
    solution = HighsSolver().solve(model)
    return model, mapping, encoding, solution


class TestFullEncoder:
    def test_every_template_edge_has_vars(self, grid):
        routes = [RouteRequirement(grid.sensor_ids[0], grid.sink_id)]
        model = Model()
        mapping = build_mapping(model, grid.template, default_catalog())
        encoding = FullPathEncoder().encode(
            model, grid.template, routes, mapping.node_used
        )
        assert len(encoding.edge_active) == grid.template.edge_count
        assert encoding.path_var_count == grid.template.edge_count

    def test_decodes_valid_path(self, grid):
        routes = [RouteRequirement(grid.sensor_ids[0], grid.sink_id)]
        _, _, encoding, solution = encode_and_solve(grid, routes)
        assert solution.status.has_solution
        (route,) = encoding.decode(solution)
        assert route.nodes[0] == grid.sensor_ids[0]
        assert route.nodes[-1] == grid.sink_id
        assert len(set(route.nodes)) == len(route.nodes)

    def test_disjoint_replicas(self, grid):
        routes = [RouteRequirement(grid.sensor_ids[0], grid.sink_id,
                                   replicas=2, disjoint=True)]
        _, _, encoding, solution = encode_and_solve(grid, routes)
        a, b = encoding.decode(solution)
        assert are_link_disjoint(a.nodes, b.nodes)

    def test_exact_hops(self, grid):
        routes = [RouteRequirement(grid.sensor_ids[0], grid.sink_id,
                                   exact_hops=2)]
        _, _, encoding, solution = encode_and_solve(grid, routes)
        (route,) = encoding.decode(solution)
        assert route.hops == 2

    def test_max_hops(self, grid):
        routes = [RouteRequirement(grid.sensor_ids[0], grid.sink_id,
                                   max_hops=1)]
        _, _, encoding, solution = encode_and_solve(grid, routes)
        (route,) = encoding.decode(solution)
        assert route.hops == 1

    def test_min_hops(self, grid):
        routes = [RouteRequirement(grid.sensor_ids[0], grid.sink_id,
                                   min_hops=3, disjoint=False)]
        _, _, encoding, solution = encode_and_solve(grid, routes)
        (route,) = encoding.decode(solution)
        assert route.hops >= 3

    def test_infeasible_when_no_path_possible(self, grid):
        # 0 hops demanded between distinct nodes is impossible.
        routes = [RouteRequirement(grid.sensor_ids[0], grid.sink_id,
                                   exact_hops=0)]
        _, _, _, solution = encode_and_solve(grid, routes)
        assert not solution.status.has_solution


class TestAgreementWithApproximate:
    """With a generous K* both encodings must reach the same optimum."""

    @pytest.mark.parametrize("replicas,disjoint", [(1, False), (2, True)])
    def test_same_optimal_cost(self, grid, replicas, disjoint):
        routes = [
            RouteRequirement(s, grid.sink_id, replicas=replicas,
                             disjoint=disjoint)
            for s in grid.sensor_ids[:2]
        ]

        def solve(encoder):
            model = Model()
            mapping = build_mapping(model, grid.template, default_catalog())
            encoder.encode(model, grid.template, routes, mapping.node_used)
            model.minimize(mapping.cost_expr())
            return HighsSolver().solve(model)

        full = solve(FullPathEncoder())
        approx = solve(ApproximatePathEncoder(k_star=40))
        assert full.status.has_solution and approx.status.has_solution
        assert approx.objective == pytest.approx(full.objective, abs=1e-6)

    def test_approx_never_better_than_full(self, grid):
        """The approximation is a restriction: its optimum cannot beat
        the exhaustive one."""
        routes = [
            RouteRequirement(s, grid.sink_id, replicas=2, disjoint=True)
            for s in grid.sensor_ids
        ]

        def solve(encoder):
            model = Model()
            mapping = build_mapping(model, grid.template, default_catalog())
            encoder.encode(model, grid.template, routes, mapping.node_used)
            model.minimize(mapping.cost_expr())
            return HighsSolver().solve(model)

        full = solve(FullPathEncoder())
        approx = solve(ApproximatePathEncoder(k_star=2))
        assert approx.objective >= full.objective - 1e-6
