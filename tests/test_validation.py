"""Tests for the independent solution checker."""

import pytest

from repro.core import DataCollectionExplorer
from repro.network import Architecture, Route, small_grid_template
from repro.network.requirements import (
    LifetimeRequirement,
    LinkQualityRequirement,
    RequirementSet,
)
from repro.validation import lifetime_years, link_rss_dbm, validate


@pytest.fixture()
def solved(grid_instance, library, grid_requirements):
    result = DataCollectionExplorer(
        grid_instance.template, library, grid_requirements
    ).solve("cost")
    assert result.feasible
    return result.architecture


class TestCleanDesignValidates:
    def test_no_violations(self, solved, grid_requirements):
        report = validate(solved, grid_requirements)
        assert report.ok
        assert report.violations == []

    def test_metrics_populated(self, solved, grid_requirements):
        report = validate(solved, grid_requirements)
        assert report.average_lifetime_years > 5.0
        assert report.min_lifetime_years >= 5.0
        assert report.total_charge_ma_ms > 0


class TestViolationDetection:
    def test_missing_fixed_node(self, solved, grid_requirements):
        del solved.sizing[solved.template.sensors[0].id]
        report = validate(solved, grid_requirements)
        assert any("fixed node" in v for v in report.violations)

    def test_missing_replica(self, solved, grid_requirements):
        removed = solved.routes.pop()
        report = validate(solved, grid_requirements)
        assert any(
            f"{removed.source}->{removed.dest}" in v
            for v in report.violations
        )

    def test_non_disjoint_replicas_detected(
        self, solved, grid_requirements
    ):
        first = next(
            r for r in solved.routes
            if len(solved.routes_for(r.source, r.dest)) == 2
        )
        # Overwrite the second replica with a copy of the first.
        for i, route in enumerate(solved.routes):
            if (route.source, route.dest) == (first.source, first.dest) \
                    and route.replica != first.replica:
                solved.routes[i] = Route(
                    first.source, first.dest, route.replica, first.nodes
                )
        report = validate(solved, grid_requirements)
        assert any("share" in v for v in report.violations)

    def test_inactive_link_in_route_detected(self, solved, grid_requirements):
        route = solved.routes[0]
        solved.active_edges.discard(route.edges[0])
        report = validate(solved, grid_requirements)
        assert any("inactive link" in v for v in report.violations)

    def test_weak_link_detected(self, solved, grid_requirements):
        # Downgrade a node with an antenna part to the weakest device, or
        # tighten the bound until some link fails.
        strict = RequirementSet(
            routes=grid_requirements.routes,
            link_quality=LinkQualityRequirement(min_snr_db=80.0),
            lifetime=None,
        )
        report = validate(solved, strict)
        assert any("SNR" in v for v in report.violations)

    def test_short_lifetime_detected(self, solved, grid_requirements):
        strict = RequirementSet(
            routes=grid_requirements.routes,
            link_quality=None,
            lifetime=LifetimeRequirement(years=100.0),
        )
        report = validate(solved, strict)
        assert any("lifetime" in v for v in report.violations)

    def test_incompatible_device_detected(self, solved, grid_requirements):
        sensor_id = solved.template.sensors[0].id
        solved.sizing[sensor_id] = "relay-std"
        report = validate(solved, grid_requirements)
        assert any("incompatible" in v for v in report.violations)

    def test_hop_bound_violations_detected(self, solved, grid_requirements):
        grid_requirements.routes[0] = type(grid_requirements.routes[0])(
            source=grid_requirements.routes[0].source,
            dest=grid_requirements.routes[0].dest,
            replicas=2, disjoint=True, max_hops=0,
        )
        report = validate(solved, grid_requirements)
        assert any("hops" in v for v in report.violations)


class TestHelpers:
    def test_link_rss_uses_datasheet(self, solved):
        u, v = next(iter(solved.active_edges))
        tx = solved.device_of(u)
        rx = solved.device_of(v)
        expected = (
            tx.tx_power_dbm + tx.antenna_gain_dbi + rx.antenna_gain_dbi
            - solved.template.path_loss(u, v)
        )
        assert link_rss_dbm(solved, u, v) == pytest.approx(expected)

    def test_lifetime_years_positive(self, solved, grid_requirements):
        for node_id in solved.used_nodes:
            assert lifetime_years(solved, grid_requirements, node_id) > 0

    def test_reachability_needs_channel(
        self, solved, grid_requirements, loc_requirement
    ):
        grid_requirements.reachability = loc_requirement
        with pytest.raises(ValueError, match="channel"):
            validate(solved, grid_requirements)
