"""Failure-aware synthesis end to end: the worst-pattern robust re-solve.

The acceptance scenario: on a grid template whose floor plan carries a
wall, plain ``N_rep = 2`` synthesis routes both disjoint replicas
straight through the wall — a correlated wall outage kills the pair even
though every single-link failure is survivable.  The robust loop must
detect that, add the pattern's survivability rows and converge to a
design that reroutes around the wall, within the round cap.
"""

import pytest

import repro
from repro.core.options import SolveOptions
from repro.geometry.floorplan import FloorPlan, Wall
from repro.geometry.primitives import Point, Rectangle, Segment
from repro.network import (
    LinkQualityRequirement,
    RequirementSet,
    RouteRequirement,
)


@pytest.fixture(scope="module")
def walled():
    """The 4x3 grid with a brick wall between columns x=16 and x=24."""
    instance = repro.small_grid_template(nx=4, ny=3, spacing=8.0)
    plan = FloorPlan(
        bounds=Rectangle(0.0, 0.0, 40.0, 32.0),
        walls=[Wall(Segment(Point(20.0, 4.0), Point(20.0, 20.0)),
                    "brick", 10.0)],
        name="walled-grid",
    )
    reqs = RequirementSet(
        routes=[RouteRequirement(source=0, dest=7, replicas=2,
                                 disjoint=True)],
        link_quality=LinkQualityRequirement(min_snr_db=15.0),
    )
    return instance, plan, reqs


@pytest.fixture(scope="module")
def plain_result(walled):
    instance, _, reqs = walled
    return repro.explore(
        instance.template, repro.default_catalog(), reqs,
        objective="cost",
    )


@pytest.fixture(scope="module")
def robust_result(walled):
    instance, plan, reqs = walled
    return repro.explore(
        instance.template, repro.default_catalog(), reqs,
        objective="cost", plan=plan, k_star=60,
        options=SolveOptions(failures="walls,rounds:6"),
    )


class TestAcceptanceScenario:
    def test_plain_synthesis_fails_the_wall_outage(
        self, walled, plain_result
    ):
        instance, plan, reqs = walled
        assert plain_result.feasible
        patterns = repro.generate_patterns("walls", instance.template,
                                           plan)
        assert len(patterns) == 1
        report = repro.verify_patterns(
            plain_result.architecture, reqs, patterns
        )
        assert not report.survived_all
        assert report.score == 0.0

    def test_robust_loop_converges_to_full_coverage(
        self, walled, robust_result
    ):
        instance, plan, reqs = walled
        assert robust_result.feasible
        assert robust_result.survivability_score == 1.0
        diag = next(d for d in robust_result.diagnostics
                    if d.rule_id == "failures.survivability")
        payload = diag.data["report"]
        assert payload["score"] == 1.0
        assert 1 <= payload["rounds"] <= 6
        # Independent re-verification of the decoded design.
        patterns = repro.generate_patterns("walls", instance.template,
                                           plan)
        report = repro.verify_patterns(
            robust_result.architecture, reqs, patterns
        )
        assert report.survived_all

    def test_robust_design_still_validates(self, walled, robust_result):
        _, _, reqs = walled
        assert repro.validate(robust_result.architecture, reqs).ok

    def test_survivability_costs_no_less(
        self, plain_result, robust_result
    ):
        # The tightened model optimizes the same objective over a
        # subset of the original feasible set: never cheaper, exactly
        # priced.
        assert (robust_result.objective_terms["cost"]
                >= plain_result.objective_terms["cost"] - 1e-9)

    def test_score_rides_the_stats_payload(self, robust_result):
        stats = robust_result.stats_dict()
        assert stats["survivability_score"] == 1.0

    def test_uncoverable_at_small_pool_is_reported_not_infeasible(
        self, walled
    ):
        instance, plan, reqs = walled
        # k_star=10: no candidate in the Yen pool avoids the wall, so
        # the pattern is structurally uncoverable — the loop must stop
        # at a fixpoint with a WARNING, not go infeasible.
        result = repro.explore(
            instance.template, repro.default_catalog(), reqs,
            objective="cost", plan=plan, k_star=10,
            options=SolveOptions(failures="walls,rounds:3"),
        )
        assert result.feasible
        assert result.survivability_score == 0.0
        warning = next(d for d in result.diagnostics
                       if d.rule_id == "failures.uncoverable")
        assert "k_star" in (warning.hint or "")
        diag = next(d for d in result.diagnostics
                    if d.rule_id == "failures.survivability")
        assert diag.data["report"]["uncoverable"]


class TestCheckpointedRobustRun:
    def test_rounds_accumulate_stages_and_resume_replays(
        self, walled, tmp_path
    ):
        instance, plan, reqs = walled
        ckpt = tmp_path / "robust.ckpt"
        options = SolveOptions(failures="walls,rounds:6",
                               checkpoint=str(ckpt))
        result = repro.explore(
            instance.template, repro.default_catalog(), reqs,
            objective="cost", plan=plan, k_star=60, options=options,
        )
        assert result.survivability_score == 1.0
        import json
        lines = [json.loads(line)
                 for line in ckpt.read_text().splitlines()
                 if line.strip()]
        records = lines[1:]  # after the identity header
        stages = {record["stage"] for record in records}
        assert stages == set(range(1, len(stages) + 1))
        assert len(stages) >= 2  # the loop actually iterated
        # A resumed run replays every round's verdicts (same problem,
        # same architecture trajectory) instead of re-verifying.
        resumed = repro.explore(
            instance.template, repro.default_catalog(), reqs,
            objective="cost", plan=plan, k_star=60,
            options=SolveOptions(failures="walls,rounds:6",
                                 checkpoint=str(ckpt), resume=True),
        )
        assert resumed.survivability_score == 1.0
        diag = next(d for d in resumed.diagnostics
                    if d.rule_id == "failures.survivability")
        assert diag.data["report"]["restored"] >= 1


class TestWiring:
    def test_options_validate_the_spec_at_construction(self):
        with pytest.raises(ValueError):
            SolveOptions(failures="bogus-term:1")

    def test_options_round_trip(self):
        options = SolveOptions(failures="k-link:1,rounds:2")
        clone = SolveOptions.from_dict(options.to_dict())
        assert clone.failures == "k-link:1,rounds:2"

    def test_explore_checkpoint_needs_failures(self, walled, tmp_path):
        instance, _, reqs = walled
        with pytest.raises(ValueError, match="failure"):
            repro.explore(
                instance.template, repro.default_catalog(), reqs,
                options=SolveOptions(
                    checkpoint=str(tmp_path / "x.ckpt")
                ),
            )

    def test_explorer_solve_delegates(self, walled):
        instance, _, reqs = walled
        explorer = repro.build_explorer(
            instance.template, repro.default_catalog(), reqs,
            failures="k-link:1",
        )
        result = explorer.solve("cost")
        # Disjoint replicas survive every single-link pattern: one
        # round, perfect score.
        assert result.survivability_score == 1.0

    def test_robust_solve_needs_routes(self, walled):
        instance, _, _ = walled
        explorer = repro.build_explorer(
            instance.template, repro.default_catalog(),
            RequirementSet(), failures="k-link:1",
        )
        with pytest.raises(ValueError, match="route requirements"):
            explorer.solve("cost")

    def test_job_api_carries_the_survivability_score(self):
        from repro.core.api import JobRequest, JobResult
        request = JobRequest(
            kind="synthesize",
            problem={"sensors": 3, "relays": 9, "k_star": 10},
            options=SolveOptions(failures="k-link:1"),
        )
        assert request.resumable
        clone = JobRequest.from_dict(request.to_dict())
        assert clone.options.failures == "k-link:1"
        result = JobResult.success("synthesize", request.run())
        assert result.result["survivability_score"] == 1.0

    def test_anchor_problems_reject_failures(self):
        instance = repro.localization_template()
        from repro.geometry.primitives import Point
        from repro.network import ReachabilityRequirement
        with pytest.raises(ValueError, match="routes to protect"):
            repro.build_explorer(
                instance.template, repro.localization_catalog(),
                ReachabilityRequirement(
                    test_points=(Point(1.0, 1.0),), min_anchors=3,
                ),
                failures="k-link:1",
            )


class TestParetoRobust:
    def test_every_front_point_is_failure_aware(self, walled):
        instance, plan, _ = walled
        from repro.network import LifetimeRequirement
        reqs = RequirementSet(
            routes=[RouteRequirement(source=0, dest=7, replicas=2,
                                     disjoint=True)],
            link_quality=LinkQualityRequirement(min_snr_db=15.0),
            # The lifetime requirement puts the energy model in the
            # encoding, so the cost/energy front is well defined.
            lifetime=LifetimeRequirement(years=1.0),
        )
        explorer = repro.build_explorer(
            instance.template, repro.default_catalog(), reqs,
            k_star=60, failures="walls,rounds:4", plan=plan,
        )
        front = repro.explore_pareto(
            explorer, "cost", "energy", points=2
        )
        assert front.points
        for point in front.points:
            assert point.result.survivability_score == 1.0
