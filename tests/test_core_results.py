"""Tests for the synthesis-result container."""

import pytest

from repro.core.results import SynthesisResult
from repro.library import default_catalog
from repro.milp.model import ModelStats
from repro.milp.solution import Solution, SolveStatus
from repro.network import Architecture, small_grid_template

STATS = ModelStats(num_vars=10, num_binary=5, num_constraints=20,
                   num_nonzeros=40)


def make_result(status=SolveStatus.OPTIMAL, with_arch=True):
    instance = small_grid_template()
    arch = None
    if with_arch:
        arch = Architecture(template=instance.template,
                            library=default_catalog())
        arch.sizing = {0: "sensor-std", 7: "sink-std"}
    return SynthesisResult(
        status=status,
        architecture=arch,
        solution=Solution(status=status, objective=80.0),
        model_stats=STATS,
        encode_seconds=0.5,
        solve_seconds=1.5,
        encoder_name="approximate",
        metrics={"avg_lifetime_y": 9.876},
    )


class TestSynthesisResult:
    def test_feasible_flags(self):
        assert make_result().feasible
        assert not make_result(SolveStatus.INFEASIBLE, with_arch=False).feasible

    def test_objective_and_times(self):
        result = make_result()
        assert result.objective_value == 80.0
        assert result.total_seconds == pytest.approx(2.0)

    def test_summary_feasible(self):
        text = make_result().summary()
        assert "2 nodes" in text
        assert "$80" in text
        assert "avg_lifetime_y=9.88" in text
        assert "10 vars" in text

    def test_summary_infeasible(self):
        text = make_result(SolveStatus.INFEASIBLE, with_arch=False).summary()
        assert "infeasible" in text
        assert "2.0s" in text

    def test_summary_timeout(self):
        text = make_result(SolveStatus.TIMEOUT, with_arch=False).summary()
        assert "timeout" in text
