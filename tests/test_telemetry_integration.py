"""End-to-end telemetry: one tree per sweep, CLI flags, failure isolation.

These tests exercise the acceptance criterion of the telemetry subsystem:
a *parallel* Pareto sweep traced to JSONL must reconstruct into a single
span tree covering every solve attempt and cache phase, with incumbent
trajectory events from the branch-and-bound solver riding along.
"""

import json
import os

from repro.analysis.diagnostics import Severity
from repro.core import DataCollectionExplorer, SolveOptions, explore_pareto
from repro.encoding import ApproximatePathEncoder
from repro.milp import BranchAndBoundSolver, SolveStatus
from repro.network import LifetimeRequirement, RequirementSet
from repro.resilience.watchdog import ResilientSolver
from repro.runtime import BatchRunner, EncodeCache
from repro.runtime.batch import Trial
from repro.telemetry.schema import check_tree, validate_file
from repro.telemetry.sinks import CollectorSink, JsonlSink
from repro.telemetry.trace import configure, shutdown, span


def _bnb_explorer(grid_instance, library):
    """A small single-route problem the pure-python B&B solves fast."""
    reqs = RequirementSet()
    reqs.require_route(grid_instance.sensor_ids[0], grid_instance.sink_id)
    # The lifetime requirement pulls the energy model in, so both sweep
    # objectives are reported on every point.
    reqs.lifetime = LifetimeRequirement(years=5.0)
    return DataCollectionExplorer(
        grid_instance.template, library, reqs,
        encoder=ApproximatePathEncoder(k_star=3),
        solver=ResilientSolver(
            BranchAndBoundSolver(node_limit=50_000), fallbacks=()
        ),
        cache=EncodeCache(),
    )


class TestParallelSweepTrace:
    """The PR's acceptance test: parallel sweep -> one coherent tree."""

    def test_parallel_pareto_trace_is_one_valid_tree(
        self, tmp_path, grid_instance, library
    ):
        path = tmp_path / "trace.jsonl"
        configure([JsonlSink(path)])
        try:
            front = explore_pareto(
                _bnb_explorer(grid_instance, library),
                "cost", "energy", points=4,
                options=SolveOptions(parallel=4),
            )
        finally:
            shutdown()
        assert len(front.points) >= 2

        records, errors = validate_file(path)
        assert errors == []

        # Everything — extremes, thread-pool points, nested solves,
        # cache computes — shares one trace rooted at pareto.sweep.
        assert len({r["trace"] for r in records}) == 1
        spans = [r for r in records if r["type"] == "span"]
        roots = [s for s in spans if s["parent"] is None]
        assert [s["name"] for s in roots] == ["pareto.sweep"]

        names = {s["name"] for s in spans}
        assert {
            "pareto.sweep", "pareto.extreme", "pareto.point",
            "explorer.solve", "explorer.build", "solve.attempt",
            "solver.solve", "cache.compute",
        } <= names

        # Each of the four budget points got its own span under the sweep.
        points = [s for s in spans if s["name"] == "pareto.point"]
        assert len(points) == 4
        root_id = roots[0]["span"]
        assert all(p["parent"] == root_id for p in points)

        # At least one B&B solve produced an incumbent trajectory, and
        # every terminal summary attaches to a real solver span.
        events = [r for r in records if r["type"] == "event"]
        event_names = {e["name"] for e in events}
        assert "solve.incumbent" in event_names
        assert "solve.done" in event_names
        solver_span_ids = {
            s["span"] for s in spans if s["name"] == "solver.solve"
        }
        assert all(e["span"] in solver_span_ids for e in events)

    def test_process_workers_fold_into_the_parent_tree(self):
        """Spans opened inside *process* pool workers are buffered, shipped
        back with the result and re-emitted under the submitting span."""
        sink = CollectorSink()
        configure([sink])
        runner = BatchRunner(workers=2, mode="process", retries=0)
        with span("batch.root") as root:
            outcomes = runner.run(
                [Trial(_traced_square, (i,), label=f"t{i}") for i in range(3)]
            )
        assert [o.unwrap() for o in outcomes] == [0, 1, 4]

        workers = [
            r for r in sink.records
            if r["type"] == "span" and r["name"] == "worker.square"
        ]
        assert len(workers) == 3
        assert all(w["parent"] == root.span_id for w in workers)
        assert all(w["trace"] == root.trace_id for w in workers)
        assert all(w["pid"] != os.getpid() for w in workers)
        assert check_tree(sink.records) == []


def _traced_square(i):
    """Module-level so it pickles into process-pool workers."""
    with span("worker.square", i=i):
        return i * i


class TestSinkFailureDiagnostics:
    def test_raising_sink_degrades_to_a_result_warning(
        self, grid_instance, library
    ):
        class Exploding:
            def emit(self, record):
                raise OSError("disk full")

        configure([Exploding()])
        reqs = RequirementSet()
        reqs.require_route(
            grid_instance.sensor_ids[0], grid_instance.sink_id
        )
        explorer = DataCollectionExplorer(
            grid_instance.template, library, reqs,
            encoder=ApproximatePathEncoder(k_star=3),
        )
        result = explorer.solve("cost")
        # The solve itself is untouched...
        assert result.status == SolveStatus.OPTIMAL
        # ...and the dropped events surface as a warning diagnostic.
        drops = [
            d for d in result.diagnostics
            if d.rule_id == "telemetry.dropped-events"
        ]
        assert drops, [d.rule_id for d in result.diagnostics]
        assert all(d.severity is Severity.WARNING for d in drops)
        assert "Exploding" in drops[0].message


class TestCliTelemetryFlags:
    def test_kstar_trace_metrics_and_stats(self, tmp_path, capsys):
        from repro.cli import main

        trace = tmp_path / "trace.jsonl"
        metrics = tmp_path / "metrics.prom"
        stats = tmp_path / "stats.json"
        rc = main([
            "kstar", "--nodes", "10", "--devices", "5",
            "--ladder", "1", "2",
            "--trace", str(trace), "--metrics", str(metrics),
            "--stats-json", str(stats),
        ])
        assert rc == 0

        records, errors = validate_file(trace)
        assert errors == []
        names = {r["name"] for r in records if r["type"] == "span"}
        assert {"kstar.search", "kstar.rung", "explorer.build"} <= names

        payload = json.loads(stats.read_text())
        assert payload["schema_version"] == 2

        text = metrics.read_text()
        assert "# TYPE" in text
        assert "cache_lookups" in text

        out = capsys.readouterr().out
        assert f"wrote {trace}" in out
        assert f"wrote {metrics}" in out
