"""Tests for the in-process job service (:mod:`repro.server.service`)."""

import contextlib
import threading
import time

import pytest

from repro.core.api import JobRequest
from repro.resilience.checkpoint import Checkpoint
from repro.server.jobs import JobState
from repro.server.service import SynthesisService
from repro.telemetry.schema import check_tree, validate_record

SMALL_KSTAR = {"nodes": 12, "devices": 5, "ladder": [1, 2]}


@contextlib.contextmanager
def service(**kwargs):
    svc = SynthesisService(**kwargs)
    try:
        yield svc
    finally:
        svc.shutdown(timeout=30.0)


class TestLifecycle:
    def test_submit_wait_result(self):
        with service(workers=1) as svc:
            job = svc.submit(
                JobRequest(kind="kstar", problem=dict(SMALL_KSTAR))
            )
            assert svc.job(job.id) is job
            done = svc.wait(job.id, timeout=60.0)
            assert done.state is JobState.DONE
            assert done.result is not None and done.result.ok
            assert done.result.result["kind"] == "kstar"
            assert done.result.seconds > 0
            view = done.to_dict()
            assert view["state"] == "done"
            assert view["result"]["ok"] is True

    def test_submit_accepts_wire_dict(self):
        with service(workers=1) as svc:
            job = svc.submit(
                {"kind": "kstar", "problem": dict(SMALL_KSTAR)}
            )
            assert svc.wait(job.id, timeout=60.0).result.ok

    def test_duplicate_job_id_rejected(self):
        with service(workers=1) as svc:
            svc.submit(JobRequest(kind="kstar"), job_id="twin")
            with pytest.raises(ValueError, match="already exists"):
                svc.submit(JobRequest(kind="kstar"), job_id="twin")
            svc.wait("twin", timeout=60.0)

    def test_wait_unknown_job(self):
        with service(workers=1) as svc:
            with pytest.raises(KeyError):
                svc.wait("nope", timeout=0.1)

    def test_failed_job_carries_error(self):
        with service(workers=1) as svc:
            job = svc.submit(
                JobRequest(
                    kind="synthesize",
                    problem={
                        "sensors": 4, "relays": 8,
                        "spec": "this is not a spec(",
                    },
                )
            )
            done = svc.wait(job.id, timeout=60.0)
            assert done.state is JobState.FAILED
            assert not done.result.ok
            assert done.result.error
            assert done.to_dict()["state"] == "failed"


class TestStreaming:
    def test_stream_is_schema_valid(self):
        with service(workers=1) as svc:
            job = svc.submit(
                JobRequest(kind="kstar", problem=dict(SMALL_KSTAR))
            )
            svc.wait(job.id, timeout=60.0)
            buffer = svc.hub.buffer(job.id)
            assert buffer is not None and buffer.closed
            records = buffer.snapshot()
            assert records, "job emitted no telemetry"
            problems = []
            for i, record in enumerate(records):
                problems += validate_record(record, where=f"record {i}")
            problems += check_tree(records)
            assert problems == [], problems
            roots = [
                r for r in records
                if r.get("type") == "span" and r.get("parent") is None
            ]
            assert len(roots) == 1
            assert roots[0]["name"] == "server.job"
            # The root span record seals the stream.
            assert records[-1] is roots[0]

    def test_streams_are_isolated_per_job(self):
        with service(workers=2) as svc:
            first = svc.submit(
                JobRequest(kind="kstar", problem=dict(SMALL_KSTAR))
            )
            second = svc.submit(
                JobRequest(kind="kstar", problem=dict(SMALL_KSTAR))
            )
            svc.wait(first.id, timeout=60.0)
            svc.wait(second.id, timeout=60.0)
            traces_a = {
                r["trace"] for r in svc.hub.buffer(first.id).snapshot()
            }
            traces_b = {
                r["trace"] for r in svc.hub.buffer(second.id).snapshot()
            }
            assert len(traces_a) == 1 and len(traces_b) == 1
            assert traces_a.isdisjoint(traces_b)


class TestFairness:
    def test_single_job_not_starved_by_backlog(self, monkeypatch):
        """With one worker, tenant B's single job runs before tenant A
        drains a backlog submitted ahead of it."""
        order = []
        release = threading.Event()

        class _StubResult:
            def to_dict(self):
                return {"kind": "kstar", "stub": True}

        def fake_run(self, **kwargs):
            release.wait(10.0)
            order.append((self.tenant, self.problem.get("seed")))
            return _StubResult()

        monkeypatch.setattr(JobRequest, "run", fake_run)
        with service(workers=1) as svc:
            head = svc.submit(
                JobRequest(kind="kstar", problem={"seed": 0}, tenant="a")
            )
            # Let the lone worker pick up A's first job and block in it.
            deadline = time.monotonic() + 5.0
            while head.state is not JobState.RUNNING:
                assert time.monotonic() < deadline
                time.sleep(0.01)
            backlog = [
                svc.submit(
                    JobRequest(
                        kind="kstar", problem={"seed": s}, tenant="a"
                    )
                )
                for s in (1, 2)
            ]
            single = svc.submit(
                JobRequest(kind="kstar", problem={"seed": 9}, tenant="b")
            )
            release.set()
            for job in [head, *backlog, single]:
                svc.wait(job.id, timeout=30.0)
        assert order.index(("b", 9)) < order.index(("a", 2))
        assert [s for t, s in order if t == "a"] == [0, 1, 2]


class TestRecovery:
    def test_completed_jobs_come_back_as_history(self, tmp_path):
        with service(workers=1, state_dir=tmp_path) as svc:
            job = svc.submit(
                JobRequest(kind="kstar", problem=dict(SMALL_KSTAR))
            )
            svc.wait(job.id, timeout=60.0)
        with service(workers=1, state_dir=tmp_path) as svc2:
            assert svc2.recovered == []
            back = svc2.job(job.id)
            assert back is not None
            assert back.state is JobState.DONE
            assert back.result.ok
            assert back.result.result["kind"] == "kstar"

    def test_in_flight_job_resumes_from_sweep(self, tmp_path):
        """A state file whose last record is non-terminal is re-enqueued
        with resume=True, so checkpointed rungs replay instead of
        re-solving."""
        request = JobRequest(kind="kstar", problem=dict(SMALL_KSTAR))
        job_id = "crashed00job"
        sweep = tmp_path / f"job-{job_id}.sweep.jsonl"
        # Pre-bake the sweep a dying process would have left behind.
        full = request.run(checkpoint=str(sweep))
        assert sweep.exists()
        state = Checkpoint(
            tmp_path / f"job-{job_id}.state.jsonl", "job",
            {"job_id": job_id, "request": request.to_dict()},
        )
        state.append({"state": "queued"})
        state.append({"state": "running"})

        with service(workers=1, state_dir=tmp_path) as svc:
            assert [j.id for j in svc.recovered] == [job_id]
            job = svc.job(job_id)
            assert job.resumed
            done = svc.wait(job_id, timeout=60.0)
            assert done.state is JobState.DONE
            payload = done.result.result
            assert payload["resumed_rungs"] >= 1
            assert payload["selected_k_star"] == full.best.k_star

    def test_unreadable_state_files_are_skipped(self, tmp_path):
        (tmp_path / "job-garbage.state.jsonl").write_text("{not json\n")
        with service(workers=1, state_dir=tmp_path) as svc:
            assert svc.recovered == []
            assert svc.jobs() == []


class TestScenarioJobs:
    """What-if jobs: base resolution, architecture store, warm re-solve."""

    def test_scenario_job_solves(self):
        with service(workers=1) as svc:
            job = svc.submit(JobRequest(
                kind="scenario", problem={"scenario": "campus::0"},
            ))
            done = svc.wait(job.id, timeout=120.0)
            assert done.result.ok
            assert done.result.result["kind"] == "synthesis"
            assert svc.architecture(job.id) is not None

    def test_edit_against_base_reuses_and_matches(self):
        with service(workers=1) as svc:
            base = svc.submit(JobRequest(
                kind="scenario", problem={"scenario": "campus::0"},
            ))
            base_done = svc.wait(base.id, timeout=120.0)
            edit = svc.submit(JobRequest(
                kind="scenario",
                problem={"scenario": "campus::0",
                         "edits": ["add-wall:30,5,30,25,brick"],
                         "base": base.id},
            ))
            edit_done = svc.wait(edit.id, timeout=120.0)
            assert edit_done.result.ok
            # The shared warm cache let the edited solve transplant
            # entries from the base solve.
            assert svc.cache.counters.partial_count() > 0

            from repro.scenarios import (
                apply_edits, default_registry, parse_edit,
            )
            scenario = default_registry().generate("campus::0")
            cold_problem, _ = apply_edits(
                scenario, (parse_edit("add-wall:30,5,30,25,brick"),)
            )
            cold = cold_problem.rebuilt().explore()
            assert (
                edit_done.result.result["objective"] == cold.objective_value
            )

    def test_unknown_base_degrades_to_cold_start(self):
        with service(workers=1) as svc:
            job = svc.submit(JobRequest(
                kind="scenario",
                problem={"scenario": "campus::0",
                         "edits": ["set-min-snr:21"],
                         "base": "no-such-job"},
            ))
            done = svc.wait(job.id, timeout=120.0)
            assert done.result.ok

    def test_architecture_store_is_bounded(self):
        from repro.server.service import _ARCHITECTURE_CAP

        with service(workers=1) as svc:
            sentinel = object()
            for i in range(_ARCHITECTURE_CAP + 5):
                svc._store_architecture(f"job-{i}", sentinel)
            assert len(svc._architectures) == _ARCHITECTURE_CAP
            assert svc.architecture("job-0") is None  # evicted, oldest first
            assert svc.architecture(f"job-{_ARCHITECTURE_CAP + 4}") is sentinel
