"""Tests for the fault-resiliency analysis."""


from repro.core import DataCollectionExplorer
from repro.library import default_catalog
from repro.network import Architecture, RequirementSet, Route, small_grid_template
from repro.validation import analyze_resiliency


def hand_built(instance):
    """A design where both replicas of one pair share a relay."""
    arch = Architecture(template=instance.template,
                        library=default_catalog())
    s = instance.sensor_ids[0]
    d = instance.sink_id
    # Link-disjoint, but both routes pass through relay 5:
    # node-fault-critical by design.
    arch.routes = [
        Route(s, d, 0, (s, 5, d)),
        Route(s, d, 1, (s, 4, 5, 6, d)),
    ]
    arch.active_edges = {e for r in arch.routes for e in r.edges}
    arch.sizing = {
        node: "relay-std" if instance.template.node(node).role == "relay"
        else ("sensor-std" if instance.template.node(node).role == "sensor"
              else "sink-std")
        for route in arch.routes for node in route.nodes
    }
    return arch, s, d


class TestHandBuiltDesign:
    def test_shared_relay_is_critical_node(self, grid_instance):
        arch, s, d = hand_built(grid_instance)
        report = analyze_resiliency(arch)
        assert report.critical_nodes == [5]
        assert not report.survives_any_single_node_failure
        assert report.node_faults[5].disconnected_pairs == [(s, d)]

    def test_link_disjoint_routes_survive_link_faults(self, grid_instance):
        arch, _, _ = hand_built(grid_instance)
        report = analyze_resiliency(arch)
        assert report.survives_any_single_link_failure
        assert report.critical_links == []

    def test_terminals_not_injected(self, grid_instance):
        arch, s, d = hand_built(grid_instance)
        report = analyze_resiliency(arch)
        assert s not in report.node_faults
        assert d not in report.node_faults

    def test_single_route_pair_is_fragile(self, grid_instance):
        arch, s, d = hand_built(grid_instance)
        arch.routes = arch.routes[:1]
        arch.active_edges = set(arch.routes[0].edges)
        report = analyze_resiliency(arch)
        assert not report.survives_any_single_link_failure
        assert (s, 5) in report.critical_links


class TestSynthesizedDesign:
    def test_disjoint_synthesis_survives_link_faults(
        self, grid_instance, library, grid_requirements
    ):
        result = DataCollectionExplorer(
            grid_instance.template, library, grid_requirements
        ).solve("cost")
        assert result.feasible
        report = analyze_resiliency(result.architecture, grid_requirements)
        # Link-disjoint replicas guarantee single-link-failure survival.
        assert report.survives_any_single_link_failure
