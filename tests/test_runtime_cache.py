"""Tests for the content-keyed encode cache."""

import threading
import time

import pytest

from repro.graph import k_shortest_paths
from repro.network import localization_template, small_grid_template
from repro.runtime import (
    BatchRunner,
    CacheCounters,
    EncodeCache,
    RunStats,
    Trial,
)
from repro.runtime.cache import build_weighted_graph


class TestGetOrCompute:
    def test_miss_then_hit(self):
        cache = EncodeCache()
        stats = RunStats()
        calls = []
        value = cache.get_or_compute(
            "yen", "k1", lambda: calls.append(1) or 42, stats
        )
        again = cache.get_or_compute("yen", "k1", lambda: 99, stats)
        assert value == again == 42
        assert len(calls) == 1
        assert cache.counters.miss_count("yen") == 1
        assert cache.counters.hit_count("yen") == 1
        assert stats.cache.hit_count() == 1 and stats.cache.miss_count() == 1

    def test_stampede_computes_once_and_waiters_hit(self):
        cache = EncodeCache()
        calls = []
        barrier = threading.Barrier(6)

        def compute():
            calls.append(1)
            time.sleep(0.05)
            return "value"

        results = []

        def worker():
            barrier.wait()
            results.append(cache.get_or_compute("pathloss", "k", compute))

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert results == ["value"] * 6
        assert len(calls) == 1
        assert cache.counters.miss_count("pathloss") == 1
        assert cache.counters.hit_count("pathloss") == 5

    def test_failed_compute_evicts_and_retries(self):
        cache = EncodeCache()
        attempts = []

        def failing():
            attempts.append(1)
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            cache.get_or_compute("yen", "k", failing)
        assert len(cache) == 0
        assert cache.get_or_compute("yen", "k", lambda: "ok") == "ok"
        assert cache.counters.miss_count("yen") == 2

    def test_clear_and_len(self):
        cache = EncodeCache()
        cache.get_or_compute("yen", "a", lambda: 1)
        cache.get_or_compute("yen", "b", lambda: 2)
        assert len(cache) == 2
        cache.clear()
        assert len(cache) == 0


class TestWeightedGraph:
    def test_same_template_shares_one_entry(self):
        instance = small_grid_template(nx=4, ny=3)
        cache = EncodeCache()
        g1, key1 = cache.weighted_graph(instance.template)
        g2, key2 = cache.weighted_graph(instance.template)
        assert g1 is g2 and key1 == key2
        assert cache.counters.hit_count("pathloss") == 1

    def test_content_key_tracks_link_changes(self):
        instance = small_grid_template(nx=4, ny=3)
        cache = EncodeCache()
        _, key_before = cache.weighted_graph(instance.template)
        u, v, pl = next(iter(instance.template.edges()))
        instance.template.set_link(u, v, pl + 7.5)
        graph_after, key_after = cache.weighted_graph(instance.template)
        assert key_after != key_before
        assert graph_after.weight(u, v) == pytest.approx(pl + 7.5)

    def test_matches_uncached_builder(self):
        instance = small_grid_template(nx=3, ny=3)
        cached, _ = EncodeCache().weighted_graph(instance.template)
        direct = build_weighted_graph(instance.template)
        assert sorted(cached.edges()) == sorted(direct.edges())


class TestYenPaths:
    def test_equivalent_to_direct_call_and_cached(self):
        instance = small_grid_template(nx=4, ny=3)
        cache = EncodeCache()
        graph, key = cache.weighted_graph(instance.template)
        source = instance.sensor_ids[0]
        paths = cache.yen_paths(key, graph, source, instance.sink_id, 3)
        direct = k_shortest_paths(graph, source, instance.sink_id, 3)
        assert paths == direct
        again = cache.yen_paths(key, graph, source, instance.sink_id, 3)
        assert again is paths
        assert cache.counters.hit_count("yen") == 1

    def test_masked_edges_get_their_own_entry(self):
        instance = small_grid_template(nx=4, ny=3)
        cache = EncodeCache()
        graph, key = cache.weighted_graph(instance.template)
        source = instance.sensor_ids[0]
        baseline = cache.yen_paths(key, graph, source, instance.sink_id, 2)
        masked = graph.copy()
        first_hop = baseline[0][0]
        masked.mask_edge(first_hop[0], first_hop[1])
        rerouted = cache.yen_paths(key, masked, source, instance.sink_id, 2)
        assert rerouted != baseline
        assert cache.counters.miss_count("yen") == 2


class TestReachRankings:
    def test_rankings_match_inline_computation(self):
        instance = localization_template(
            n_anchor_candidates=12, n_test_points=5
        )
        anchors = instance.template.anchors
        cache = EncodeCache()
        rankings = cache.reach_rankings(
            instance.channel, anchors, instance.test_points
        )
        inline = [
            sorted(
                (instance.channel.path_loss_db(a.location, p), a.id)
                for a in anchors
            )
            for p in instance.test_points
        ]
        assert rankings == inline
        cache.reach_rankings(instance.channel, anchors, instance.test_points)
        assert cache.counters.hit_count("pathloss") == 1


class TestCacheCounters:
    def test_merge_folds_per_region_counts(self):
        a = CacheCounters()
        a.record("yen", True)
        a.record("yen", False)
        a.record("pathloss", True)
        b = CacheCounters()
        b.record("yen", True)
        b.record("reach", False)
        a.merge(b)
        assert a.hit_count("yen") == 2
        assert a.miss_count("yen") == 1
        assert a.hit_count("pathloss") == 1
        assert a.miss_count("reach") == 1
        assert a.hit_count() == 3 and a.miss_count() == 2

    def test_merge_into_empty_equals_source(self):
        source = CacheCounters()
        source.record("yen", True)
        source.record("pathloss", False)
        target = CacheCounters()
        target.merge(source)
        assert target.to_dict() == source.to_dict()
        # The merge copies counts, not dict references.
        target.record("yen", True)
        assert source.hit_count("yen") == 1

    def test_merge_empty_is_identity(self):
        counters = CacheCounters()
        counters.record("yen", False)
        before = counters.to_dict()
        counters.merge(CacheCounters())
        assert counters.to_dict() == before


class TestPerTrialAttribution:
    """Concurrent trials sharing one cache: per-trial stats must add up
    exactly to the shared counters — no lookup lost, none double-counted."""

    def test_threaded_trials_attribute_every_lookup(self):
        n_trials, keys = 4, [f"k{i}" for i in range(8)]
        cache = EncodeCache()
        barrier = threading.Barrier(n_trials)

        def trial(stats):
            # All trials release together so the shared keys contend.
            barrier.wait(timeout=10.0)
            for key in keys:
                cache.get_or_compute(
                    "yen", key, lambda key=key: key.upper(), stats
                )
            return stats

        per_trial = [RunStats() for _ in range(n_trials)]
        runner = BatchRunner(workers=n_trials, mode="thread", retries=0)
        outcomes = runner.run([Trial(trial, (s,)) for s in per_trial])
        assert all(o.ok for o in outcomes)

        # Stampede protection makes the split deterministic: each key is
        # computed exactly once, every other lookup scores a hit.
        total = n_trials * len(keys)
        assert cache.counters.miss_count("yen") == len(keys)
        assert cache.counters.hit_count("yen") == total - len(keys)

        merged = CacheCounters()
        for stats in per_trial:
            merged.merge(stats.cache)
        assert merged.to_dict() == cache.counters.to_dict()
        assert sum(
            s.cache.hit_count("yen") + s.cache.miss_count("yen")
            for s in per_trial
        ) == total


class TestFailedComputeRecovery:
    """A failed compute must leave the key retryable as a fresh miss."""

    def test_concurrent_waiters_recover_after_failure(self):
        cache = EncodeCache()
        release = threading.Event()
        outcomes = []

        def failing():
            release.wait(5.0)
            raise RuntimeError("first computer dies")

        def first():
            try:
                cache.get_or_compute("yen", "shared", failing)
            except RuntimeError as exc:
                outcomes.append(("error", str(exc)))

        def waiter():
            # Blocks on the in-flight marker; once the first computer
            # fails, retries the compute itself and succeeds.
            outcomes.append(("ok", cache.get_or_compute(
                "yen", "shared", lambda: "recovered"
            )))

        t1 = threading.Thread(target=first)
        t1.start()
        time.sleep(0.05)  # let the first computer claim the marker
        t2 = threading.Thread(target=waiter)
        t2.start()
        time.sleep(0.05)  # let the waiter block on the marker
        release.set()
        t1.join()
        t2.join()
        assert ("ok", "recovered") in outcomes
        assert ("error", "first computer dies") in outcomes
        assert cache.get_or_compute("yen", "shared", lambda: "x") == "recovered"

    def test_injected_compute_fault_keeps_key_retryable(self):
        from repro.resilience import injected_faults
        from repro.resilience.faults import InjectedFault

        cache = EncodeCache()
        with injected_faults({"cache.compute": 1}):
            with pytest.raises(InjectedFault):
                cache.get_or_compute("yen", "k", lambda: "never")
            assert len(cache) == 0
            # Same key, next request: fresh miss, computes normally.
            assert cache.get_or_compute("yen", "k", lambda: "ok") == "ok"
        assert cache.counters.miss_count("yen") == 2

    def test_failure_does_not_poison_other_keys(self):
        cache = EncodeCache()
        with pytest.raises(ValueError):
            cache.get_or_compute("yen", "bad", lambda: (_ for _ in ()).throw(
                ValueError("boom")
            ))
        assert cache.get_or_compute("yen", "good", lambda: 7) == 7
        assert len(cache) == 1


class TestSeedAndPeek:
    """The incremental-transplant surface: non-clobbering, non-counting."""

    def test_seed_inserts_and_counts_partial_reuse(self):
        cache = EncodeCache()
        stats = RunStats()
        assert cache.seed("yen", "k1", [1, 2, 3], stats)
        assert cache.counters.partial_count("yen") == 1
        assert stats.cache.partial_count("yen") == 1
        # The later consuming lookup scores the hit, not the seed.
        assert cache.counters.hit_count("yen") == 0
        assert cache.get_or_compute("yen", "k1", lambda: "never") == [1, 2, 3]
        assert cache.counters.hit_count("yen") == 1

    def test_seed_never_clobbers_existing_entries(self):
        cache = EncodeCache()
        cache.get_or_compute("yen", "k1", lambda: "fresh")
        assert not cache.seed("yen", "k1", "stale")
        assert cache.counters.partial_count("yen") == 0
        assert cache.peek("k1") == "fresh"

    def test_peek_reads_without_counting(self):
        cache = EncodeCache()
        assert cache.peek("absent") is None
        cache.get_or_compute("pathloss", "k", lambda: 42)
        before = cache.counters.to_dict()
        assert cache.peek("k") == 42
        assert cache.counters.to_dict() == before

    def test_counters_merge_includes_partial_reuse(self):
        a = CacheCounters()
        a.record_partial("yen")
        b = CacheCounters()
        b.record_partial("yen")
        b.record_partial("pathloss")
        a.merge(b)
        assert a.partial_count("yen") == 2
        assert a.partial_count("pathloss") == 1
        assert a.partial_count() == 3
        assert a.to_dict()["partial_reuse"] == {"yen": 2, "pathloss": 1}
