"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCatalog:
    def test_lists_devices(self, capsys):
        assert main(["catalog"]) == 0
        out = capsys.readouterr().out
        assert "relay-std" in out
        assert "anchor-pa" in out
        assert "sleep uA" in out


class TestSynthesize:
    def test_default_spec_small_instance(self, capsys, tmp_path):
        svg = tmp_path / "topology.svg"
        code = main([
            "synthesize", "--sensors", "6", "--relays", "18",
            "--k-star", "6", "--time-limit", "60",
            "--svg-out", str(svg),
        ])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "all requirements hold" in out
        assert "lifetime: min" in out
        assert svg.exists() and "<svg" in svg.read_text()

    def test_spec_file(self, capsys, tmp_path):
        spec = tmp_path / "spec.txt"
        spec.write_text(
            "has_paths(sensors, sink, replicas=1, disjoint=false)\n"
            "min_rss(-80)\nobjective(cost)\n"
        )
        code = main([
            "synthesize", "--spec", str(spec),
            "--sensors", "5", "--relays", "12", "--k-star", "4",
        ])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "status:  optimal" in out

    def test_floorplan_roundtrip(self, capsys, tmp_path):
        from repro.geometry import floorplan_to_svg, office_floorplan

        plan_file = tmp_path / "floor.svg"
        plan_file.write_text(floorplan_to_svg(office_floorplan()))
        code = main([
            "synthesize", "--floorplan", str(plan_file),
            "--sensors", "5", "--relays", "12", "--k-star", "4",
        ])
        assert code == 0, capsys.readouterr().out


class TestLocalize:
    def test_cost_objective(self, capsys, tmp_path):
        svg = tmp_path / "anchors.svg"
        code = main([
            "localize", "--anchors", "30", "--points", "16",
            "--k-star", "10", "--svg-out", str(svg),
        ])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "avg reachable" in out
        assert svg.exists()


class TestSimulate:
    def test_synthesize_then_simulate(self, capsys, tmp_path):
        design = tmp_path / "design.json"
        assert main([
            "synthesize", "--sensors", "5", "--relays", "12",
            "--k-star", "4", "--json-out", str(design),
        ]) == 0
        capsys.readouterr()
        code = main(["simulate", str(design), "--reports", "20"])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "ratio 1.000" in out
        assert "lifetime: worst battery node" in out


class TestKstar:
    def test_sweep(self, capsys):
        code = main([
            "kstar", "--nodes", "25", "--devices", "6", "--ladder", "1", "3",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "selected K*" in out


class TestModuleEntryPoint:
    def test_python_dash_m_repro(self):
        import subprocess
        import sys

        result = subprocess.run(
            [sys.executable, "-m", "repro", "catalog"],
            capture_output=True, text=True, timeout=120,
        )
        assert result.returncode == 0, result.stderr[-500:]
        assert "relay-std" in result.stdout


class TestParsing:
    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            main([])
