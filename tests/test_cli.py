"""Tests for the command-line interface."""

import json
from pathlib import Path

import pytest

from repro.cli import main


class TestCatalog:
    def test_lists_devices(self, capsys):
        assert main(["catalog"]) == 0
        out = capsys.readouterr().out
        assert "relay-std" in out
        assert "anchor-pa" in out
        assert "sleep uA" in out


class TestSynthesize:
    def test_default_spec_small_instance(self, capsys, tmp_path):
        svg = tmp_path / "topology.svg"
        code = main([
            "synthesize", "--sensors", "6", "--relays", "18",
            "--k-star", "6", "--time-limit", "60",
            "--svg-out", str(svg),
        ])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "all requirements hold" in out
        assert "lifetime: min" in out
        assert svg.exists() and "<svg" in svg.read_text()

    def test_spec_file(self, capsys, tmp_path):
        spec = tmp_path / "spec.txt"
        spec.write_text(
            "has_paths(sensors, sink, replicas=1, disjoint=false)\n"
            "min_rss(-80)\nobjective(cost)\n"
        )
        code = main([
            "synthesize", "--spec", str(spec),
            "--sensors", "5", "--relays", "12", "--k-star", "4",
        ])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "status:  optimal" in out

    def test_floorplan_roundtrip(self, capsys, tmp_path):
        from repro.geometry import floorplan_to_svg, office_floorplan

        plan_file = tmp_path / "floor.svg"
        plan_file.write_text(floorplan_to_svg(office_floorplan()))
        code = main([
            "synthesize", "--floorplan", str(plan_file),
            "--sensors", "5", "--relays", "12", "--k-star", "4",
        ])
        assert code == 0, capsys.readouterr().out


class TestLocalize:
    def test_cost_objective(self, capsys, tmp_path):
        svg = tmp_path / "anchors.svg"
        code = main([
            "localize", "--anchors", "30", "--points", "16",
            "--k-star", "10", "--svg-out", str(svg),
        ])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "avg reachable" in out
        assert svg.exists()


class TestSimulate:
    def test_synthesize_then_simulate(self, capsys, tmp_path):
        design = tmp_path / "design.json"
        assert main([
            "synthesize", "--sensors", "5", "--relays", "12",
            "--k-star", "4", "--json-out", str(design),
        ]) == 0
        capsys.readouterr()
        code = main(["simulate", str(design), "--reports", "20"])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "ratio 1.000" in out
        assert "lifetime: worst battery node" in out


class TestLint:
    EXAMPLES = Path(__file__).parent.parent / "examples" / "specs"

    def test_disconnected_spec_fails_with_many_rules(self, capsys):
        code = main(["lint", str(self.EXAMPLES / "disconnected.spec")])
        out = capsys.readouterr().out
        assert code == 1
        assert "error[spec.route-connectivity]" in out
        assert "error[spec.route-min-cut]" in out
        assert "error[spec.hop-bounds]" in out
        assert "warning[spec.unit-consistency]" in out
        assert "warning[spec.quality-pruned-connectivity]" in out

    def test_disconnected_spec_json_report(self, capsys):
        code = main([
            "lint", str(self.EXAMPLES / "disconnected.spec"), "--json",
        ])
        out = capsys.readouterr().out
        assert code == 1
        payload = json.loads(out)
        assert payload["errors"] > 0
        assert len(payload["rules"]) >= 3
        assert payload["spec"].endswith("disconnected.spec")
        assert all("rule" in d for d in payload["diagnostics"])

    def test_office_spec_is_clean(self, capsys):
        code = main(["lint", str(self.EXAMPLES / "office.spec")])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "0 error(s), 0 warning(s)" in out

    def test_spec_only_mode_skips_the_model(self, capsys):
        code = main([
            "lint", str(self.EXAMPLES / "office.spec"), "--no-model",
        ])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "0 info(s)" in out  # model rules (the info source) never ran

    def test_parse_error_becomes_a_diagnostic(self, capsys, tmp_path):
        bad = tmp_path / "bad.spec"
        bad.write_text("objective(\n")
        code = main(["lint", str(bad), "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["rules"] == ["spec.parse"]

    def test_json_and_text_exit_codes_agree(self, capsys):
        """--json must fail exactly when text mode fails (regression:
        a JSON report with ERROR diagnostics exiting 0 would let broken
        specs through CI pipelines that parse the JSON)."""
        for spec, expected in (
            ("disconnected.spec", 1),
            ("office.spec", 0),
        ):
            text_code = main(["lint", str(self.EXAMPLES / spec)])
            capsys.readouterr()
            json_code = main(["lint", str(self.EXAMPLES / spec), "--json"])
            payload = json.loads(capsys.readouterr().out)
            assert text_code == json_code == expected
            assert (payload["errors"] > 0) == (expected == 1)

    def test_presolve_mode_reports_reductions(self, capsys):
        code = main([
            "lint", str(self.EXAMPLES / "office.spec"),
            "--presolve", "--sensors", "6", "--relays", "10",
        ])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "presolve[full]" in out

    def test_presolve_mode_in_json_report(self, capsys):
        code = main([
            "lint", str(self.EXAMPLES / "office.spec"),
            "--presolve", "reduce", "--json",
            "--sensors", "6", "--relays", "10",
        ])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert "presolve.report" in payload["rules"]
        diag = next(d for d in payload["diagnostics"]
                    if d["rule"] == "presolve.report")
        assert diag["data"]["mode"] == "reduce"
        assert diag["data"]["rows"]["after"] <= diag["data"]["rows"]["before"]

    def test_synthesize_refuses_doomed_spec(self, capsys, tmp_path):
        spec = tmp_path / "doomed.spec"
        spec.write_text(
            "p = has_path(sink, sensor[0])\nobjective(cost)\n"
        )
        code = main([
            "synthesize", "--spec", str(spec),
            "--sensors", "5", "--relays", "12", "--k-star", "4",
        ])
        out = capsys.readouterr().out
        assert code == 1
        assert "spec.route-connectivity" in out
        assert "repro lint" in out


class TestKstar:
    def test_sweep(self, capsys):
        code = main([
            "kstar", "--nodes", "25", "--devices", "6", "--ladder", "1", "3",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "selected K*" in out


class TestModuleEntryPoint:
    def test_python_dash_m_repro(self):
        import subprocess
        import sys

        result = subprocess.run(
            [sys.executable, "-m", "repro", "catalog"],
            capture_output=True, text=True, timeout=120,
        )
        assert result.returncode == 0, result.stderr[-500:]
        assert "relay-std" in result.stdout


class TestParsing:
    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            main([])


class TestScenarios:
    def test_list_family(self, capsys):
        assert main(["scenarios", "list", "--family", "campus"]) == 0
        out = capsys.readouterr().out
        assert "campus:buildings_x=2,buildings_y=2:0" in out
        assert "total: 20 scenarios" in out

    def test_list_unknown_family(self, capsys):
        assert main(["scenarios", "list", "--family", "nope"]) == 1
        assert "unknown scenario family" in capsys.readouterr().out

    def test_list_json_and_limit(self, capsys):
        assert main(["scenarios", "list", "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert sum(row["scenarios"] for row in summary) >= 100
        assert main(["scenarios", "list", "--limit", "2"]) == 0
        out = capsys.readouterr().out
        assert "more)" in out

    def test_generate_summary_and_svg(self, capsys, tmp_path):
        svg = tmp_path / "plan.svg"
        assert main([
            "scenarios", "generate", "materials::0", "--svg-out", str(svg),
        ]) == 0
        out = capsys.readouterr().out
        summary = json.loads(out[:out.rindex("}") + 1])
        assert summary["name"] == "materials::0"
        assert summary["fingerprint"]
        assert svg.exists() and "<svg" in svg.read_text()

    def test_generate_unknown_name(self, capsys):
        assert main(["scenarios", "generate", "skyscraper::0"]) == 1
        assert "unknown scenario family" in capsys.readouterr().out

    def test_resolve_plain(self, capsys):
        assert main(["scenarios", "resolve", "campus::0"]) == 0
        out = capsys.readouterr().out
        assert "status optimal" in out

    def test_resolve_incremental_edit(self, capsys, tmp_path):
        stats = tmp_path / "stats.json"
        code = main([
            "scenarios", "resolve", "campus::0",
            "--edit", "add-wall:30,5,30,25,brick",
            "--incremental", "--stats-json", str(stats),
        ])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "cold" in out and "incremental" in out
        payload = json.loads(stats.read_text())
        assert (
            payload["incremental"]["objective"] == payload["cold"]["objective"]
        )
        assert payload["cache"]["partial_reuse"]

    def test_resolve_bad_edit(self, capsys):
        assert main([
            "scenarios", "resolve", "campus::0", "--edit", "teleport:1",
        ]) == 1
        assert "unknown edit kind" in capsys.readouterr().out

    def test_resolve_incremental_requires_edit(self, capsys):
        assert main([
            "scenarios", "resolve", "campus::0", "--incremental",
        ]) == 1
        assert "needs at least one --edit" in capsys.readouterr().out
