"""Edge cases of the from-scratch branch-and-bound solver."""

import pytest

from repro.milp import BranchAndBoundSolver, Model, SolveStatus, lin_sum


class TestTermination:
    def test_unbounded_detected(self):
        m = Model()
        x = m.continuous("x", 0.0, float("inf"))
        m.minimize(-1.0 * x)
        assert BranchAndBoundSolver().solve(m).status == (
            SolveStatus.UNBOUNDED
        )

    def test_empty_model(self):
        m = Model()
        sol = BranchAndBoundSolver().solve(m)
        assert sol.status == SolveStatus.OPTIMAL
        assert sol.objective == pytest.approx(0.0)

    def test_all_variables_fixed_by_bounds(self):
        m = Model()
        x = m.integer("x", 3, 3)
        m.minimize(x)
        sol = BranchAndBoundSolver().solve(m)
        assert sol.value(x) == pytest.approx(3.0)

    def test_time_limit_zero_returns_quickly(self):
        m = Model()
        xs = [m.binary(f"x{i}") for i in range(20)]
        m.add(lin_sum(xs) >= 10)
        m.minimize(lin_sum([(i + 1) * x for i, x in enumerate(xs)]))
        sol = BranchAndBoundSolver(time_limit=0.0).solve(m)
        # Either found nothing yet (timeout) or got lucky with the root.
        assert sol.status in (
            SolveStatus.TIMEOUT, SolveStatus.OPTIMAL, SolveStatus.FEASIBLE
        )

    def test_gap_reported_on_early_stop(self):
        import numpy as np

        rng = np.random.default_rng(1)
        m = Model()
        xs = [m.binary(f"x{i}") for i in range(16)]
        w = rng.uniform(1, 9, 16)
        m.add(lin_sum([wi * x for wi, x in zip(w, xs)]) <= 25)
        m.maximize(lin_sum([wi * 1.3 * x for wi, x in zip(w, xs)]))
        sol = BranchAndBoundSolver(node_limit=5).solve(m)
        if sol.status == SolveStatus.FEASIBLE:
            assert sol.mip_gap >= 0.0


class TestCorrectnessDetails:
    def test_ranged_constraint(self):
        m = Model()
        x = m.integer("x", 0, 10)
        m.add_range(x + 0.0, 2.5, 4.5)
        m.minimize(x)
        sol = BranchAndBoundSolver().solve(m)
        assert sol.value(x) == pytest.approx(3.0)

    def test_negative_lower_bounds(self):
        m = Model()
        x = m.integer("x", -5, 5)
        m.add(2 * x >= -7)
        m.minimize(x)
        sol = BranchAndBoundSolver().solve(m)
        assert sol.value(x) == pytest.approx(-3.0)

    def test_fractional_lp_optimum_forces_branching(self):
        m = Model()
        x = m.integer("x", 0, 10)
        y = m.integer("y", 0, 10)
        m.add(2 * x + 3 * y >= 7)
        m.minimize(x + y)
        sol = BranchAndBoundSolver().solve(m)
        assert sol.status == SolveStatus.OPTIMAL
        # LP optimum is fractional (7/3); integer optimum costs 3.
        assert sol.objective == pytest.approx(3.0)
        assert sol.node_count >= 1

    def test_mixed_integer_continuous(self):
        m = Model()
        x = m.integer("x", 0, 5)
        y = m.continuous("y", 0.0, 5.0)
        m.add(x + y >= 3.7)
        m.minimize(2 * x + y)
        sol = BranchAndBoundSolver().solve(m)
        # Pure continuous fill is cheapest: x = 0, y = 3.7.
        assert sol.value(x) == pytest.approx(0.0)
        assert sol.value(y) == pytest.approx(3.7)

    def test_equality_with_integers(self):
        m = Model()
        x = m.integer("x", 0, 9)
        y = m.integer("y", 0, 9)
        m.add(3 * x + 5 * y == 19)
        m.minimize(x + y)
        sol = BranchAndBoundSolver().solve(m)
        assert sol.status == SolveStatus.OPTIMAL
        assert 3 * sol.value(x) + 5 * sol.value(y) == pytest.approx(19.0)

    def test_infeasible_integrality_gap(self):
        # LP-feasible but integer-infeasible: 2x == 3 with integer x.
        m = Model()
        x = m.integer("x", 0, 5)
        m.add(2 * x == 3)
        m.minimize(x)
        assert BranchAndBoundSolver().solve(m).status == (
            SolveStatus.INFEASIBLE
        )


class TestPruningTolerance:
    def test_zero_incumbent_gap_floor_still_prunes(self):
        # A relative gap scaled by |incumbent| is a no-op once the
        # incumbent objective is exactly 0; the max(1.0, |incumbent|)
        # floor keeps a coarse-gap solve able to prune the tree.
        m = Model()
        zs = [m.integer(f"z{i}", -1, 1) for i in range(8)]
        m.add(lin_sum([2 * z for z in zs]) >= -1)  # LP bound -0.5
        m.minimize(lin_sum(zs))  # integer optimum 0
        m.hints["warm_start"] = {
            "x": [0.0] * 8, "objective": 0.0, "source": "test",
        }
        sol = BranchAndBoundSolver(mip_rel_gap=0.6).solve(m)
        assert sol.extra["warm_start"]["status"] == "accepted"
        assert sol.objective == pytest.approx(0.0)
        # prune_at = 0 - 0.6 * max(1, 0) = -0.6 swallows the -0.5 root
        # bound, so the hinted incumbent closes the tree immediately.
        assert sol.node_count == 0

    def test_zero_optimum_still_exact_at_default_gap(self):
        m = Model()
        zs = [m.integer(f"z{i}", -1, 1) for i in range(4)]
        m.add(lin_sum([2 * z for z in zs]) >= -1)
        m.minimize(lin_sum(zs))
        sol = BranchAndBoundSolver().solve(m)
        assert sol.status == SolveStatus.OPTIMAL
        assert sol.objective == pytest.approx(0.0)
