"""Tests for Algorithm 1 — the approximate path encoding."""

import pytest

from repro.encoding import (
    ApproximatePathEncoder,
    EncodingError,
    budget_div,
    generate_candidate_pool,
)
from repro.graph import are_link_disjoint, max_disjoint_subset
from repro.milp import HighsSolver, Model
from repro.network import RouteRequirement, small_grid_template
from repro.constraints.mapping import build_mapping
from repro.library import default_catalog


class TestBudgetDiv:
    def test_paper_example(self):
        k, n_rep = budget_div(10, 2)
        assert n_rep == 2 and k == 5 and k * n_rep >= 10

    def test_rounding_up(self):
        k, n_rep = budget_div(10, 3)
        assert k * n_rep >= 10

    def test_single_replica(self):
        assert budget_div(7, 1) == (7, 1)

    def test_validation(self):
        with pytest.raises(ValueError):
            budget_div(0, 1)
        with pytest.raises(ValueError):
            budget_div(5, 0)


@pytest.fixture()
def grid():
    return small_grid_template(nx=4, ny=3)


class TestCandidatePool:
    def test_pool_paths_are_valid(self, grid):
        req = RouteRequirement(grid.sensor_ids[0], grid.sink_id,
                               replicas=2, disjoint=True)
        pool = generate_candidate_pool(grid.template.graph, req, k_star=10)
        for path in pool:
            assert path.source == req.source
            assert path.dest == req.dest
            for u, v in path.edges:
                assert grid.template.graph.has_edge(u, v)

    def test_pool_has_disjoint_replicas(self, grid):
        req = RouteRequirement(grid.sensor_ids[0], grid.sink_id,
                               replicas=3, disjoint=True)
        pool = generate_candidate_pool(grid.template.graph, req, k_star=9)
        nodes = [p.nodes for p in pool]
        assert len(max_disjoint_subset(nodes)) >= 3

    def test_pool_deduplicated(self, grid):
        req = RouteRequirement(grid.sensor_ids[0], grid.sink_id, replicas=2)
        pool = generate_candidate_pool(grid.template.graph, req, k_star=10)
        keys = [p.nodes for p in pool]
        assert len(keys) == len(set(keys))

    def test_masks_cleared_after_generation(self, grid):
        req = RouteRequirement(grid.sensor_ids[0], grid.sink_id,
                               replicas=2, disjoint=True)
        generate_candidate_pool(grid.template.graph, req, k_star=10)
        assert grid.template.graph.masked_edges == frozenset()

    def test_first_candidate_is_min_loss(self, grid):
        req = RouteRequirement(grid.sensor_ids[0], grid.sink_id, replicas=1,
                               disjoint=False)
        pool = generate_candidate_pool(grid.template.graph, req, k_star=5)
        from repro.graph import shortest_path

        _, best = shortest_path(grid.template.graph, req.source, req.dest)
        assert pool[0].loss_db == pytest.approx(best)

    def test_hop_bound_filters_pool(self, grid):
        req = RouteRequirement(grid.sensor_ids[0], grid.sink_id,
                               replicas=1, disjoint=False, max_hops=1)
        pool = generate_candidate_pool(grid.template.graph, req, k_star=10)
        assert all(p.hops == 1 for p in pool)

    def test_impossible_requirement_raises(self, grid):
        # More disjoint replicas than the source's out-degree.
        out_degree = grid.template.graph.out_degree(grid.sensor_ids[0])
        req = RouteRequirement(grid.sensor_ids[0], grid.sink_id,
                               replicas=out_degree + 1, disjoint=True)
        with pytest.raises(EncodingError, match="increase k_star"):
            generate_candidate_pool(
                grid.template.graph, req, k_star=out_degree + 1
            )


class TestEncoder:
    def _encode(self, grid, routes, k_star=5):
        model = Model()
        mapping = build_mapping(model, grid.template, default_catalog())
        encoder = ApproximatePathEncoder(k_star=k_star)
        encoding = encoder.encode(
            model, grid.template, routes, mapping.node_used
        )
        return model, mapping, encoding

    def test_only_pool_edges_encoded(self, grid):
        routes = [RouteRequirement(grid.sensor_ids[0], grid.sink_id,
                                   replicas=2, disjoint=True)]
        _, _, encoding = self._encode(grid, routes)
        assert 0 < len(encoding.edge_active) < grid.template.edge_count

    def test_path_var_count_below_full(self, grid):
        routes = [
            RouteRequirement(s, grid.sink_id, replicas=2, disjoint=True)
            for s in grid.sensor_ids
        ]
        _, _, encoding = self._encode(grid, routes, k_star=5)
        full_vars = len(routes) * 2 * grid.template.edge_count
        assert encoding.path_var_count < full_vars / 5

    def test_solution_decodes_to_disjoint_routes(self, grid):
        routes = [RouteRequirement(grid.sensor_ids[0], grid.sink_id,
                                   replicas=2, disjoint=True)]
        model, mapping, encoding = self._encode(grid, routes)
        model.minimize(mapping.cost_expr())
        solution = HighsSolver().solve(model)
        assert solution.status.has_solution
        decoded = encoding.decode(solution)
        assert len(decoded) == 2
        assert are_link_disjoint(decoded[0].nodes, decoded[1].nodes)

    def test_active_edges_match_decoded_routes(self, grid):
        routes = [RouteRequirement(s, grid.sink_id, replicas=1,
                                   disjoint=False)
                  for s in grid.sensor_ids]
        model, mapping, encoding = self._encode(grid, routes)
        model.minimize(mapping.cost_expr())
        solution = HighsSolver().solve(model)
        decoded = encoding.decode(solution)
        used_edges = {e for r in decoded for e in r.edges}
        active = {
            e for e, var in encoding.edge_active.items()
            if solution.value_bool(var)
        }
        assert active == used_edges

    def test_used_nodes_cover_route_nodes(self, grid):
        routes = [RouteRequirement(grid.sensor_ids[0], grid.sink_id,
                                   replicas=2, disjoint=True)]
        model, mapping, encoding = self._encode(grid, routes)
        model.minimize(mapping.cost_expr())
        solution = HighsSolver().solve(model)
        for route in encoding.decode(solution):
            for node in route.nodes:
                assert solution.value_bool(mapping.node_used[node])

    def test_invalid_k_star(self):
        with pytest.raises(ValueError):
            ApproximatePathEncoder(k_star=0)

    def test_degree_sparsification_preserves_feasibility(self, grid):
        routes = [RouteRequirement(s, grid.sink_id, replicas=2,
                                   disjoint=True)
                  for s in grid.sensor_ids]
        model = Model()
        mapping = build_mapping(model, grid.template, default_catalog())
        encoding = ApproximatePathEncoder(
            k_star=5, max_out_degree=3
        ).encode(model, grid.template, routes, mapping.node_used)
        model.minimize(mapping.cost_expr())
        solution = HighsSolver().solve(model)
        assert solution.status.has_solution
        decoded = encoding.decode(solution)
        assert len(decoded) == 2 * len(routes)

    def test_degree_one_falls_back_to_full_graph(self, grid):
        """Out-degree 1 cannot supply two disjoint replicas on the
        sparsified graph; the encoder must fall back transparently."""
        routes = [RouteRequirement(grid.sensor_ids[0], grid.sink_id,
                                   replicas=2, disjoint=True)]
        model = Model()
        mapping = build_mapping(model, grid.template, default_catalog())
        encoding = ApproximatePathEncoder(
            k_star=5, max_out_degree=1
        ).encode(model, grid.template, routes, mapping.node_used)
        assert encoding.path_var_count >= 2

    def test_invalid_degree_rejected(self):
        with pytest.raises(ValueError):
            ApproximatePathEncoder(k_star=5, max_out_degree=0)

    def test_path_loss_prefilter(self, grid):
        routes = [RouteRequirement(grid.sensor_ids[0], grid.sink_id,
                                   replicas=1, disjoint=False)]
        encoder = ApproximatePathEncoder(k_star=3, max_path_loss_db=75.0)
        model = Model()
        mapping = build_mapping(model, grid.template, default_catalog())
        encoding = encoder.encode(model, grid.template, routes,
                                  mapping.node_used)
        for u, v in encoding.edge_active:
            assert grid.template.path_loss(u, v) <= 75.0
