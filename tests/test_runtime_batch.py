"""Tests for the batch runner (process/thread pools, retries, ordering)."""

import time

import pytest

from repro.runtime import MODES, BatchRunner, Trial


def square(x):
    return x * x


def sleepy_identity(x, delay=0.0):
    time.sleep(delay)
    return x


def fail_until_sentinel(path):
    """Raise on the first call, succeed once the sentinel file exists.

    File-based state survives both process and thread retries.
    """
    if path.exists():
        return "recovered"
    path.write_text("crashed once")
    raise RuntimeError("transient crash")


def always_fails():
    raise ValueError("permanent")


class TestModes:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown mode"):
            BatchRunner(mode="fork")
        assert "process" in MODES

    def test_invalid_workers_and_retries(self):
        with pytest.raises(ValueError):
            BatchRunner(workers=0)
        with pytest.raises(ValueError):
            BatchRunner(retries=-1)

    def test_one_worker_is_sequential(self):
        runner = BatchRunner(workers=1, mode="auto")
        assert runner._resolve_mode([Trial(square, (2,))] * 3) == "sequential"

    def test_auto_picks_process_for_picklable(self):
        runner = BatchRunner(workers=2, mode="auto")
        trials = [Trial(square, (i,)) for i in range(3)]
        assert runner._resolve_mode(trials) == "process"

    def test_auto_falls_back_to_threads_for_closures(self):
        runner = BatchRunner(workers=2, mode="auto")
        captured = {"x": 1}
        trials = [Trial(lambda: captured["x"]) for _ in range(2)]
        assert runner._resolve_mode(trials) == "thread"


class TestExecution:
    def test_empty_run(self):
        assert BatchRunner(workers=2).run([]) == []

    def test_map_preserves_order_process(self):
        runner = BatchRunner(workers=2, mode="process")
        outcomes = runner.map(square, [3, 1, 4, 1, 5])
        assert [o.value for o in outcomes] == [9, 1, 16, 1, 25]
        assert [o.index for o in outcomes] == [0, 1, 2, 3, 4]
        assert all(o.ok and o.attempts == 1 for o in outcomes)

    def test_thread_mode_preserves_order_despite_delays(self):
        runner = BatchRunner(workers=4, mode="thread")
        # The first trial finishes last; ordering must not follow completion.
        outcomes = runner.run([
            Trial(sleepy_identity, (0,), {"delay": 0.2}),
            Trial(sleepy_identity, (1,)),
            Trial(sleepy_identity, (2,)),
        ])
        assert [o.value for o in outcomes] == [0, 1, 2]

    def test_sequential_matches_pooled_results(self):
        items = list(range(8))
        pooled = BatchRunner(workers=4, mode="process").map(square, items)
        inline = BatchRunner(workers=1).map(square, items)
        assert [o.value for o in pooled] == [o.value for o in inline]

    def test_bare_callables_are_coerced(self):
        outcomes = BatchRunner(workers=1).run([lambda: 7, lambda: 8])
        assert [o.value for o in outcomes] == [7, 8]


class TestFailureHandling:
    def test_crash_retried_once(self, tmp_path):
        sentinel = tmp_path / "crashed"
        runner = BatchRunner(workers=2, mode="thread", retries=1)
        (outcome,) = runner.run(
            [Trial(fail_until_sentinel, (sentinel,)), ]
        )
        assert outcome.ok
        assert outcome.value == "recovered"
        assert outcome.attempts == 2

    def test_crash_retried_once_sequential(self, tmp_path):
        sentinel = tmp_path / "crashed"
        runner = BatchRunner(workers=1, retries=1)
        (outcome,) = runner.run([Trial(fail_until_sentinel, (sentinel,))])
        assert outcome.ok and outcome.attempts == 2

    def test_permanent_failure_reported_not_raised(self):
        runner = BatchRunner(workers=2, mode="thread", retries=1)
        good, bad = runner.run([Trial(square, (6,)), Trial(always_fails)])
        assert good.value == 36
        assert not bad.ok
        assert bad.attempts == 2
        with pytest.raises(ValueError, match="permanent"):
            bad.unwrap()

    def test_timeout_marks_outcome(self):
        runner = BatchRunner(workers=2, mode="thread", timeout_s=0.05)
        slow, fast = runner.run([
            Trial(sleepy_identity, (0,), {"delay": 2.0}, label="slow"),
            Trial(sleepy_identity, (1,)),
        ])
        assert slow.timed_out and not slow.ok
        assert isinstance(slow.error, TimeoutError)
        assert fast.value == 1

    def test_per_trial_timeout_overrides_runner(self):
        runner = BatchRunner(workers=2, mode="thread", timeout_s=0.05)
        (outcome,) = runner.run([
            Trial(sleepy_identity, (9,), {"delay": 0.2}, timeout_s=5.0),
            Trial(square, (1,)),  # second trial forces pooled mode
        ])[:1]
        assert outcome.ok and outcome.value == 9
