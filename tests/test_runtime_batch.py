"""Tests for the batch runner (process/thread pools, retries, ordering)."""

import time

import pytest

from repro.runtime import MODES, BatchRunner, Trial


def square(x):
    return x * x


def sleepy_identity(x, delay=0.0):
    time.sleep(delay)
    return x


def fail_until_sentinel(path):
    """Raise on the first call, succeed once the sentinel file exists.

    File-based state survives both process and thread retries.
    """
    if path.exists():
        return "recovered"
    path.write_text("crashed once")
    raise RuntimeError("transient crash")


def always_fails():
    raise ValueError("permanent")


class TestModes:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown mode"):
            BatchRunner(mode="fork")
        assert "process" in MODES

    def test_invalid_workers_and_retries(self):
        with pytest.raises(ValueError):
            BatchRunner(workers=0)
        with pytest.raises(ValueError):
            BatchRunner(retries=-1)

    def test_one_worker_is_sequential(self):
        runner = BatchRunner(workers=1, mode="auto")
        assert runner._resolve_mode([Trial(square, (2,))] * 3) == "sequential"

    def test_auto_picks_process_for_picklable(self):
        runner = BatchRunner(workers=2, mode="auto")
        trials = [Trial(square, (i,)) for i in range(3)]
        assert runner._resolve_mode(trials) == "process"

    def test_auto_falls_back_to_threads_for_closures(self):
        runner = BatchRunner(workers=2, mode="auto")
        captured = {"x": 1}
        trials = [Trial(lambda: captured["x"]) for _ in range(2)]
        assert runner._resolve_mode(trials) == "thread"


class TestExecution:
    def test_empty_run(self):
        assert BatchRunner(workers=2).run([]) == []

    def test_map_preserves_order_process(self):
        runner = BatchRunner(workers=2, mode="process")
        outcomes = runner.map(square, [3, 1, 4, 1, 5])
        assert [o.value for o in outcomes] == [9, 1, 16, 1, 25]
        assert [o.index for o in outcomes] == [0, 1, 2, 3, 4]
        assert all(o.ok and o.attempts == 1 for o in outcomes)

    def test_thread_mode_preserves_order_despite_delays(self):
        runner = BatchRunner(workers=4, mode="thread")
        # The first trial finishes last; ordering must not follow completion.
        outcomes = runner.run([
            Trial(sleepy_identity, (0,), {"delay": 0.2}),
            Trial(sleepy_identity, (1,)),
            Trial(sleepy_identity, (2,)),
        ])
        assert [o.value for o in outcomes] == [0, 1, 2]

    def test_sequential_matches_pooled_results(self):
        items = list(range(8))
        pooled = BatchRunner(workers=4, mode="process").map(square, items)
        inline = BatchRunner(workers=1).map(square, items)
        assert [o.value for o in pooled] == [o.value for o in inline]

    def test_bare_callables_are_coerced(self):
        outcomes = BatchRunner(workers=1).run([lambda: 7, lambda: 8])
        assert [o.value for o in outcomes] == [7, 8]


class TestFailureHandling:
    def test_crash_retried_once(self, tmp_path):
        sentinel = tmp_path / "crashed"
        runner = BatchRunner(workers=2, mode="thread", retries=1)
        (outcome,) = runner.run(
            [Trial(fail_until_sentinel, (sentinel,)), ]
        )
        assert outcome.ok
        assert outcome.value == "recovered"
        assert outcome.attempts == 2

    def test_crash_retried_once_sequential(self, tmp_path):
        sentinel = tmp_path / "crashed"
        runner = BatchRunner(workers=1, retries=1)
        (outcome,) = runner.run([Trial(fail_until_sentinel, (sentinel,))])
        assert outcome.ok and outcome.attempts == 2

    def test_permanent_failure_reported_not_raised(self):
        runner = BatchRunner(workers=2, mode="thread", retries=1)
        good, bad = runner.run([Trial(square, (6,)), Trial(always_fails)])
        assert good.value == 36
        assert not bad.ok
        assert bad.attempts == 2
        with pytest.raises(ValueError, match="permanent"):
            bad.unwrap()

    def test_timeout_marks_outcome(self):
        runner = BatchRunner(workers=2, mode="thread", timeout_s=0.05)
        slow, fast = runner.run([
            Trial(sleepy_identity, (0,), {"delay": 2.0}, label="slow"),
            Trial(sleepy_identity, (1,)),
        ])
        assert slow.timed_out and not slow.ok
        assert isinstance(slow.error, TimeoutError)
        assert fast.value == 1

    def test_per_trial_timeout_overrides_runner(self):
        runner = BatchRunner(workers=2, mode="thread", timeout_s=0.05)
        (outcome,) = runner.run([
            Trial(sleepy_identity, (9,), {"delay": 0.2}, timeout_s=5.0),
            Trial(square, (1,)),  # second trial forces pooled mode
        ])[:1]
        assert outcome.ok and outcome.value == 9


def blocked_until(path, poll=0.01):
    """Busy-wait until the sentinel file exists (hung-worker stand-in)."""
    while not path.exists():
        time.sleep(poll)
    return "finally done"


class TestWorkerRecycling:
    """A timed-out trial must not keep squatting on a pool slot."""

    def test_thread_timeout_recycles_and_later_trials_complete(self, tmp_path):
        release = tmp_path / "release"
        runner = BatchRunner(workers=2, mode="thread", timeout_s=0.1)
        try:
            outcomes = runner.run([
                Trial(blocked_until, (release,), label="hung"),
                Trial(sleepy_identity, (1,)),
                Trial(sleepy_identity, (2,)),
                Trial(sleepy_identity, (3,)),
            ])
        finally:
            release.write_text("go")  # unblock the abandoned thread
        hung, *rest = outcomes
        assert hung.timed_out and not hung.ok
        assert isinstance(hung.error, TimeoutError)
        # The outcome reports measured wall clock, not a placeholder.
        assert hung.seconds >= 0.1
        assert "waited" in str(hung.error)
        assert [o.value for o in rest] == [1, 2, 3]
        assert runner.recycled_pools == 1

    def test_process_timeout_terminates_worker(self, tmp_path):
        release = tmp_path / "never"
        runner = BatchRunner(workers=2, mode="process", timeout_s=0.2)
        outcomes = runner.run([
            Trial(blocked_until, (release,), label="hung"),
            Trial(square, (4,)),
            Trial(square, (5,)),
        ])
        hung, a, b = outcomes
        assert hung.timed_out and hung.seconds >= 0.2
        assert (a.value, b.value) == (16, 25)
        assert runner.recycled_pools == 1
        # The sentinel never appeared: only a terminated worker explains
        # the run finishing at all.

    def test_no_recycle_when_nothing_times_out(self):
        runner = BatchRunner(workers=2, mode="thread", timeout_s=5.0)
        runner.run([Trial(square, (2,)), Trial(square, (3,))])
        assert runner.recycled_pools == 0


class TestResilienceHooks:
    def test_backoff_between_crash_retries(self, tmp_path):
        from repro.resilience import RetryPolicy

        slept = []
        sentinel = tmp_path / "crashed"
        runner = BatchRunner(
            workers=1, retries=1,
            retry_policy=RetryPolicy(base_delay_s=0.125, multiplier=2.0),
            sleep=slept.append,
        )
        (outcome,) = runner.run([Trial(fail_until_sentinel, (sentinel,))])
        assert outcome.ok and outcome.attempts == 2
        assert slept == [pytest.approx(0.125)]

    def test_backoff_pooled_mode(self, tmp_path):
        from repro.resilience import RetryPolicy

        slept = []
        sentinel = tmp_path / "crashed"
        runner = BatchRunner(
            workers=2, mode="thread", retries=1,
            retry_policy=RetryPolicy(base_delay_s=0.25),
            sleep=slept.append,
        )
        outcomes = runner.run([
            Trial(fail_until_sentinel, (sentinel,)),
            Trial(square, (3,)),
        ])
        assert outcomes[0].ok and outcomes[1].value == 9
        assert slept == [pytest.approx(0.25)]

    def test_expired_budget_fails_trials_fast(self):
        from repro.resilience import DeadlineBudget

        clock = [0.0]
        budget = DeadlineBudget(1.0, clock=lambda: clock[0])
        clock[0] = 2.0  # already past the deadline
        runner = BatchRunner(workers=1, budget=budget)
        started = []
        (outcome,) = runner.run([Trial(lambda: started.append(1))])
        assert not outcome.ok and outcome.timed_out
        assert isinstance(outcome.error, TimeoutError)
        assert started == []  # never dispatched

    def test_budget_clips_effective_timeout(self):
        from repro.resilience import DeadlineBudget

        clock = [0.0]
        budget = DeadlineBudget(0.4, clock=lambda: clock[0])
        runner = BatchRunner(
            workers=2, mode="thread", timeout_s=60.0, budget=budget
        )
        assert runner._effective_timeout(Trial(square, (1,))) == (
            pytest.approx(0.4)
        )
        clock[0] = 0.3
        assert runner._effective_timeout(Trial(square, (1,))) == (
            pytest.approx(0.1)
        )


class TestOutcomeStreaming:
    """run(on_outcome=...) surfaces each outcome as soon as it settles."""

    def test_sequential_callback_order_and_content(self):
        seen = []
        runner = BatchRunner(workers=1)
        outcomes = runner.run(
            [Trial(square, (i,)) for i in range(4)],
            on_outcome=seen.append,
        )
        assert seen == outcomes
        assert [o.value for o in seen] == [0, 1, 4, 9]

    def test_pooled_callback_fires_per_outcome(self):
        seen = []
        runner = BatchRunner(workers=2, mode="thread")
        outcomes = runner.run(
            [Trial(sleepy_identity, (i,), {"delay": 0.01}) for i in range(5)],
            on_outcome=seen.append,
        )
        assert seen == outcomes
        assert [o.index for o in seen] == [0, 1, 2, 3, 4]

    def test_callback_sees_failed_and_fast_failed_outcomes(self):
        from repro.resilience import DeadlineBudget

        clock = [0.0]
        budget = DeadlineBudget(1.0, clock=lambda: clock[0])
        clock[0] = 5.0  # already past the deadline
        seen = []
        runner = BatchRunner(workers=1, budget=budget)
        runner.run(
            [Trial(square, (2,)), Trial(always_fails)],
            on_outcome=seen.append,
        )
        assert len(seen) == 2
        assert all(o.timed_out for o in seen)  # budget already spent


class TestAbandonedThreadDetach:
    def test_recycled_threads_leave_the_exit_hook(self, tmp_path):
        """The abandoned pool's workers must not be joined at interpreter
        exit — a permanently hung solve would block process shutdown."""
        import concurrent.futures.thread as cf_thread
        import threading

        release = tmp_path / "release"
        runner = BatchRunner(workers=2, mode="thread", timeout_s=0.1)
        try:
            runner.run([
                Trial(blocked_until, (release,), label="hung"),
                Trial(sleepy_identity, (1,)),
            ])
            assert runner.recycled_pools == 1
            # The hung worker is still alive but no longer registered
            # with the atexit join hook.
            detached = [
                t for t in threading.enumerate()
                if t.is_alive()
                and t.name.startswith("ThreadPoolExecutor")
                and t not in cf_thread._threads_queues
            ]
            assert detached, "hung worker should be alive but detached"
        finally:
            release.write_text("go")
