"""Tests for the fair cross-tenant job queue (:mod:`repro.server.jobs`)."""

import threading

import pytest

from repro.core.api import JobRequest
from repro.server.jobs import FairJobQueue, Job, JobState


def _job(job_id, tenant="default"):
    return Job(
        id=job_id,
        request=JobRequest(kind="kstar", tenant=tenant),
    )


class TestJobState:
    def test_terminal(self):
        assert JobState.DONE.terminal
        assert JobState.FAILED.terminal
        assert not JobState.QUEUED.terminal
        assert not JobState.RUNNING.terminal


class TestFairJobQueue:
    def test_fifo_within_one_tenant(self):
        queue = FairJobQueue()
        for i in range(4):
            queue.push(_job(f"j{i}"))
        order = [queue.pop(timeout=1.0).id for _ in range(4)]
        assert order == ["j0", "j1", "j2", "j3"]

    def test_round_robin_across_tenants(self):
        queue = FairJobQueue()
        # Tenant A floods the queue first, then B and C each submit one.
        for i in range(3):
            queue.push(_job(f"a{i}", tenant="a"))
        queue.push(_job("b0", tenant="b"))
        queue.push(_job("c0", tenant="c"))
        order = [queue.pop(timeout=1.0).id for _ in range(5)]
        # B's and C's single jobs must not wait behind A's whole backlog.
        assert order.index("b0") <= 3
        assert order.index("c0") <= 3
        assert [j for j in order if j.startswith("a")] == ["a0", "a1", "a2"]

    def test_pop_timeout_returns_none(self):
        queue = FairJobQueue()
        assert queue.pop(timeout=0.05) is None

    def test_close_wakes_blocked_pop(self):
        queue = FairJobQueue()
        popped = []
        done = threading.Event()

        def worker():
            popped.append(queue.pop(timeout=10.0))
            done.set()

        thread = threading.Thread(target=worker, daemon=True)
        thread.start()
        queue.close()
        assert done.wait(2.0)
        assert popped == [None]
        thread.join(timeout=2.0)

    def test_push_after_close_rejected(self):
        queue = FairJobQueue()
        queue.close()
        with pytest.raises(RuntimeError, match="closed"):
            queue.push(_job("late"))

    def test_len_and_pending(self):
        queue = FairJobQueue()
        queue.push(_job("a0", tenant="a"))
        queue.push(_job("a1", tenant="a"))
        queue.push(_job("b0", tenant="b"))
        assert len(queue) == 3
        assert queue.pending("a") == 2
        assert queue.pending("b") == 1
        assert queue.pending("ghost") == 0
        queue.pop(timeout=1.0)
        assert len(queue) == 2
