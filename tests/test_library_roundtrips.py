"""Cross-cutting invariants of the default catalogs.

These guard the *relationships* the experiments depend on (not the point
values, which are free to be retuned): price ladders, power trade-offs,
and coverage of every role the templates produce.
"""

import pytest

from repro.library import default_catalog, localization_catalog


@pytest.fixture(scope="module")
def lib():
    return default_catalog()


class TestCatalogInvariants:
    def test_upgrades_cost_money(self, lib):
        """Within each role, any attribute improvement costs extra."""
        for role in ("sensor", "relay"):
            base = min(lib.for_role(role), key=lambda d: d.cost)
            for dev in lib.for_role(role):
                improves = (
                    dev.effective_tx_dbm > base.effective_tx_dbm
                    or dev.radio_tx_ma < base.radio_tx_ma
                    or dev.sleep_ma < base.sleep_ma
                )
                if improves:
                    assert dev.cost > base.cost, dev.name

    def test_no_dominated_devices(self, lib):
        """No device is at least as good as another in every attribute
        while costing less — dominated parts would never be selected and
        only bloat the MILP."""
        for role in ("sensor", "relay"):
            devices = lib.for_role(role)
            for a in devices:
                for b in devices:
                    if a.name == b.name:
                        continue
                    dominates = (
                        a.cost <= b.cost
                        and a.effective_tx_dbm >= b.effective_tx_dbm
                        and a.radio_tx_ma <= b.radio_tx_ma
                        and a.radio_rx_ma <= b.radio_rx_ma
                        and a.sleep_ma <= b.sleep_ma
                        and a.active_ma <= b.active_ma
                    )
                    assert not dominates, f"{a.name} dominates {b.name}"

    def test_pa_parts_draw_more_tx_current(self, lib):
        """Power amplification is not free energy."""
        for base_name, pa_name in (
            ("sensor-std", "sensor-pa"), ("relay-std", "relay-pa"),
        ):
            base = lib.by_name(base_name)
            pa = lib.by_name(pa_name)
            assert pa.tx_power_dbm > base.tx_power_dbm
            assert pa.radio_tx_ma > base.radio_tx_ma

    def test_antennas_help_both_directions(self, lib):
        """An external antenna adds gain to TX and RX alike (reciprocity),
        unlike a PA which only helps transmit."""
        ant = lib.by_name("relay-ant")
        pa = lib.by_name("relay-pa")
        assert ant.antenna_gain_dbi > 0
        assert pa.antenna_gain_dbi == 0

    def test_anchor_ladder_strictly_ordered(self):
        lib = localization_catalog()
        anchors = sorted(lib.for_role("anchor"), key=lambda d: d.cost)
        for weaker, stronger in zip(anchors, anchors[1:]):
            assert stronger.effective_tx_dbm > weaker.effective_tx_dbm

    def test_catalog_devices_all_reachable_by_roles(self, lib):
        covered = {role for dev in lib.devices for role in dev.roles}
        assert covered == {"sensor", "relay", "sink"}
