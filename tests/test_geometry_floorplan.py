"""Unit tests for floor plans and wall attenuation."""

import pytest

from repro.geometry import (
    MATERIAL_LOSS_DB,
    FloorPlan,
    Point,
    Rectangle,
    Wall,
    Segment,
    office_floorplan,
    open_floorplan,
)


@pytest.fixture()
def plan():
    p = FloorPlan(Rectangle(0, 0, 10, 10))
    p.add_wall(Point(5, 0), Point(5, 10), material="concrete")
    p.add_wall(Point(0, 5), Point(10, 5), material="drywall")
    return p


class TestWall:
    def test_material_attenuation(self):
        wall = Wall(Segment(Point(0, 0), Point(1, 0)), "brick")
        assert wall.attenuation_db() == MATERIAL_LOSS_DB["brick"]

    def test_explicit_loss_overrides_material(self):
        wall = Wall(Segment(Point(0, 0), Point(1, 0)), "brick", loss_db=9.5)
        assert wall.attenuation_db() == 9.5

    def test_unknown_material_raises(self):
        wall = Wall(Segment(Point(0, 0), Point(1, 0)), "plasma")
        with pytest.raises(ValueError, match="plasma"):
            wall.attenuation_db()


class TestFloorPlan:
    def test_walls_crossed_counts_both(self, plan):
        crossed = plan.walls_crossed(Point(1, 1), Point(9, 9))
        assert len(crossed) == 2

    def test_walls_crossed_none_within_room(self, plan):
        assert plan.walls_crossed(Point(1, 1), Point(4, 4)) == []

    def test_attenuation_sums_materials(self, plan):
        total = plan.wall_attenuation_db(Point(1, 1), Point(9, 9))
        expected = MATERIAL_LOSS_DB["concrete"] + MATERIAL_LOSS_DB["drywall"]
        assert total == pytest.approx(expected)

    def test_parallel_ray_does_not_cross(self, plan):
        # A ray along y=2 parallel to the horizontal wall at y=5.
        assert plan.wall_attenuation_db(Point(1, 2), Point(4, 2)) == 0.0

    def test_contains(self, plan):
        assert plan.contains(Point(5, 5))
        assert not plan.contains(Point(11, 5))


class TestOfficeFloorplan:
    def test_default_dimensions_match_paper(self):
        plan = office_floorplan()
        assert plan.bounds.width == 80.0
        assert plan.bounds.height == 45.0

    def test_has_corridor_walls_and_partitions(self):
        plan = office_floorplan(rooms_x=8, rooms_y=2)
        # 2 corridor walls + 7 vertical partitions per band + 2 extra
        # horizontal sub-divisions.
        assert len(plan.walls) == 2 + 2 * 7 + 2

    def test_cross_building_ray_hits_many_walls(self):
        plan = office_floorplan()
        crossed = plan.walls_crossed(Point(1, 1), Point(79, 44))
        assert len(crossed) >= 4

    def test_corridor_is_clear(self):
        plan = office_floorplan(corridor_height=5.0)
        # The corridor centreline runs at y = 22.5 for the default floor.
        assert plan.wall_attenuation_db(Point(1, 22.5), Point(79, 22.5)) == 0.0

    def test_invalid_room_count_raises(self):
        with pytest.raises(ValueError):
            office_floorplan(rooms_x=0)


class TestOpenFloorplan:
    def test_no_walls(self):
        plan = open_floorplan(30, 20)
        assert plan.walls == []
        assert plan.wall_attenuation_db(Point(0, 0), Point(30, 20)) == 0.0
